//! Timing-grade tracing for the logical-ordering trees: a feature-gated
//! (`trace`) per-thread lock-free ring-buffer **flight recorder** plus
//! per-phase duration histograms.
//!
//! `lo-metrics` (PR 1) counts *how often* the paper's two-lock protocol
//! descends, chases, restarts and rotates; this crate measures *how long*
//! each hot-path phase takes — the evidence ROADMAP item 2 (shrinking the
//! write-path lock windows) needs before the protocol can be changed.
//!
//! # Design
//!
//! - **Zero cost when off.** Without the `trace` feature, [`Stamp`] is a
//!   unit struct and [`stamp`]/[`span`] are empty `#[inline(always)]`
//!   functions: no clock reads, no ring writes, nothing in the hot paths.
//! - **Runtime gate + sampling.** Even with `trace` compiled in, nothing
//!   is recorded until [`set_recording`]`(true)` (the repro binaries'
//!   `--trace` flag), and probes are sampled by a per-thread
//!   1-in-[`sample_rate`] countdown that runs *before* the gate check —
//!   the common probe is a single thread-local decrement whether
//!   recording is on or off. Chained windows ([`span_chain`],
//!   [`stamp_closing`]/[`span_closed`]) inherit the opener's ticket so a
//!   lock's wait and hold spans are sampled together.
//! - **Fixed-size binary records.** Each span is two `u64` words in a
//!   per-thread ring: word 0 is the start timestamp (ns since the process
//!   trace epoch), word 1 packs `phase:8 | duration:56`. The ring keeps
//!   the newest [`flight::RING_CAPACITY`] records per thread — a flight
//!   recorder, not an unbounded log.
//! - **Cheap monotonic clock.** On x86_64, the invariant TSC (`rdtsc`)
//!   converted to nanoseconds via a fixed-point multiplier calibrated
//!   against [`std::time::Instant`] when recording is first armed;
//!   elsewhere (or uncalibrated), one `clock_gettime(CLOCK_MONOTONIC)`
//!   read from the process `Instant` anchor. Monotonic, immune to
//!   wall-clock steps.
//! - **Single-writer rings.** Only the owning thread stores into its ring
//!   (relaxed stores, release head bump) and bumps its histograms — no
//!   contended read-modify-writes anywhere on the record path; readers
//!   (exporters, the post-mortem dump) may observe a torn in-flight
//!   record mid-run and skip it, and see an exact log at quiescence —
//!   which is when dumps happen.
//!
//! The histograms aggregate every sampled span (not just the ring's tail)
//! into 32 log₂ nanosecond buckets per [`Phase`], so lock-wait/lock-hold
//! distributions survive ring wrap-around; [`TraceSnapshot::take`] sums
//! them across threads.

#![warn(missing_docs)]
// The only unsafe in this crate is the `rdtsc` read in `active::clock`
// (x86_64, `trace` builds); everything else is forbidden from using it.
#![cfg_attr(not(all(feature = "trace", target_arch = "x86_64")), forbid(unsafe_code))]
#![deny(unsafe_code)]

/// `true` when this build carries live tracing probes (`trace` feature).
pub const ENABLED: bool = cfg!(feature = "trace");

/// Defines [`Phase`] with stable indices and display names.
macro_rules! phases {
    ($($(#[$meta:meta])* $variant:ident => $name:literal,)+) => {
        /// A hot-path phase whose duration the flight recorder captures.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Phase {
            $($(#[$meta])* $variant,)+
        }

        impl Phase {
            /// Number of phases.
            pub const COUNT: usize = [$(Phase::$variant),+].len();
            /// Every phase, in index order.
            pub const ALL: [Phase; Self::COUNT] = [$(Phase::$variant),+];

            /// Stable display name (used by both exporters).
            pub fn name(self) -> &'static str {
                match self { $(Phase::$variant => $name),+ }
            }

            /// Index of this phase (dense, `0..COUNT`).
            #[inline]
            pub fn index(self) -> usize {
                self as usize
            }

            /// Phase for a packed record's index byte, if valid.
            pub fn from_index(i: usize) -> Option<Phase> {
                Self::ALL.get(i).copied()
            }
        }
    };
}

phases! {
    /// Tree-layout descent of a search (root to parent-of-target).
    Descent => "descent",
    /// Waiting to acquire a successor-chain lock (`succLock`).
    SuccLockWait => "succ-lock-wait",
    /// Holding a successor-chain lock (acquire to release).
    SuccLockHold => "succ-lock-hold",
    /// Waiting to acquire a tree-layout lock (`treeLock`).
    TreeLockWait => "tree-lock-wait",
    /// Holding a tree-layout lock (acquire to release).
    TreeLockHold => "tree-lock-hold",
    /// One writer restart loop iteration (validation failure or lost
    /// try-lock race, per the paper's restart discipline).
    Restart => "restart",
    /// A single or double rotation (child rewiring + height stores).
    Rotation => "rotation",
    /// An ordered-scan epoch repin (guard refresh between chunks).
    ScanRepin => "scan-repin",
    /// One optimistic succ-window validation (ISSUE 8): the even-version
    /// read, the window-field reads, and the version re-check — the
    /// lock-free work that replaced blocking succ-lock acquisition.
    Validate => "validate",
    /// One whole online recovery (ISSUE 9): gate claim, writer drain,
    /// audit, repair, and verification — the quarantine window during
    /// which writers bounce with `Recovering`.
    Recovery => "recovery",
}

/// Log₂ buckets per phase histogram (1 ns .. ~4 s).
pub const BUCKETS: usize = 32;

/// An opaque start-of-span timestamp returned by [`stamp`].
///
/// Zero-sized when the `trace` feature is off, so carrying one in a hot
/// struct (a held-lock registry entry, a restart budget) costs nothing.
#[cfg(feature = "trace")]
#[derive(Clone, Copy, Debug)]
pub struct Stamp(u64);

/// An opaque start-of-span timestamp returned by [`stamp`].
///
/// Zero-sized when the `trace` feature is off, so carrying one in a hot
/// struct (a held-lock registry entry, a restart budget) costs nothing.
#[cfg(not(feature = "trace"))]
#[derive(Clone, Copy, Debug)]
pub struct Stamp;

#[cfg(not(feature = "trace"))]
const _: () = assert!(std::mem::size_of::<Stamp>() == 0, "no-op Stamp must be zero-sized");

impl Stamp {
    /// A stamp that records nothing when closed with [`span`].
    #[inline(always)]
    pub const fn disarmed() -> Self {
        #[cfg(feature = "trace")]
        {
            Stamp(0)
        }
        #[cfg(not(feature = "trace"))]
        {
            Stamp
        }
    }
}

/// Opens a span: reads the monotonic clock if (and only if) tracing is
/// compiled in, recording is enabled, *and* this probe wins the sampling
/// lottery (a per-thread 1-in-[`sample_rate`] counter). Close it with
/// [`span`]. Sampling keeps recording within the < 10% overhead budget
/// on paths hot enough to fire every operation; the histograms remain
/// unbiased and the flight recorder still fills in milliseconds.
///
/// The countdown is the *first* check, before the recording gate: the
/// fast path is one thread-local decrement whether recording is on or
/// off, and only the 1-in-N slow path consults the gate and the clock.
/// This is what keeps the recording-on *disarmed* probe as cheap as the
/// recording-off probe — the overhead budget then buys armed spans, not
/// lottery bookkeeping.
#[inline(always)]
pub fn stamp() -> Stamp {
    #[cfg(feature = "trace")]
    {
        active::lottery()
    }
    #[cfg(not(feature = "trace"))]
    {
        Stamp
    }
}

/// Closes a span opened by [`stamp`]: records its duration into the
/// per-phase histogram and the calling thread's flight-recorder ring.
/// A disarmed stamp (recording was off at open) records nothing.
#[inline(always)]
pub fn span(phase: Phase, start: Stamp) {
    #[cfg(feature = "trace")]
    {
        if start.0 != 0 {
            active::record(phase, start.0);
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (phase, start);
    }
}

/// Closes a span opened by [`stamp`] *and* opens the next one with a
/// single clock read: the recorded span ends exactly where the returned
/// stamp begins. Built for back-to-back windows on a hot path — e.g. a
/// lock's wait span chaining into its hold span at the acquire instant.
///
/// A disarmed `start` (recording off, or the opener lost the sampling
/// lottery) records nothing and returns a disarmed stamp: a chained
/// window inherits its opener's sampling decision, so window pairs are
/// sampled together and stay adjacent in the flight recorder.
#[inline(always)]
pub fn span_chain(phase: Phase, start: Stamp) -> Stamp {
    #[cfg(feature = "trace")]
    {
        if start.0 == 0 {
            return Stamp(0);
        }
        let now = active::now_ns();
        active::record_at(phase, start.0, now.saturating_sub(start.0));
        Stamp(now)
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (phase, start);
        Stamp
    }
}

/// Takes the end-of-span stamp for a window opened by `start`, inheriting
/// its sampling decision: reads the clock only when `start` is armed (no
/// fresh lottery ticket), so a sampled window always gets its end stamp
/// and an unsampled one stays free. Pair with [`span_closed`].
#[inline(always)]
pub fn stamp_closing(start: Stamp) -> Stamp {
    #[cfg(feature = "trace")]
    {
        if start.0 != 0 {
            return Stamp(active::now_ns());
        }
        Stamp(0)
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = start;
        Stamp
    }
}

/// Records the span `start..end` from two already-taken stamps — no clock
/// read. Built for spans that must *close* inside a critical section but
/// whose recording cost should land outside it: take `end` with
/// [`stamp_closing`] before the release store, then call this after it.
/// Records nothing if either stamp is disarmed.
#[inline(always)]
pub fn span_closed(phase: Phase, start: Stamp, end: Stamp) {
    #[cfg(feature = "trace")]
    {
        if start.0 != 0 && end.0 != 0 {
            active::record_at(phase, start.0, end.0.saturating_sub(start.0));
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (phase, start, end);
    }
}

/// Enables or disables recording at runtime (no-op without `trace`).
#[inline]
pub fn set_recording(on: bool) {
    #[cfg(feature = "trace")]
    {
        if on {
            // Calibrate the fast clock (first arm only) before any probe
            // can observe `recording() == true`. The calibration state has
            // its own Release/Acquire pair (clock::MULT), so the flag
            // itself is advisory and Relaxed on both sides.
            active::clock::calibrate();
        }
        active::RECORDING.store(on, std::sync::atomic::Ordering::Relaxed);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = on;
    }
}

/// Default 1-in-N span sampling rate (see [`set_sample_rate`]).
///
/// Chosen so a table1-smoke mix stays inside the < 10% overhead budget
/// (`tests/trace_overhead.rs`) even on a single-core CI box, where every
/// traced nanosecond is serialized against the workload. A benchmark
/// trial still lands tens of thousands of spans per second per phase.
pub const DEFAULT_SAMPLE_RATE: u32 = 32;

/// Sets the span sampling rate: each thread records one in `rate` spans
/// (`1` = record everything). Clamped to ≥ 1; no-op without `trace`.
/// The process default is [`DEFAULT_SAMPLE_RATE`], overridable with the
/// `LO_TRACE_SAMPLE` environment variable.
#[inline]
pub fn set_sample_rate(rate: u32) {
    #[cfg(feature = "trace")]
    {
        active::SAMPLE_RATE.store(rate.max(1), std::sync::atomic::Ordering::Relaxed);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = rate;
    }
}

/// The current 1-in-N span sampling rate ([`DEFAULT_SAMPLE_RATE`] without
/// `trace` or until configured).
#[inline]
pub fn sample_rate() -> u32 {
    #[cfg(feature = "trace")]
    {
        active::sample_rate()
    }
    #[cfg(not(feature = "trace"))]
    {
        DEFAULT_SAMPLE_RATE
    }
}

/// Whether spans are currently being recorded.
#[inline]
pub fn recording() -> bool {
    #[cfg(feature = "trace")]
    {
        active::recording()
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// One decoded flight-recorder record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Recorder-assigned thread id (dense, in registration order).
    pub tid: u32,
    /// The phase this span measured.
    pub phase: Phase,
    /// Span start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds (saturated at 2⁵⁶ − 1).
    pub dur_ns: u64,
}

/// Aggregated durations of one [`Phase`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseHist {
    /// Bucket `i` counts spans with duration in `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded durations, ns.
    pub sum: u64,
}

impl PhaseHist {
    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (ns) of the bucket containing quantile `q`
    /// (`0.0..=1.0`); `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(u64::MAX)
    }

    /// Mean duration in nanoseconds; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.sum as f64 / count as f64)
    }

    /// Per-bucket difference vs. an earlier snapshot of the same phase.
    fn since(&self, before: &PhaseHist) -> PhaseHist {
        let mut out = PhaseHist::default();
        for (i, o) in out.buckets.iter_mut().enumerate() {
            *o = self.buckets[i].saturating_sub(before.buckets[i]);
        }
        out.sum = self.sum.saturating_sub(before.sum);
        out
    }
}

/// A point-in-time copy of every phase histogram.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    phases: Vec<PhaseHist>,
}

impl TraceSnapshot {
    /// An all-zero snapshot.
    pub fn zero() -> Self {
        Self { phases: vec![PhaseHist::default(); Phase::COUNT] }
    }

    /// Copies the live histograms (all-zero without `trace`).
    pub fn take() -> Self {
        #[cfg(feature = "trace")]
        {
            active::snapshot()
        }
        #[cfg(not(feature = "trace"))]
        {
            Self::zero()
        }
    }

    /// Histogram of one phase.
    pub fn phase(&self, p: Phase) -> &PhaseHist {
        &self.phases[p.index()]
    }

    /// Spans recorded between `before` and this snapshot.
    pub fn since(&self, before: &TraceSnapshot) -> TraceSnapshot {
        let phases = Phase::ALL
            .iter()
            .map(|&p| self.phase(p).since(before.phase(p)))
            .collect();
        TraceSnapshot { phases }
    }

    /// Total spans across all phases.
    pub fn total_spans(&self) -> u64 {
        self.phases.iter().map(PhaseHist::count).sum()
    }

    /// `true` when no phase has any recorded span.
    pub fn is_zero(&self) -> bool {
        self.total_spans() == 0 && self.phases.iter().all(|h| h.sum == 0)
    }
}

/// The per-thread flight recorder: ring access, merged dumps, and the
/// post-mortem latch armed by the chaos/poison path.
pub mod flight {
    use super::FlightRecord;

    /// Records kept per thread; older records are overwritten in place.
    pub const RING_CAPACITY: usize = 4096;

    /// Every registered thread's records, merged and sorted by start
    /// timestamp (empty without `trace`). Exact at quiescence; may omit
    /// a record being overwritten concurrently.
    pub fn merged_records() -> Vec<FlightRecord> {
        #[cfg(feature = "trace")]
        {
            super::active::merged_records()
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }

    /// The calling thread's own records, oldest first (empty without
    /// `trace`). Test/diagnostic aid.
    pub fn current_thread_records() -> Vec<FlightRecord> {
        #[cfg(feature = "trace")]
        {
            super::active::current_thread_records()
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }

    /// Re-arms the post-mortem latch: the next poisoning after this call
    /// makes one dump available via [`take_post_mortem`].
    pub fn arm_post_mortem() {
        #[cfg(feature = "trace")]
        {
            // Re-arming races with nothing that publishes data: plain flag
            // resets, so Relaxed suffices.
            use std::sync::atomic::Ordering;
            super::active::DUMP_TAKEN.store(false, Ordering::Relaxed);
            super::active::POISON_SEEN.store(false, Ordering::Relaxed);
        }
    }

    /// Called by lo-core when a tree is poisoned (a writer died or the
    /// restart-storm tripwire fired): latches that a post-mortem dump
    /// should be offered. Cheap and idempotent; no-op without `trace`.
    pub fn note_poisoned() {
        #[cfg(feature = "trace")]
        {
            // Release pairs with the Acquire load in `take_post_mortem`:
            // ring entries written before the poisoning are visible to the
            // thread that takes the dump.
            super::active::POISON_SEEN.store(true, std::sync::atomic::Ordering::Release);
        }
    }

    /// Takes the post-mortem dump: a Chrome Trace Event JSON document of
    /// every thread's ring. Returns `Some` exactly once per armed
    /// poisoning ([`arm_post_mortem`] re-arms); `None` if no poisoning
    /// was noted, on repeat calls, or without `trace`.
    pub fn take_post_mortem() -> Option<String> {
        #[cfg(feature = "trace")]
        {
            use std::sync::atomic::Ordering;
            // Acquire pairs with `note_poisoned`'s Release; the AcqRel swap
            // makes "exactly one dump per arming" a total order among
            // concurrent takers.
            if super::active::POISON_SEEN.load(Ordering::Acquire)
                && !super::active::DUMP_TAKEN.swap(true, Ordering::AcqRel)
            {
                return Some(super::export::chrome_trace_json(&merged_records()));
            }
            None
        }
        #[cfg(not(feature = "trace"))]
        {
            None
        }
    }

    /// Pushes a pre-timed record into the calling thread's ring and the
    /// histograms, bypassing the clock. Test support for wrap-around and
    /// merge-order coverage; requires recording to be enabled.
    #[doc(hidden)]
    #[cfg(feature = "trace")]
    pub fn record_raw(phase: super::Phase, start_ns: u64, dur_ns: u64) {
        if super::active::recording() {
            super::active::record_at(phase, start_ns, dur_ns);
        }
    }
}

/// Exporters: Prometheus text exposition and Chrome Trace Event JSON.
pub mod export {
    use super::{FlightRecord, Phase, TraceSnapshot, BUCKETS};
    use std::fmt::Write as _;

    /// Renders records as Chrome Trace Event Format JSON — an object with
    /// a `traceEvents` array of complete (`"ph":"X"`) events, loadable in
    /// `chrome://tracing` and Perfetto. Timestamps/durations are emitted
    /// in microseconds with nanosecond precision, as the format expects.
    pub fn chrome_trace_json(records: &[FlightRecord]) -> String {
        let mut out = String::with_capacity(64 + records.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"lo\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03}}}",
                r.phase.name(),
                r.tid,
                r.start_ns / 1_000,
                r.start_ns % 1_000,
                r.dur_ns / 1_000,
                r.dur_ns % 1_000,
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders counters plus the snapshot's duration histograms in the
    /// Prometheus text exposition format: `lo_events_total{event=…}`
    /// counters and a `lo_phase_duration_ns` histogram per phase with
    /// cumulative `le` buckets, `_sum` and `_count` series.
    pub fn prometheus_text<'a>(
        counters: impl IntoIterator<Item = (&'a str, u64)>,
        snap: &TraceSnapshot,
    ) -> String {
        let mut out = String::new();
        out.push_str("# TYPE lo_events_total counter\n");
        for (name, value) in counters {
            let _ = writeln!(out, "lo_events_total{{event=\"{name}\"}} {value}");
        }
        out.push_str("# TYPE lo_phase_duration_ns histogram\n");
        for &p in &Phase::ALL {
            let h = snap.phase(p);
            let phase = p.name();
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                cum += c;
                // Bucket i holds durations < 2^(i+1) ns.
                let le = 1u128 << (i + 1);
                let _ = writeln!(
                    out,
                    "lo_phase_duration_ns_bucket{{phase=\"{phase}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "lo_phase_duration_ns_bucket{{phase=\"{phase}\",le=\"+Inf\"}} {cum}"
            );
            let _ = writeln!(out, "lo_phase_duration_ns_sum{{phase=\"{phase}\"}} {}", h.sum);
            let _ =
                writeln!(out, "lo_phase_duration_ns_count{{phase=\"{phase}\"}} {}", h.count());
        }
        debug_assert_eq!(BUCKETS, 32);
        out
    }
}

#[cfg(feature = "trace")]
// Registry of leaked per-thread rings — harness-internal, never taken on a
// tree code path (see clippy.toml).
#[allow(clippy::disallowed_types)]
mod active {
    use super::{FlightRecord, Phase, PhaseHist, TraceSnapshot, BUCKETS};
    use crate::flight::RING_CAPACITY;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::Mutex;

    pub(crate) static RECORDING: AtomicBool = AtomicBool::new(false);
    pub(crate) static POISON_SEEN: AtomicBool = AtomicBool::new(false);
    pub(crate) static DUMP_TAKEN: AtomicBool = AtomicBool::new(false);

    #[inline(always)]
    pub(crate) fn recording() -> bool {
        RECORDING.load(Ordering::Relaxed)
    }

    /// Span sampling rate; 0 = not yet initialized from the environment.
    pub(crate) static SAMPLE_RATE: AtomicU32 = AtomicU32::new(0);

    #[inline]
    pub(crate) fn sample_rate() -> u32 {
        let r = SAMPLE_RATE.load(Ordering::Relaxed);
        if r != 0 {
            return r;
        }
        let r = std::env::var("LO_TRACE_SAMPLE")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(super::DEFAULT_SAMPLE_RATE)
            .max(1);
        SAMPLE_RATE.store(r, Ordering::Relaxed);
        r
    }

    thread_local! {
        /// Countdown until this thread's next sampled span; one decrement
        /// per [`super::stamp`] probe, reload on the slow path.
        static SAMPLE_LEFT: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }

    /// One ticket of the per-thread 1-in-N sampling lottery, countdown
    /// first: the common case is a single `Cell` decrement with no atomic
    /// load and no clock read, identical whether recording is on or off.
    /// Every Nth probe (and the first ever on a thread, so short-lived
    /// writers still leave flight-recorder evidence) falls into the cold
    /// slow path, which reloads the countdown and — only if recording is
    /// armed — reads the clock.
    #[inline(always)]
    pub(crate) fn lottery() -> super::Stamp {
        SAMPLE_LEFT.with(|c| {
            let left = c.get();
            if left > 1 {
                c.set(left - 1);
                super::Stamp(0)
            } else {
                lottery_slow(c)
            }
        })
    }

    #[cold]
    fn lottery_slow(c: &std::cell::Cell<u32>) -> super::Stamp {
        c.set(sample_rate());
        if recording() {
            super::Stamp(now_ns())
        } else {
            super::Stamp(0)
        }
    }

    /// Nanoseconds since the process trace epoch, always ≥ 1 so a zero
    /// `Stamp` can mean "disarmed". Delegates to the calibrated fast
    /// clock on x86_64, `Instant` elsewhere.
    #[inline(always)]
    pub(crate) fn now_ns() -> u64 {
        clock::now_ns()
    }

    /// The span clock. Every probe reads it twice, so its cost bounds the
    /// whole tracing overhead budget (DESIGN.md §15.3).
    ///
    /// On x86_64 it reads the invariant TSC (`rdtsc`, a few ns) and
    /// converts ticks to nanoseconds with a fixed-point multiplier
    /// calibrated against `Instant` on the first [`calibrate`] (a ~2 ms
    /// one-time spin when recording is first armed). The TSC on every
    /// CPU of the last decade is invariant (constant rate, synchronized
    /// across cores); worst case on exotic hardware is skewed durations
    /// in a diagnostic tool, never unsoundness. Other architectures use
    /// `clock_gettime` via `Instant`.
    pub(crate) mod clock {
        use std::sync::OnceLock;
        use std::time::Instant;

        fn epoch() -> Instant {
            static EPOCH: OnceLock<Instant> = OnceLock::new();
            *EPOCH.get_or_init(Instant::now)
        }

        #[inline]
        fn instant_now_ns() -> u64 {
            (epoch().elapsed().as_nanos() as u64).max(1)
        }

        #[cfg(target_arch = "x86_64")]
        mod tsc {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::time::Instant;

            /// `ns_per_tick << MULT_SHIFT`; 0 until calibrated.
            static MULT: AtomicU64 = AtomicU64::new(0);
            /// TSC value at the calibration anchor.
            static TSC0: AtomicU64 = AtomicU64::new(0);
            /// `Instant`-clock ns already elapsed at the anchor (keeps the
            /// TSC path on the same epoch as the fallback path).
            static ANCHOR_NS: AtomicU64 = AtomicU64::new(0);

            const MULT_SHIFT: u32 = 24;

            #[inline(always)]
            #[allow(unsafe_code)]
            fn rdtsc() -> u64 {
                // SAFETY: `rdtsc` is unconditionally available on x86_64;
                // it reads a counter and has no memory effects.
                unsafe { core::arch::x86_64::_rdtsc() }
            }

            /// One-time fixed-point calibration of ticks → ns.
            pub(super) fn calibrate() {
                if MULT.load(Ordering::Acquire) != 0 {
                    return;
                }
                let anchor_ns = super::instant_now_ns();
                let (i0, c0) = (Instant::now(), rdtsc());
                // ~2 ms window: TSC rates are in the GHz range, so this
                // already gives < 0.1% conversion error.
                while i0.elapsed().as_micros() < 2_000 {
                    std::hint::spin_loop();
                }
                let (dt, dc) = (i0.elapsed().as_nanos() as u64, rdtsc().wrapping_sub(c0));
                if dc == 0 {
                    return; // TSC unusable; stay on the Instant path.
                }
                let mult = ((dt as u128) << MULT_SHIFT) / dc as u128;
                TSC0.store(c0, Ordering::Relaxed);
                ANCHOR_NS.store(anchor_ns, Ordering::Relaxed);
                // Release-publish the anchor stores above.
                MULT.store(mult as u64, Ordering::Release);
            }

            #[inline(always)]
            pub(super) fn now_ns() -> Option<u64> {
                let mult = MULT.load(Ordering::Acquire);
                if mult == 0 {
                    return None;
                }
                let ticks = rdtsc().wrapping_sub(TSC0.load(Ordering::Relaxed));
                let ns = ((ticks as u128 * mult as u128) >> MULT_SHIFT) as u64;
                Some((ANCHOR_NS.load(Ordering::Relaxed) + ns).max(1))
            }
        }

        /// Calibrates the fast clock if this target has one (idempotent).
        pub(crate) fn calibrate() {
            #[cfg(target_arch = "x86_64")]
            tsc::calibrate();
            // Pin the epoch either way so timestamps are comparable.
            let _ = epoch();
        }

        /// Nanoseconds since the process trace epoch, ≥ 1.
        #[inline(always)]
        pub(crate) fn now_ns() -> u64 {
            #[cfg(target_arch = "x86_64")]
            if let Some(ns) = tsc::now_ns() {
                return ns;
            }
            instant_now_ns()
        }
    }

    const DUR_BITS: u32 = 56;
    const DUR_MASK: u64 = (1 << DUR_BITS) - 1;

    /// One thread's flight recorder: a single-writer ring of packed
    /// two-word records plus this thread's share of the per-phase
    /// histograms. `head` counts records ever pushed; the slot for record
    /// `n` is `n % RING_CAPACITY`.
    ///
    /// The histograms live here — not in contended globals — because the
    /// recording fast path runs on every traced span: a single writer can
    /// bump its own counters with plain load + store (no `lock` prefix,
    /// no cross-core cache-line ping-pong), and [`snapshot`] sums across
    /// rings instead. Each ring is its own leaked allocation, so threads
    /// never false-share.
    struct Ring {
        tid: u32,
        head: AtomicU64,
        slots: Box<[AtomicU64]>,
        hist: [[AtomicU64; BUCKETS]; Phase::COUNT],
        sums: [AtomicU64; Phase::COUNT],
    }

    impl Ring {
        fn new(tid: u32) -> Self {
            let slots = (0..RING_CAPACITY * 2).map(|_| AtomicU64::new(0)).collect();
            Self {
                tid,
                head: AtomicU64::new(0),
                slots,
                hist: [const { [const { AtomicU64::new(0) }; BUCKETS] }; Phase::COUNT],
                sums: [const { AtomicU64::new(0) }; Phase::COUNT],
            }
        }

        /// Single-writer histogram bump: plain load + store is enough
        /// because only the owning thread writes, and snapshot readers
        /// tolerate slightly-stale relaxed loads (exact at quiescence).
        #[inline]
        fn bump(&self, phase: Phase, dur_ns: u64) {
            let b = &self.hist[phase.index()][bucket_of(dur_ns)];
            b.store(b.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
            let s = &self.sums[phase.index()];
            s.store(s.load(Ordering::Relaxed).saturating_add(dur_ns), Ordering::Relaxed);
        }

        #[inline]
        fn push(&self, start_ns: u64, phase: Phase, dur_ns: u64) {
            let h = self.head.load(Ordering::Relaxed);
            let i = (h as usize % RING_CAPACITY) * 2;
            self.slots[i].store(start_ns, Ordering::Relaxed);
            let packed = ((phase.index() as u64) << DUR_BITS) | dur_ns.min(DUR_MASK);
            self.slots[i + 1].store(packed, Ordering::Relaxed);
            // Publish the record before readers may index past it.
            self.head.store(h + 1, Ordering::Release);
        }

        /// Decoded records, oldest first. A record the owner is
        /// concurrently overwriting may decode to an invalid phase byte
        /// and is skipped (the dump paths run at quiescence).
        fn records(&self) -> Vec<FlightRecord> {
            let head = self.head.load(Ordering::Acquire);
            let len = head.min(RING_CAPACITY as u64);
            let mut out = Vec::with_capacity(len as usize);
            for n in (head - len)..head {
                let i = (n as usize % RING_CAPACITY) * 2;
                let start_ns = self.slots[i].load(Ordering::Relaxed);
                let packed = self.slots[i + 1].load(Ordering::Relaxed);
                let Some(phase) = Phase::from_index((packed >> DUR_BITS) as usize) else {
                    continue;
                };
                if start_ns == 0 {
                    continue;
                }
                out.push(FlightRecord { tid: self.tid, phase, start_ns, dur_ns: packed & DUR_MASK });
            }
            out
        }
    }

    /// Every thread's ring, registered on first span. Rings are leaked
    /// (64 KiB each) so a dead thread's history — exactly what a
    /// post-mortem wants — survives the thread.
    static REGISTRY: Mutex<Vec<&'static Ring>> = Mutex::new(Vec::new());
    static NEXT_TID: AtomicU32 = AtomicU32::new(0);

    thread_local! {
        static MY_RING: &'static Ring = {
            let ring: &'static Ring =
                Box::leak(Box::new(Ring::new(NEXT_TID.fetch_add(1, Ordering::Relaxed))));
            REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).push(ring);
            ring
        };
    }

    #[inline]
    fn bucket_of(dur_ns: u64) -> usize {
        (64 - dur_ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
    }

    #[inline]
    pub(crate) fn record(phase: Phase, start_ns: u64) {
        let dur_ns = now_ns().saturating_sub(start_ns);
        record_at(phase, start_ns, dur_ns);
    }

    #[inline]
    pub(crate) fn record_at(phase: Phase, start_ns: u64, dur_ns: u64) {
        MY_RING.with(|r| {
            r.bump(phase, dur_ns);
            r.push(start_ns.max(1), phase, dur_ns);
        });
    }

    /// Sums every registered thread's histograms. Histories of dead
    /// threads are included (rings are leaked), matching the global-
    /// counter semantics the exporters expect.
    pub(crate) fn snapshot() -> TraceSnapshot {
        let rings: Vec<&'static Ring> =
            REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let phases = Phase::ALL
            .iter()
            .map(|&p| {
                let mut h = PhaseHist::default();
                for ring in &rings {
                    for (i, b) in h.buckets.iter_mut().enumerate() {
                        *b += ring.hist[p.index()][i].load(Ordering::Relaxed);
                    }
                    h.sum = h
                        .sum
                        .saturating_add(ring.sums[p.index()].load(Ordering::Relaxed));
                }
                h
            })
            .collect();
        TraceSnapshot { phases }
    }

    pub(crate) fn merged_records() -> Vec<FlightRecord> {
        let rings: Vec<&'static Ring> =
            REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut out: Vec<FlightRecord> = rings.iter().flat_map(|r| r.records()).collect();
        out.sort_by_key(|r| (r.start_ns, r.tid));
        out
    }

    pub(crate) fn current_thread_records() -> Vec<FlightRecord> {
        MY_RING.with(|r| r.records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_and_indices_are_stable() {
        assert_eq!(Phase::COUNT, 10);
        for (i, &p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phase::from_index(i), Some(p));
        }
        assert_eq!(Phase::from_index(Phase::COUNT), None);
        assert_eq!(Phase::SuccLockWait.name(), "succ-lock-wait");
        assert_eq!(Phase::TreeLockHold.name(), "tree-lock-hold");
    }

    #[test]
    fn phase_hist_quantiles() {
        let mut h = PhaseHist::default();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        assert_eq!(h.mean(), None);
        h.buckets[6] = 900; // [64, 128) ns
        h.buckets[13] = 100; // [8192, 16384) ns
        h.sum = 900 * 100 + 100 * 10_000;
        assert_eq!(h.count(), 1000);
        assert_eq!(h.quantile(0.5), Some(128));
        assert_eq!(h.quantile(0.999), Some(16_384));
        let m = h.mean().unwrap();
        assert!((m - 1090.0).abs() < 1e-9, "mean {m}");
    }

    #[test]
    fn snapshot_since_subtracts() {
        let mut before = TraceSnapshot::zero();
        let mut after = TraceSnapshot::zero();
        before.phases[Phase::Descent.index()].buckets[3] = 5;
        before.phases[Phase::Descent.index()].sum = 50;
        after.phases[Phase::Descent.index()].buckets[3] = 8;
        after.phases[Phase::Descent.index()].sum = 90;
        let d = after.since(&before);
        assert_eq!(d.phase(Phase::Descent).buckets[3], 3);
        assert_eq!(d.phase(Phase::Descent).sum, 40);
        assert_eq!(d.total_spans(), 3);
        assert!(!d.is_zero());
        assert!(TraceSnapshot::zero().is_zero());
    }

    #[test]
    fn chrome_trace_json_shape() {
        let records = [
            FlightRecord { tid: 0, phase: Phase::Descent, start_ns: 1_500, dur_ns: 250 },
            FlightRecord { tid: 3, phase: Phase::TreeLockHold, start_ns: 2_000, dur_ns: 1_000_000 },
        ];
        let json = export::chrome_trace_json(&records);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"descent\""));
        assert!(json.contains("\"ts\":1.500"), "µs with ns precision: {json}");
        assert!(json.contains("\"dur\":1000.000"));
        assert!(json.contains("\"tid\":3"));
        let empty = export::chrome_trace_json(&[]);
        assert!(empty.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn prometheus_text_shape() {
        let mut snap = TraceSnapshot::zero();
        snap.phases[Phase::SuccLockWait.index()].buckets[0] = 2;
        snap.phases[Phase::SuccLockWait.index()].buckets[2] = 1;
        snap.phases[Phase::SuccLockWait.index()].sum = 12;
        let text = export::prometheus_text([("search_descent", 42u64)], &snap);
        assert!(text.contains("# TYPE lo_events_total counter"));
        assert!(text.contains("lo_events_total{event=\"search_descent\"} 42"));
        assert!(text.contains("lo_phase_duration_ns_bucket{phase=\"succ-lock-wait\",le=\"2\"} 2"));
        // Cumulative: the le="8" bucket includes the two 1-2ns samples.
        assert!(text.contains("lo_phase_duration_ns_bucket{phase=\"succ-lock-wait\",le=\"8\"} 3"));
        assert!(text.contains("lo_phase_duration_ns_bucket{phase=\"succ-lock-wait\",le=\"+Inf\"} 3"));
        assert!(text.contains("lo_phase_duration_ns_sum{phase=\"succ-lock-wait\"} 12"));
        assert!(text.contains("lo_phase_duration_ns_count{phase=\"succ-lock-wait\"} 3"));
        // Phases with no samples still expose complete (empty) series.
        assert!(text.contains("lo_phase_duration_ns_count{phase=\"rotation\"} 0"));
    }

    #[cfg(not(feature = "trace"))]
    mod noop {
        use super::super::*;

        #[test]
        fn everything_is_inert() {
            const _: () = assert!(!ENABLED);
            assert_eq!(std::mem::size_of::<Stamp>(), 0);
            set_recording(true);
            assert!(!recording(), "recording cannot be enabled in a no-op build");
            let s = stamp();
            span(Phase::Descent, s);
            assert!(TraceSnapshot::take().is_zero());
            assert!(flight::merged_records().is_empty());
            assert!(flight::current_thread_records().is_empty());
            flight::note_poisoned();
            assert_eq!(flight::take_post_mortem(), None);
        }
    }

    #[cfg(feature = "trace")]
    #[allow(clippy::disallowed_types)] // test gate, not tree-protocol state
    mod live {
        use super::super::*;

        /// Serializes tests that toggle the global recording flag.
        fn with_recording<R>(f: impl FnOnce() -> R) -> R {
            use std::sync::{Mutex, MutexGuard, OnceLock};
            static GATE: OnceLock<Mutex<()>> = OnceLock::new();
            let _g: MutexGuard<'_, ()> = GATE
                .get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            // Every probe must hit: these tests assert on exact spans.
            set_sample_rate(1);
            set_recording(true);
            let r = f();
            set_recording(false);
            r
        }

        #[test]
        fn spans_reach_histogram_and_ring() {
            with_recording(|| {
                let before = TraceSnapshot::take();
                let s = stamp();
                std::hint::black_box(fib(12));
                span(Phase::Rotation, s);
                let d = TraceSnapshot::take().since(&before);
                assert_eq!(d.phase(Phase::Rotation).count(), 1);
                assert!(d.phase(Phase::Rotation).sum > 0, "a real clock read elapsed");
                let mine = flight::current_thread_records();
                assert!(mine.iter().any(|r| r.phase == Phase::Rotation));
            });
        }

        #[test]
        fn disabled_recording_records_nothing() {
            set_recording(false);
            let before = TraceSnapshot::take();
            let s = stamp();
            span(Phase::ScanRepin, s);
            let d = TraceSnapshot::take().since(&before);
            // ScanRepin is quiet in this crate's other tests, so the
            // disarmed span above is the only possible contributor.
            assert_eq!(d.phase(Phase::ScanRepin).count(), 0);
        }

        #[test]
        fn ring_wraparound_keeps_newest() {
            // A fresh thread gets its own ring, isolating the capacity math.
            std::thread::spawn(|| {
                with_recording(|| {
                    let n = flight::RING_CAPACITY as u64 + 100;
                    for i in 0..n {
                        flight::record_raw(Phase::Restart, i + 1, 7);
                    }
                    let mine = flight::current_thread_records();
                    assert_eq!(mine.len(), flight::RING_CAPACITY);
                    // Oldest surviving record is exactly `n - capacity`
                    // pushes in; newest is the last push.
                    assert_eq!(mine.first().unwrap().start_ns, n - flight::RING_CAPACITY as u64 + 1);
                    assert_eq!(mine.last().unwrap().start_ns, n);
                    assert!(mine.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
                })
            })
            .join()
            .unwrap();
        }

        #[test]
        fn merged_records_sorted_across_threads() {
            with_recording(|| {
                // Interleaved timestamps from two fresh threads.
                let t1 = std::thread::spawn(|| {
                    for i in [10u64, 30, 50] {
                        flight::record_raw(Phase::Descent, i, 1);
                    }
                });
                let t2 = std::thread::spawn(|| {
                    for i in [20u64, 40, 60] {
                        flight::record_raw(Phase::Rotation, i, 1);
                    }
                });
                t1.join().unwrap();
                t2.join().unwrap();
                let merged = flight::merged_records();
                assert!(merged.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
                let small: Vec<u64> = merged
                    .iter()
                    .map(|r| r.start_ns)
                    .filter(|&s| (10..=60).contains(&s) && s % 10 == 0)
                    .collect();
                let mut expect = small.clone();
                expect.sort_unstable();
                assert_eq!(small, expect);
                assert!(small.len() >= 6, "both threads' records present: {small:?}");
            });
        }

        #[test]
        fn post_mortem_fires_exactly_once() {
            with_recording(|| {
                flight::arm_post_mortem();
                assert_eq!(flight::take_post_mortem(), None, "no poisoning noted yet");
                flight::record_raw(Phase::TreeLockHold, 5, 9);
                flight::note_poisoned();
                flight::note_poisoned(); // idempotent
                let dump = flight::take_post_mortem().expect("first take yields the dump");
                assert!(dump.contains("\"traceEvents\":["));
                assert!(dump.contains("tree-lock-hold"));
                assert_eq!(flight::take_post_mortem(), None, "second take must be empty");
                // Re-arming allows the next poisoning to dump again.
                flight::arm_post_mortem();
                assert_eq!(flight::take_post_mortem(), None);
                flight::note_poisoned();
                assert!(flight::take_post_mortem().is_some());
            });
        }

        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
    }
}
