//! # lo-baselines: the paper's comparator suite
//!
//! Every data structure the paper's evaluation (§6) compares against,
//! implemented from scratch on the same epoch-reclamation substrate:
//!
//! * [`skiplist::SkipListMap`] — lock-free skip list (Fraser/Harris, the
//!   design behind Java's `ConcurrentSkipListMap`).
//! * [`efrb::EfrbTreeMap`] — Ellen–Fatourou–Ruppert–van Breugel non-blocking
//!   external BST (PODC'10).
//! * [`bcco::BccoTreeMap`] — Bronson–Casper–Chafi–Olukotun lock-based
//!   relaxed-AVL partially-external tree (PPoPP'10).
//! * [`cf::CfTreeMap`] — Crain–Gramoli–Raynal contention-friendly tree with a
//!   background maintenance thread.
//! * [`chromatic::ChromaticTreeMap`] — Brown–Ellen–Ruppert chromatic tree
//!   (relaxed-balance external red-black, violation threshold 6); lock-based
//!   synchronization substitution, see DESIGN.md.
//! * [`nm::NmTreeMap`] — Natarajan–Mittal lock-free external BST (extension).
//! * [`coarse::CoarseAvlMap`], [`seq::SeqAvl`] — coarse-locked / sequential
//!   references.

#![warn(missing_docs)]

pub mod bcco;
pub mod cf;
pub mod chromatic;
pub mod coarse;
pub mod efrb;
mod lock;
pub mod nm;
pub mod seq;
pub mod skiplist;

pub use bcco::BccoTreeMap;
pub use cf::CfTreeMap;
pub use chromatic::ChromaticTreeMap;
pub use coarse::CoarseAvlMap;
pub use efrb::EfrbTreeMap;
pub use nm::NmTreeMap;
pub use seq::SeqAvl;
pub use skiplist::SkipListMap;
