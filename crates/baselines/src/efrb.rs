//! EFRB tree: the non-blocking external BST of Ellen, Fatourou, Ruppert and
//! van Breugel (PODC 2010) — the paper's unbalanced lock-free comparator.
//!
//! External (leaf-oriented) tree: internal nodes route (`left < key ≤ right`),
//! leaves hold the elements. Every update prepares an *Info* descriptor,
//! flags the affected internal node(s) by CAS-ing their `update` word
//! (pointer + 2-bit state tag), and then performs the child swap; any thread
//! that encounters a flagged node *helps* the stalled operation to completion
//! before retrying its own, which yields lock-freedom.
//!
//! State tags on the `update` word: 0 = Clean, 1 = IFlag, 2 = DFlag,
//! 3 = Mark (terminal).
//!
//! Memory reclamation (the part the original paper leaves to the JVM):
//! * the unique winner of the grandparent child-CAS in `help_marked` retires
//!   the spliced-out internal node and leaf;
//! * the unique winner of any CAS that replaces the *pointer* of an `update`
//!   word (flagging or marking over a Clean record) retires the old record;
//! * unflag transitions keep the pointer, so nothing is retired.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::sync::atomic::Ordering;

use lo_api::{CheckInvariants, ConcurrentMap, Key, QuiescentOrdered, Value};

/// Update-word state tags.
const CLEAN: usize = 0;
const IFLAG: usize = 1;
const DFLAG: usize = 2;
const MARK: usize = 3;

/// Key extended with the two infinity sentinels (`Key < Inf1 < Inf2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EKey<K> {
    Key(K),
    Inf1,
    Inf2,
}

impl<K: Ord + Copy> EKey<K> {
    fn is(&self, k: &K) -> bool {
        matches!(self, EKey::Key(x) if x == k)
    }
}

struct ENode<K, V> {
    key: EKey<K>,
    /// Present on leaves holding real keys.
    value: Option<V>,
    is_leaf: bool,
    left: Atomic<ENode<K, V>>,
    right: Atomic<ENode<K, V>>,
    /// (Info pointer, state tag). Internal nodes only.
    update: Atomic<Info<K, V>>,
}

impl<K, V> ENode<K, V> {
    fn leaf(key: EKey<K>, value: Option<V>) -> Self {
        Self {
            key,
            value,
            is_leaf: true,
            left: Atomic::null(),
            right: Atomic::null(),
            update: Atomic::null(),
        }
    }

    fn internal(key: EKey<K>) -> Self {
        Self {
            key,
            value: None,
            is_leaf: false,
            left: Atomic::null(),
            right: Atomic::null(),
            update: Atomic::null(),
        }
    }
}

/// Operation descriptor. Raw node pointers are safe to follow while pinned:
/// a record is only reachable from `update` words, and both records and
/// nodes are retired through the epoch.
enum Info<K, V> {
    Insert {
        p: *const ENode<K, V>,
        l: *const ENode<K, V>,
        new_internal: *const ENode<K, V>,
    },
    Delete {
        gp: *const ENode<K, V>,
        p: *const ENode<K, V>,
        l: *const ENode<K, V>,
        /// p's update word observed by the search (pointer + tag).
        pupdate_ptr: *const Info<K, V>,
        pupdate_tag: usize,
    },
}

// SAFETY: the raw pointers are epoch-protected shared nodes/records; all
// mutation goes through atomics on the pointees.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for Info<K, V> {}
// SAFETY: as above — shared access only ever goes through the atomics.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Info<K, V> {}

fn eref<'g, K, V>(s: Shared<'g, ENode<K, V>>) -> &'g ENode<K, V> {
    debug_assert!(!s.is_null());
    // SAFETY: epoch-protected (see module docs).
    unsafe { s.deref() }
}

/// Result of the standard EFRB search.
struct SearchResult<'g, K: Key, V: Value> {
    gp: Shared<'g, ENode<K, V>>,
    p: Shared<'g, ENode<K, V>>,
    l: Shared<'g, ENode<K, V>>,
    pupdate: Shared<'g, Info<K, V>>,
    gpupdate: Shared<'g, Info<K, V>>,
}

/// The non-blocking external BST.
pub struct EfrbTreeMap<K: Key, V: Value> {
    root: Atomic<ENode<K, V>>,
}

impl<K: Key, V: Value> EfrbTreeMap<K, V> {
    /// Empty tree: root = Internal(∞₂) with leaves ∞₁ and ∞₂.
    pub fn new() -> Self {
        // SAFETY: the tree is not yet shared; no other thread can free nodes.
        let g = unsafe { epoch::unprotected() };
        let root = Owned::new(ENode::internal(EKey::Inf2)).into_shared(g);
        let l1 = Owned::new(ENode::leaf(EKey::Inf1, None)).into_shared(g);
        let l2 = Owned::new(ENode::leaf(EKey::Inf2, None)).into_shared(g);
        eref(root).left.store(l1, Ordering::Release);
        eref(root).right.store(l2, Ordering::Release);
        Self { root: Atomic::from(root) }
    }

    /// The standard search: returns leaf + parent + grandparent and the
    /// update words read *before* following the child pointers.
    fn search<'g>(&self, key: &K, g: &'g Guard) -> SearchResult<'g, K, V> {
        let mut gp = Shared::null();
        let mut gpupdate = Shared::null();
        let mut p = Shared::null();
        let mut pupdate = Shared::null();
        let mut l = self.root.load(Ordering::Acquire, g);
        while !eref(l).is_leaf {
            gp = p;
            gpupdate = pupdate;
            p = l;
            pupdate = eref(p).update.load(Ordering::Acquire, g);
            let go_left = match &eref(p).key {
                EKey::Key(pk) => key < pk,
                _ => true, // real keys sort below both infinities
            };
            l = if go_left {
                eref(p).left.load(Ordering::Acquire, g)
            } else {
                eref(p).right.load(Ordering::Acquire, g)
            };
        }
        SearchResult { gp, p, l, pupdate, gpupdate }
    }

    /// CAS `parent`'s child pointer from `old` to `new` (on whichever side
    /// currently holds `old`). Returns whether this thread's CAS succeeded.
    fn cas_child<'g>(
        &self,
        parent: Shared<'g, ENode<K, V>>,
        old: Shared<'g, ENode<K, V>>,
        new: Shared<'g, ENode<K, V>>,
        g: &'g Guard,
    ) -> bool {
        let pr = eref(parent);
        let slot = if pr.left.load(Ordering::Acquire, g) == old { &pr.left } else { &pr.right };
        slot.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire, g).is_ok()
    }

    /// Dispatches on a flagged update word to finish the stalled operation.
    fn help<'g>(&self, u: Shared<'g, Info<K, V>>, g: &'g Guard) {
        match u.tag() {
            IFLAG => self.help_insert(u.with_tag(0), g),
            MARK => self.help_marked(u.with_tag(0), g),
            DFLAG => {
                let _ = self.help_delete(u.with_tag(0), g);
            }
            _ => {}
        }
    }

    fn info<'g>(&self, u: Shared<'g, Info<K, V>>) -> &'g Info<K, V> {
        debug_assert!(!u.is_null());
        // SAFETY: info records are epoch-protected.
        unsafe { u.deref() }
    }

    fn help_insert<'g>(&self, op: Shared<'g, Info<K, V>>, g: &'g Guard) {
        let Info::Insert { p, l, new_internal } = self.info(op) else {
            unreachable!("IFlag always points to an Insert record")
        };
        let p = Shared::from(*p);
        let l = Shared::from(*l);
        let new_internal = Shared::from(*new_internal);
        self.cas_child(p, l, new_internal, g);
        // Note: the replaced leaf `l` is reused as a child of new_internal,
        // so nothing is retired here.
        let _ = eref(p).update.compare_exchange(
            op.with_tag(IFLAG),
            op.with_tag(CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
            g,
        );
    }

    /// Returns `true` if the delete owning `op` is complete (p marked).
    fn help_delete<'g>(&self, op: Shared<'g, Info<K, V>>, g: &'g Guard) -> bool {
        let Info::Delete { gp, p, pupdate_ptr, pupdate_tag, .. } = self.info(op) else {
            unreachable!("DFlag/Mark always point to a Delete record")
        };
        let gp = Shared::from(*gp);
        let p = Shared::from(*p);
        let expected = Shared::from(*pupdate_ptr).with_tag(*pupdate_tag);
        match eref(p).update.compare_exchange(
            expected,
            op.with_tag(MARK),
            Ordering::AcqRel,
            Ordering::Acquire,
            g,
        ) {
            Ok(_) => {
                // We replaced the Clean record with the mark: retire it.
                if !expected.with_tag(0).is_null() {
                    // SAFETY: the CAS winner is the unique retirer of the
                    // replaced record; readers hold epoch guards.
                    unsafe { g.defer_destroy(expected.with_tag(0)) };
                }
                self.help_marked(op, g);
                true
            }
            Err(e) => {
                if e.current == op.with_tag(MARK) {
                    // Already marked by a helper: finish the splice.
                    self.help_marked(op, g);
                    return true;
                }
                // Backtrack: help the interfering operation, then unflag gp.
                self.help(e.current, g);
                let _ = eref(gp).update.compare_exchange(
                    op.with_tag(DFLAG),
                    op.with_tag(CLEAN),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    g,
                );
                false
            }
        }
    }

    fn help_marked<'g>(&self, op: Shared<'g, Info<K, V>>, g: &'g Guard) {
        let Info::Delete { gp, p, l, .. } = self.info(op) else {
            unreachable!("Mark always points to a Delete record")
        };
        let gp = Shared::from(*gp);
        let p = Shared::from(*p);
        let l = Shared::from(*l);
        // Splice p out: gp adopts p's other child.
        let pr = eref(p);
        let right = pr.right.load(Ordering::Acquire, g);
        let other =
            if right == l { pr.left.load(Ordering::Acquire, g) } else { right };
        if self.cas_child(gp, p, other, g) {
            // SAFETY: unique winner retires the two unlinked nodes (the
            // child CAS succeeds exactly once). The Mark record in p.update
            // is shared with gp.update and is retired by gp's next flagger
            // (or the tree's Drop). Readers hold epoch guards.
            unsafe {
                g.defer_destroy(p);
                g.defer_destroy(l);
            }
        }
        let _ = eref(gp).update.compare_exchange(
            op.with_tag(DFLAG),
            op.with_tag(CLEAN),
            Ordering::AcqRel,
            Ordering::Acquire,
            g,
        );
    }

    fn insert_impl(&self, key: K, value: V) -> bool {
        let g = &epoch::pin();
        let mut value = Some(value);
        loop {
            let s = self.search(&key, g);
            if eref(s.l).key.is(&key) {
                return false;
            }
            if s.pupdate.tag() != CLEAN {
                self.help(s.pupdate, g);
                continue;
            }
            // Build: new leaf + new internal adopting the old leaf.
            let l_key = eref(s.l).key;
            let new_leaf =
                Owned::new(ENode::leaf(EKey::Key(key), value.take())).into_shared(g);
            let ikey = l_key.max(EKey::Key(key));
            let new_internal = Owned::new(ENode::internal(ikey)).into_shared(g);
            if EKey::Key(key) < l_key {
                eref(new_internal).left.store(new_leaf, Ordering::Release);
                eref(new_internal).right.store(s.l, Ordering::Release);
            } else {
                eref(new_internal).left.store(s.l, Ordering::Release);
                eref(new_internal).right.store(new_leaf, Ordering::Release);
            }
            let op = Owned::new(Info::Insert {
                p: s.p.as_raw(),
                l: s.l.as_raw(),
                new_internal: new_internal.as_raw(),
            })
            .into_shared(g);
            match eref(s.p).update.compare_exchange(
                s.pupdate,
                op.with_tag(IFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
                g,
            ) {
                Ok(_) => {
                    // Retire the replaced Clean record.
                    if !s.pupdate.with_tag(0).is_null() {
                        // SAFETY: the flag CAS winner is the unique retirer
                        // of the record it displaced.
                        unsafe { g.defer_destroy(s.pupdate.with_tag(0)) };
                    }
                    self.help_insert(op, g);
                    return true;
                }
                Err(e) => {
                    // SAFETY: (×3) the flag CAS failed, so none of the
                    // three speculative allocations was ever published; this
                    // thread still owns them exclusively.
                    let mut leaf = unsafe { new_leaf.into_owned() };
                    value = leaf.value.take();
                    drop(leaf);
                    // SAFETY: as above — never published.
                    drop(unsafe { new_internal.into_owned() });
                    // SAFETY: as above — never published.
                    drop(unsafe { op.into_owned() });
                    self.help(e.current, g);
                }
            }
        }
    }

    fn remove_impl(&self, key: &K) -> bool {
        let g = &epoch::pin();
        loop {
            let s = self.search(key, g);
            if !eref(s.l).key.is(key) {
                return false;
            }
            if s.gpupdate.tag() != CLEAN {
                self.help(s.gpupdate, g);
                continue;
            }
            if s.pupdate.tag() != CLEAN {
                self.help(s.pupdate, g);
                continue;
            }
            debug_assert!(!s.gp.is_null(), "real leaves always have a grandparent");
            let op = Owned::new(Info::Delete {
                gp: s.gp.as_raw(),
                p: s.p.as_raw(),
                l: s.l.as_raw(),
                pupdate_ptr: s.pupdate.with_tag(0).as_raw(),
                pupdate_tag: s.pupdate.tag(),
            })
            .into_shared(g);
            match eref(s.gp).update.compare_exchange(
                s.gpupdate,
                op.with_tag(DFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
                g,
            ) {
                Ok(_) => {
                    if !s.gpupdate.with_tag(0).is_null() {
                        // SAFETY: the flag CAS winner is the unique retirer
                        // of the record it displaced.
                        unsafe { g.defer_destroy(s.gpupdate.with_tag(0)) };
                    }
                    if self.help_delete(op, g) {
                        return true;
                    }
                    // Backtracked; op stays published in gp's Clean word and
                    // is retired by gp's next flagger.
                }
                Err(e) => {
                    // SAFETY: the flag CAS failed, so the op record was never
                    // published; this thread still owns it exclusively.
                    drop(unsafe { op.into_owned() });
                    self.help(e.current, g);
                }
            }
        }
    }
}

impl<K: Key, V: Value> Default for EfrbTreeMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> Drop for EfrbTreeMap<K, V> {
    fn drop(&mut self) {
        // Quiescent teardown: free all reachable nodes and each internal
        // node's update record. Records are uniquely owned by the single
        // live node whose update word points at them (marked nodes were
        // already unlinked and retired).
        // SAFETY: &mut self — no concurrent readers or writers remain.
        let g = unsafe { epoch::unprotected() };
        let mut stack = vec![self.root.load(Ordering::Relaxed, g)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = eref(n);
            stack.push(r.left.load(Ordering::Relaxed, g));
            stack.push(r.right.load(Ordering::Relaxed, g));
            let u = r.update.load(Ordering::Relaxed, g).with_tag(0);
            if !u.is_null() {
                // SAFETY: quiescent teardown; each record freed exactly once.
                drop(unsafe { u.into_owned() });
            }
            // SAFETY: quiescent teardown; each node is reachable exactly once.
            drop(unsafe { n.into_owned() });
        }
    }
}

impl<K: Key, V: Value> ConcurrentMap<K, V> for EfrbTreeMap<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: &K) -> bool {
        let g = &epoch::pin();
        eref(self.search(key, g).l).key.is(key)
    }
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let g = &epoch::pin();
        let l = self.search(key, g).l;
        if eref(l).key.is(key) {
            eref(l).value.clone()
        } else {
            None
        }
    }
    fn name(&self) -> &'static str {
        "efrb"
    }
}

/// Snapshot-only ordered access: this structure has no ordering layer
/// (no `pred`/`succ` chain), so it cannot offer concurrent ordered reads
/// ([`lo_api::OrderedRead`]); quiescent in-order dumps are all it has.
impl<K: Key, V: Value> QuiescentOrdered<K> for EfrbTreeMap<K, V> {
    fn keys_in_order(&self) -> Vec<K> {
        let g = epoch::pin();
        let mut out = Vec::new();
        // In-order over the external tree: only leaves carry elements.
        let mut stack = vec![self.root.load(Ordering::Acquire, &g)];
        let mut ordered = Vec::new();
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = eref(n);
            if r.is_leaf {
                ordered.push(n);
            } else {
                // Right first so left pops first (pre-order becomes in-order
                // for external trees when collecting leaves left-to-right).
                stack.push(r.right.load(Ordering::Acquire, &g));
                stack.push(r.left.load(Ordering::Acquire, &g));
            }
        }
        for leaf in ordered {
            if let EKey::Key(k) = eref(leaf).key {
                out.push(k);
            }
        }
        out
    }
}

impl<K: Key, V: Value> CheckInvariants for EfrbTreeMap<K, V> {
    fn check_invariants(&self) {
        let g = epoch::pin();
        // Recursive bound check over (min, max) windows; external trees from
        // random workloads have expected-log depth, recursion is fine here
        // but we use an explicit stack anyway.
        let root = self.root.load(Ordering::Acquire, &g);
        type Frame<'g, K, V> = (Shared<'g, ENode<K, V>>, Option<EKey<K>>, Option<EKey<K>>);
        let mut stack: Vec<Frame<'_, K, V>> = vec![(root, None, None)];
        while let Some((n, lo, hi)) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = eref(n);
            if let Some(lo) = lo {
                assert!(r.key >= lo, "external BST order violated (lower)");
            }
            if let Some(hi) = hi {
                assert!(r.key < hi, "external BST order violated (upper)");
            }
            if r.is_leaf {
                assert!(
                    r.left.load(Ordering::Acquire, &g).is_null()
                        && r.right.load(Ordering::Acquire, &g).is_null(),
                    "leaf with children"
                );
                continue;
            }
            assert_eq!(
                r.update.load(Ordering::Acquire, &g).tag(),
                CLEAN,
                "pending flag at quiescence"
            );
            let l = r.left.load(Ordering::Acquire, &g);
            let rt = r.right.load(Ordering::Acquire, &g);
            assert!(!l.is_null() && !rt.is_null(), "internal node missing a child");
            // left subtree keys < node.key ≤ right subtree keys.
            stack.push((l, lo, Some(r.key)));
            stack.push((rt, Some(r.key), hi));
        }
        let keys = self.keys_in_order();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaves not strictly sorted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let m = EfrbTreeMap::new();
        assert!(!m.contains(&5));
        assert!(m.insert(5i64, 50u64));
        assert!(!m.insert(5, 51));
        assert_eq!(m.get(&5), Some(50));
        assert!(m.insert(2, 20));
        assert!(m.insert(8, 80));
        assert_eq!(m.keys_in_order(), vec![2, 5, 8]);
        assert!(m.remove(&5));
        assert!(!m.remove(&5));
        assert!(!m.contains(&5));
        assert_eq!(m.keys_in_order(), vec![2, 8]);
        m.check_invariants();
    }

    #[test]
    fn bulk_and_drain() {
        let m = EfrbTreeMap::new();
        for k in 0..1_000i64 {
            assert!(m.insert(k, k as u64));
        }
        m.check_invariants();
        for k in 0..1_000i64 {
            assert_eq!(m.get(&k), Some(k as u64));
            assert!(m.remove(&k));
        }
        assert!(m.keys_in_order().is_empty());
        m.check_invariants();
    }

    #[test]
    fn concurrent_net_balance() {
        let m = EfrbTreeMap::new();
        let nets: Vec<i64> = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        let mut x = 0xBEEF ^ (t + 1);
                        let mut net = 0i64;
                        for _ in 0..20_000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = (x % 100) as i64;
                            match x % 3 {
                                0 => {
                                    if m.insert(k, k as u64) {
                                        net += 1;
                                    }
                                }
                                1 => {
                                    if m.remove(&k) {
                                        net -= 1;
                                    }
                                }
                                _ => {
                                    let _ = m.contains(&k);
                                }
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(m.keys_in_order().len() as i64, nets.iter().sum::<i64>());
        m.check_invariants();
    }
}
