//! Coarse-grained locked baseline: one `RwLock` around the sequential AVL.
//!
//! Not a paper comparator — it is the "what does fine-grained concurrency
//! buy" control series and the trustworthy oracle for concurrent
//! differential tests.

use parking_lot::RwLock;

use crate::seq::SeqAvl;
use lo_api::{CheckInvariants, ConcurrentMap, Key, QuiescentOrdered, Value};

/// `RwLock<SeqAvl>` — readers share, writers exclude everyone.
pub struct CoarseAvlMap<K: Key, V: Value> {
    inner: RwLock<SeqAvl<K, V>>,
}

impl<K: Key, V: Value> CoarseAvlMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        Self { inner: RwLock::new(SeqAvl::new()) }
    }

    /// Number of keys (exact; takes the read lock).
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl<K: Key, V: Value> Default for CoarseAvlMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> ConcurrentMap<K, V> for CoarseAvlMap<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        self.inner.write().insert(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.inner.write().remove(key)
    }
    fn contains(&self, key: &K) -> bool {
        self.inner.read().contains(key)
    }
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.inner.read().get(key).cloned()
    }
    fn name(&self) -> &'static str {
        "coarse-rwlock-avl"
    }
}

/// Snapshot-only ordered access: this structure has no ordering layer
/// (no `pred`/`succ` chain), so it cannot offer concurrent ordered reads
/// ([`lo_api::OrderedRead`]); quiescent in-order dumps are all it has.
impl<K: Key, V: Value> QuiescentOrdered<K> for CoarseAvlMap<K, V> {
    fn keys_in_order(&self) -> Vec<K> {
        self.inner.read().keys_in_order()
    }
}

impl<K: Key, V: Value> CheckInvariants for CoarseAvlMap<K, V> {
    fn check_invariants(&self) {
        self.inner.read().check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_counters_balance() {
        let map = CoarseAvlMap::<i64, u64>::new();
        let nets: Vec<i64> = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    let map = &map;
                    s.spawn(move || {
                        let mut x = 0xABCDEF ^ (t + 1);
                        let mut net = 0i64;
                        for _ in 0..10_000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = (x % 64) as i64;
                            if x % 2 == 0 {
                                if map.insert(k, 0) {
                                    net += 1;
                                }
                            } else if map.remove(&k) {
                                net -= 1;
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(map.len() as i64, nets.iter().sum::<i64>());
        map.check_invariants();
    }
}
