//! NM tree: the lock-free external BST of Natarajan & Mittal (PPoPP 2014,
//! cited by the paper as contemporaneous state of the art) — included as an
//! extension comparator.
//!
//! Unlike EFRB, synchronization state lives on **edges** (parent→child
//! pointers), using two tag bits:
//! * `FLAG` — the leaf below this edge is being deleted;
//! * `TAG`  — no insertion may ever happen at this edge (it belongs to a
//!   deletion's doomed chain).
//!
//! A deletion flags the edge to its leaf, tags the sibling edge, and then
//! splices at the *ancestor* — the deepest node whose on-path edge is
//! untagged — removing the whole tagged chain in one CAS. Flags and tags are
//! sticky, so a fully tagged chain is immutable; the unique splice winner
//! walks the detached chain and retires it through the epoch (minus the
//! surviving sibling subtree). A per-node `retired` flag guards against any
//! double retire.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::sync::atomic::{AtomicBool, Ordering};

use lo_api::{CheckInvariants, ConcurrentMap, Key, QuiescentOrdered, Value};

/// Edge bits.
const FLAG: usize = 1;
const TAG: usize = 2;

/// Key with three infinity sentinels (`Key < Inf0 < Inf1 < Inf2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum NKey<K> {
    Key(K),
    Inf0,
    Inf1,
    Inf2,
}

struct NNode<K, V> {
    key: NKey<K>,
    value: Option<V>,
    is_leaf: bool,
    left: Atomic<NNode<K, V>>,
    right: Atomic<NNode<K, V>>,
    /// Claimed with an AcqRel swap (unique retirer); asserted with Acquire
    /// loads in the invariant checker.
    retired: AtomicBool,
}

impl<K, V> NNode<K, V> {
    fn leaf(key: NKey<K>, value: Option<V>) -> Self {
        Self {
            key,
            value,
            is_leaf: true,
            left: Atomic::null(),
            right: Atomic::null(),
            retired: AtomicBool::new(false),
        }
    }

    fn internal(key: NKey<K>) -> Self {
        let mut n = Self::leaf(key, None);
        n.is_leaf = false;
        n
    }
}

fn mref<'g, K, V>(s: Shared<'g, NNode<K, V>>) -> &'g NNode<K, V> {
    debug_assert!(!s.with_tag(0).is_null());
    // SAFETY: nodes retired only via the epoch after detaching.
    unsafe { s.with_tag(0).deref() }
}

struct Seek<'g, K: Key, V: Value> {
    ancestor: Shared<'g, NNode<K, V>>,
    successor: Shared<'g, NNode<K, V>>,
    parent: Shared<'g, NNode<K, V>>,
    leaf: Shared<'g, NNode<K, V>>,
}

/// The Natarajan–Mittal lock-free external BST.
pub struct NmTreeMap<K: Key, V: Value> {
    root: Atomic<NNode<K, V>>,
}

impl<K: Key, V: Value> NmTreeMap<K, V> {
    /// Empty tree: R(∞₂){ S(∞₁){ leaf ∞₀, leaf ∞₁ }, leaf ∞₂ }.
    pub fn new() -> Self {
        // SAFETY: the tree is not yet shared; no other thread can free nodes.
        let g = unsafe { epoch::unprotected() };
        let r = Owned::new(NNode::internal(NKey::Inf2)).into_shared(g);
        let s = Owned::new(NNode::internal(NKey::Inf1)).into_shared(g);
        let l0 = Owned::new(NNode::leaf(NKey::Inf0, None)).into_shared(g);
        let l1 = Owned::new(NNode::leaf(NKey::Inf1, None)).into_shared(g);
        let l2 = Owned::new(NNode::leaf(NKey::Inf2, None)).into_shared(g);
        mref(s).left.store(l0, Ordering::Release);
        mref(s).right.store(l1, Ordering::Release);
        mref(r).left.store(s, Ordering::Release);
        mref(r).right.store(l2, Ordering::Release);
        Self { root: Atomic::from(r) }
    }

    fn root_sh<'g>(&self, g: &'g Guard) -> Shared<'g, NNode<K, V>> {
        self.root.load(Ordering::Relaxed, g)
    }

    #[inline]
    fn go_left(key: &K, node_key: &NKey<K>) -> bool {
        match node_key {
            NKey::Key(nk) => key < nk,
            _ => true,
        }
    }

    #[inline]
    fn child_edge(node: &NNode<K, V>, left: bool) -> &Atomic<NNode<K, V>> {
        if left {
            &node.left
        } else {
            &node.right
        }
    }

    /// NM seek: returns ancestor/successor (deepest untagged on-path edge),
    /// parent and leaf.
    fn seek<'g>(&self, key: &K, g: &'g Guard) -> Seek<'g, K, V> {
        let r = self.root_sh(g);
        let mut ancestor = r;
        let mut successor = mref(r).left.load(Ordering::Acquire, g).with_tag(0);
        let mut parent = r;
        let mut cur_edge = mref(r).left.load(Ordering::Acquire, g);
        let mut current = cur_edge.with_tag(0);
        loop {
            if mref(current).is_leaf {
                return Seek { ancestor, successor, parent, leaf: current };
            }
            if cur_edge.tag() & TAG == 0 {
                ancestor = parent;
                successor = current;
            }
            parent = current;
            let left = Self::go_left(key, &mref(current).key);
            cur_edge = Self::child_edge(mref(current), left).load(Ordering::Acquire, g);
            current = cur_edge.with_tag(0);
        }
    }

    /// Performs the splice for the deletion whose leaf lies on `key`'s path.
    /// Returns whether this call's splice CAS succeeded.
    fn cleanup<'g>(&self, key: &K, sr: &Seek<'g, K, V>, g: &'g Guard) -> bool {
        let p = mref(sr.parent);
        // Which side holds the key (the deleted leaf), which the sibling.
        let left_side = Self::go_left(key, &p.key);
        let (child_atomic, mut sibling_atomic) = if left_side {
            (&p.left, &p.right)
        } else {
            (&p.right, &p.left)
        };
        let child_edge = child_atomic.load(Ordering::Acquire, g);
        if child_edge.tag() & FLAG == 0 {
            // The flagged leaf is the other child: keep our side instead.
            sibling_atomic = child_atomic;
        }
        // Tag the sibling edge (sticky; preserves flag + address).
        loop {
            let e = sibling_atomic.load(Ordering::Acquire, g);
            if e.tag() & TAG != 0 {
                break;
            }
            if sibling_atomic
                .compare_exchange(e, e.with_tag(e.tag() | TAG), Ordering::AcqRel, Ordering::Acquire, g)
                .is_ok()
            {
                break;
            }
        }
        // Splice: ancestor's on-path edge swings from successor to the
        // sibling subtree (flag preserved, tag cleared).
        let sibling_edge = sibling_atomic.load(Ordering::Acquire, g);
        let a_left = Self::go_left(key, &mref(sr.ancestor).key);
        let a_edge = Self::child_edge(mref(sr.ancestor), a_left);
        let ok = a_edge
            .compare_exchange(
                sr.successor.with_tag(0),
                sibling_edge.with_tag(sibling_edge.tag() & FLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
                g,
            )
            .is_ok();
        if ok {
            // Unique winner: retire the detached chain (everything under the
            // old successor except the surviving sibling subtree). The chain
            // is immutable (fully flagged/tagged), so this walk is stable.
            self.retire_detached(sr.successor.with_tag(0), sibling_edge.with_tag(0), g);
        }
        ok
    }

    fn retire_detached<'g>(
        &self,
        from: Shared<'g, NNode<K, V>>,
        keep: Shared<'g, NNode<K, V>>,
        g: &'g Guard,
    ) {
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n.is_null() || n == keep {
                continue;
            }
            let r = mref(n);
            if r.retired.swap(true, Ordering::AcqRel) {
                continue; // belt-and-suspenders: someone else owns it
            }
            if !r.is_leaf {
                stack.push(r.left.load(Ordering::Acquire, g).with_tag(0));
                stack.push(r.right.load(Ordering::Acquire, g).with_tag(0));
            }
            // SAFETY: the `retired` swap above makes this thread the unique
            // retirer of `n`; the subtree was unlinked by the winning CAS and
            // readers hold epoch guards.
            unsafe { g.defer_destroy(n) };
        }
    }

    fn insert_impl(&self, key: K, value: V) -> bool {
        let g = &epoch::pin();
        let mut value = Some(value);
        loop {
            let sr = self.seek(&key, g);
            let l = mref(sr.leaf);
            if matches!(l.key, NKey::Key(k) if k == key) {
                return false;
            }
            let p = mref(sr.parent);
            let left_side = Self::go_left(&key, &p.key);
            let slot = Self::child_edge(p, left_side);
            // Build Internal over (old leaf, new leaf).
            let v = value.take().expect("value unconsumed");
            let new_leaf = Owned::new(NNode::leaf(NKey::Key(key), Some(v))).into_shared(g);
            let ikey = l.key.max(NKey::Key(key));
            let internal = Owned::new(NNode::internal(ikey)).into_shared(g);
            if NKey::Key(key) < l.key {
                mref(internal).left.store(new_leaf, Ordering::Release);
                mref(internal).right.store(sr.leaf, Ordering::Release);
            } else {
                mref(internal).left.store(sr.leaf, Ordering::Release);
                mref(internal).right.store(new_leaf, Ordering::Release);
            }
            match slot.compare_exchange(
                sr.leaf.with_tag(0),
                internal,
                Ordering::AcqRel,
                Ordering::Acquire,
                g,
            ) {
                Ok(_) => return true,
                Err(e) => {
                    // SAFETY: the CAS failed, so neither speculative node
                    // was published; this thread still uniquely owns both.
                    let mut lf = unsafe { new_leaf.into_owned() };
                    value = lf.value.take();
                    drop(lf);
                    // SAFETY: as above — never published.
                    drop(unsafe { internal.into_owned() });
                    // Help a pending deletion occupying our edge.
                    if e.current.with_tag(0) == sr.leaf.with_tag(0)
                        && e.current.tag() & (FLAG | TAG) != 0
                    {
                        self.cleanup(&key, &sr, g);
                    }
                }
            }
        }
    }

    fn remove_impl(&self, key: &K) -> bool {
        let g = &epoch::pin();
        let mut injecting = true;
        let mut my_leaf: Shared<'_, NNode<K, V>> = Shared::null();
        loop {
            let sr = self.seek(key, g);
            if injecting {
                let l = mref(sr.leaf);
                if !matches!(l.key, NKey::Key(k) if k == *key) {
                    return false;
                }
                let p = mref(sr.parent);
                let left_side = Self::go_left(key, &p.key);
                let slot = Self::child_edge(p, left_side);
                match slot.compare_exchange(
                    sr.leaf.with_tag(0),
                    sr.leaf.with_tag(FLAG),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    g,
                ) {
                    Ok(_) => {
                        // Injection done: the delete is linearized here.
                        injecting = false;
                        my_leaf = sr.leaf.with_tag(0);
                        if self.cleanup(key, &sr, g) {
                            return true;
                        }
                    }
                    Err(e) => {
                        if e.current.with_tag(0) == sr.leaf.with_tag(0)
                            && e.current.tag() & (FLAG | TAG) != 0
                        {
                            self.cleanup(key, &sr, g);
                        }
                    }
                }
            } else {
                // Cleanup mode: done once our flagged leaf left the tree.
                if sr.leaf.with_tag(0) != my_leaf {
                    return true;
                }
                if self.cleanup(key, &sr, g) {
                    return true;
                }
            }
        }
    }
}

impl<K: Key, V: Value> Default for NmTreeMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> Drop for NmTreeMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: &mut self — no concurrent readers or writers remain.
        let g = unsafe { epoch::unprotected() };
        let mut stack = vec![self.root.load(Ordering::Relaxed, g).with_tag(0)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = mref(n);
            stack.push(r.left.load(Ordering::Relaxed, g).with_tag(0));
            stack.push(r.right.load(Ordering::Relaxed, g).with_tag(0));
            // SAFETY: quiescent teardown; each node is reachable exactly once.
            drop(unsafe { n.into_owned() });
        }
    }
}

impl<K: Key, V: Value> ConcurrentMap<K, V> for NmTreeMap<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: &K) -> bool {
        let g = &epoch::pin();
        let sr = self.seek(key, g);
        matches!(mref(sr.leaf).key, NKey::Key(k) if k == *key)
    }
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let g = &epoch::pin();
        let sr = self.seek(key, g);
        let l = mref(sr.leaf);
        if matches!(l.key, NKey::Key(k) if k == *key) {
            l.value.clone()
        } else {
            None
        }
    }
    fn name(&self) -> &'static str {
        "nm"
    }
}

/// Snapshot-only ordered access: this structure has no ordering layer
/// (no `pred`/`succ` chain), so it cannot offer concurrent ordered reads
/// ([`lo_api::OrderedRead`]); quiescent in-order dumps are all it has.
impl<K: Key, V: Value> QuiescentOrdered<K> for NmTreeMap<K, V> {
    fn keys_in_order(&self) -> Vec<K> {
        let g = epoch::pin();
        let mut out = Vec::new();
        let mut stack = vec![self.root_sh(&g).with_tag(0)];
        let mut leaves = Vec::new();
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = mref(n);
            if r.is_leaf {
                leaves.push(n);
            } else {
                stack.push(r.right.load(Ordering::Acquire, &g).with_tag(0));
                stack.push(r.left.load(Ordering::Acquire, &g).with_tag(0));
            }
        }
        for leaf in leaves {
            if let NKey::Key(k) = mref(leaf).key {
                out.push(k);
            }
        }
        out
    }
}

impl<K: Key, V: Value> CheckInvariants for NmTreeMap<K, V> {
    fn check_invariants(&self) {
        let g = epoch::pin();
        let root = self.root_sh(&g);
        type Frame<'g, K, V> = (Shared<'g, NNode<K, V>>, Option<NKey<K>>, Option<NKey<K>>);
        let mut stack: Vec<Frame<'_, K, V>> = vec![(root, None, None)];
        while let Some((n, lo, hi)) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = mref(n);
            assert!(!r.retired.load(Ordering::Acquire), "retired node reachable");
            if let Some(lo) = lo {
                assert!(r.key >= lo, "external BST order violated (lower)");
            }
            if let Some(hi) = hi {
                assert!(r.key < hi, "external BST order violated (upper)");
            }
            if r.is_leaf {
                continue;
            }
            let l = r.left.load(Ordering::Acquire, &g);
            let rt = r.right.load(Ordering::Acquire, &g);
            assert_eq!(l.tag() & (FLAG | TAG), 0, "pending deletion at quiescence");
            assert_eq!(rt.tag() & (FLAG | TAG), 0, "pending deletion at quiescence");
            assert!(!l.is_null() && !rt.is_null(), "internal node missing a child");
            stack.push((l.with_tag(0), lo, Some(r.key)));
            stack.push((rt.with_tag(0), Some(r.key), hi));
        }
        let keys = self.keys_in_order();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaves not strictly sorted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let m = NmTreeMap::new();
        assert!(m.insert(5i64, 50u64));
        assert!(!m.insert(5, 51));
        assert_eq!(m.get(&5), Some(50));
        assert!(m.insert(2, 20));
        assert!(m.insert(8, 80));
        assert_eq!(m.keys_in_order(), vec![2, 5, 8]);
        assert!(m.remove(&5));
        assert!(!m.remove(&5));
        assert!(!m.contains(&5));
        m.check_invariants();
    }

    #[test]
    fn bulk_and_drain() {
        let m = NmTreeMap::new();
        for k in 0..1_000i64 {
            assert!(m.insert(k, k as u64));
        }
        m.check_invariants();
        for k in (0..1_000i64).rev() {
            assert_eq!(m.get(&k), Some(k as u64));
            assert!(m.remove(&k));
        }
        assert!(m.keys_in_order().is_empty());
        m.check_invariants();
    }

    #[test]
    fn concurrent_net_balance() {
        let m = NmTreeMap::new();
        let nets: Vec<i64> = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        let mut x = 0xAB1E ^ (t + 1);
                        let mut net = 0i64;
                        for _ in 0..20_000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = (x % 100) as i64;
                            match x % 3 {
                                0 => {
                                    if m.insert(k, k as u64) {
                                        net += 1;
                                    }
                                }
                                1 => {
                                    if m.remove(&k) {
                                        net -= 1;
                                    }
                                }
                                _ => {
                                    let _ = m.contains(&k);
                                }
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(m.keys_in_order().len() as i64, nets.iter().sum::<i64>());
        m.check_invariants();
    }
}
