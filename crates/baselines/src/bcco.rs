//! BCCO tree: the lock-based, partially-external, relaxed-balance AVL tree
//! of Bronson, Casper, Chafi and Olukotun (PPoPP 2010) — the paper's primary
//! balanced comparator.
//!
//! Synchronization recipe (per the original):
//! * **Optimistic hand-over-hand version validation** for traversals: every
//!   node carries a version word with a `SHRINKING` bit (set while the node
//!   is being rotated down), an `UNLINKED` bit (terminal) and a shrink
//!   counter. A reader records a node's version, reads the child pointer,
//!   revalidates the version, and descends; if the child is shrinking it
//!   *waits* (this is why BCCO lookups are not lock-free — the contrast the
//!   logical-ordering paper draws).
//! * **Per-node locks** for updates, always acquired parent → child.
//! * **Partially-external deletion**: removing a node with two children only
//!   nulls its value (a routing "zombie" remains); routing nodes with ≤1
//!   child are unlinked by the rebalancer or on later removals.
//! * **Relaxed AVL balance** restored by local rotations driven by per-node
//!   heights after every update.
//!
//! Memory reclamation via epochs (the original relies on the JVM GC).

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::cmp::Ordering as Cmp;
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};

use crate::lock::RawLock;
use lo_api::{CheckInvariants, ConcurrentMap, Key, QuiescentOrdered, Value};

const UNLINKED: u64 = 1;
const SHRINKING: u64 = 2;
const SHRINK_INC: u64 = 4;

struct BNode<K, V> {
    /// `None` only for the root holder (acts as −∞; everything descends
    /// right).
    key: Option<K>,
    version: AtomicU64,
    /// Null pointer = routing node (logically absent key).
    value: Atomic<V>,
    height: AtomicI32,
    left: Atomic<BNode<K, V>>,
    right: Atomic<BNode<K, V>>,
    parent: Atomic<BNode<K, V>>,
    lock: RawLock,
}

impl<K, V> BNode<K, V> {
    fn new(key: Option<K>, value: Atomic<V>, height: i32) -> Self {
        Self {
            key,
            version: AtomicU64::new(0),
            value,
            height: AtomicI32::new(height),
            left: Atomic::null(),
            right: Atomic::null(),
            parent: Atomic::null(),
            lock: RawLock::new(),
        }
    }

    #[inline]
    fn ver(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    #[inline]
    fn is_unlinked(&self) -> bool {
        self.ver() & UNLINKED != 0
    }

    #[inline]
    fn h(&self) -> i32 {
        self.height.load(Ordering::Relaxed)
    }

    #[inline]
    fn child<'g>(&self, right: bool, g: &'g Guard) -> Shared<'g, BNode<K, V>> {
        if right {
            self.right.load(Ordering::Acquire, g)
        } else {
            self.left.load(Ordering::Acquire, g)
        }
    }
}

impl<K, V> Drop for BNode<K, V> {
    fn drop(&mut self) {
        // SAFETY: drop implies exclusive access (epoch reclamation already
        // proved no reader can still hold a reference).
        let g = unsafe { epoch::unprotected() };
        let v = self.value.swap(Shared::null(), Ordering::Relaxed, g);
        if !v.is_null() {
            // SAFETY: the value pointer is uniquely owned by this node.
            drop(unsafe { v.into_owned() });
        }
    }
}

fn bref<'g, K, V>(s: Shared<'g, BNode<K, V>>) -> &'g BNode<K, V> {
    debug_assert!(!s.is_null());
    // SAFETY: nodes are retired only via the epoch after unlinking.
    unsafe { s.deref() }
}

fn node_height<K, V>(s: Shared<'_, BNode<K, V>>) -> i32 {
    if s.is_null() {
        0
    } else {
        bref(s).h()
    }
}

/// Outcome of a recursive attempt; `Retry` bubbles one frame up.
enum Attempt<T> {
    Done(T),
    Retry,
}

/// What `fix_height_and_rebalance` decides a node needs.
enum Condition {
    Nothing,
    UnlinkRequired,
    RebalanceRequired,
    FixHeight,
}

/// The BCCO relaxed-balance partially-external AVL tree.
pub struct BccoTreeMap<K: Key, V: Value> {
    root_holder: Atomic<BNode<K, V>>,
}

impl<K: Key, V: Value> BccoTreeMap<K, V> {
    /// Empty tree.
    pub fn new() -> Self {
        // SAFETY: the tree is not yet shared; no other thread can free nodes.
        let g = unsafe { epoch::unprotected() };
        let holder = Owned::new(BNode::new(None, Atomic::null(), 0)).into_shared(g);
        Self { root_holder: Atomic::from(holder) }
    }

    fn holder<'g>(&self, g: &'g Guard) -> Shared<'g, BNode<K, V>> {
        self.root_holder.load(Ordering::Relaxed, g)
    }

    /// Spin until a shrink in progress completes.
    fn wait_until_shrink_completed(&self, node: &BNode<K, V>, v: u64) {
        if v & SHRINKING == 0 {
            return;
        }
        let mut spins = 0u32;
        while node.ver() == v {
            spins += 1;
            if spins > 100 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    fn get_impl<R>(&self, key: &K, read: impl Fn(&V) -> R + Copy) -> Option<R> {
        let g = &epoch::pin();
        loop {
            let holder = self.holder(g);
            // The root holder never shrinks or unlinks: version stays 0.
            match self.attempt_get(key, bref(holder), 0, true, read, g) {
                Attempt::Done(r) => return r,
                Attempt::Retry => continue,
            }
        }
    }

    fn attempt_get<'g, R>(
        &self,
        key: &K,
        node: &'g BNode<K, V>,
        node_v: u64,
        dir_right: bool,
        read: impl Fn(&V) -> R + Copy,
        g: &'g Guard,
    ) -> Attempt<Option<R>> {
        loop {
            let child = node.child(dir_right, g);
            if node.ver() != node_v {
                return Attempt::Retry;
            }
            if child.is_null() {
                return Attempt::Done(None);
            }
            let c = bref(child);
            let next_right = match c.key.as_ref() {
                Some(ck) => match key.cmp(ck) {
                    Cmp::Equal => {
                        // Found the key node; its value decides presence.
                        let v = c.value.load(Ordering::Acquire, g);
                        if v.is_null() {
                            return Attempt::Done(None);
                        }
                        // SAFETY: value pointers are epoch-protected.
                        return Attempt::Done(Some(read(unsafe { v.deref() })));
                    }
                    Cmp::Less => false,
                    Cmp::Greater => true,
                },
                None => true,
            };
            let child_v = c.ver();
            if child_v & SHRINKING != 0 {
                self.wait_until_shrink_completed(c, child_v);
                if node.ver() != node_v {
                    return Attempt::Retry;
                }
                continue; // re-read the child pointer
            }
            if child_v & UNLINKED != 0 {
                if node.ver() != node_v {
                    return Attempt::Retry;
                }
                continue;
            }
            if node.child(dir_right, g) != child {
                if node.ver() != node_v {
                    return Attempt::Retry;
                }
                continue;
            }
            if node.ver() != node_v {
                return Attempt::Retry;
            }
            match self.attempt_get(key, c, child_v, next_right, read, g) {
                Attempt::Retry => {
                    if node.ver() != node_v {
                        return Attempt::Retry;
                    }
                    continue;
                }
                done => return done,
            }
        }
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    fn insert_impl(&self, key: K, value: V) -> bool {
        let g = &epoch::pin();
        let mut value = Some(value);
        loop {
            let holder = self.holder(g);
            match self.attempt_insert(&key, &mut value, bref(holder), 0, true, g) {
                Attempt::Done(r) => return r,
                Attempt::Retry => continue,
            }
        }
    }

    fn attempt_insert<'g>(
        &self,
        key: &K,
        value: &mut Option<V>,
        node: &'g BNode<K, V>,
        node_v: u64,
        dir_right: bool,
        g: &'g Guard,
    ) -> Attempt<bool> {
        loop {
            let child = node.child(dir_right, g);
            if node.ver() != node_v {
                return Attempt::Retry;
            }
            if child.is_null() {
                // Try to link a fresh leaf here.
                node.lock.lock();
                if node.ver() != node_v || node.is_unlinked() {
                    node.lock.unlock();
                    return Attempt::Retry;
                }
                if !node.child(dir_right, g).is_null() {
                    node.lock.unlock();
                    continue; // someone linked meanwhile; re-examine
                }
                let v = value.take().expect("value present until consumed");
                let leaf = Owned::new(BNode::new(Some(*key), Atomic::new(v), 1)).into_shared(g);
                bref(leaf).parent.store(Shared::from(node as *const _), Ordering::Release);
                if dir_right {
                    node.right.store(leaf, Ordering::Release);
                } else {
                    node.left.store(leaf, Ordering::Release);
                }
                node.lock.unlock();
                self.fix_height_and_rebalance(Shared::from(node as *const _), g);
                return Attempt::Done(true);
            }
            let c = bref(child);
            let next_right = match c.key.as_ref() {
                Some(ck) => match key.cmp(ck) {
                    Cmp::Equal => {
                        // Update-in-place (revive a routing node) or report
                        // the duplicate.
                        c.lock.lock();
                        if c.is_unlinked() {
                            c.lock.unlock();
                            // The node vanished; revalidate and re-descend.
                            if node.ver() != node_v {
                                return Attempt::Retry;
                            }
                            continue;
                        }
                        let cur = c.value.load(Ordering::Acquire, g);
                        let r = if cur.is_null() {
                            let v = value.take().expect("value present until consumed");
                            c.value.store(Owned::new(v).into_shared(g), Ordering::Release);
                            true
                        } else {
                            false
                        };
                        c.lock.unlock();
                        return Attempt::Done(r);
                    }
                    Cmp::Less => false,
                    Cmp::Greater => true,
                },
                None => true,
            };
            let child_v = c.ver();
            if child_v & SHRINKING != 0 {
                self.wait_until_shrink_completed(c, child_v);
                if node.ver() != node_v {
                    return Attempt::Retry;
                }
                continue;
            }
            if child_v & UNLINKED != 0 || node.child(dir_right, g) != child {
                if node.ver() != node_v {
                    return Attempt::Retry;
                }
                continue;
            }
            if node.ver() != node_v {
                return Attempt::Retry;
            }
            match self.attempt_insert(key, value, c, child_v, next_right, g) {
                Attempt::Retry => {
                    if node.ver() != node_v {
                        return Attempt::Retry;
                    }
                    continue;
                }
                done => return done,
            }
        }
    }

    // ------------------------------------------------------------------
    // Remove
    // ------------------------------------------------------------------

    fn remove_impl(&self, key: &K) -> bool {
        let g = &epoch::pin();
        loop {
            let holder = self.holder(g);
            match self.attempt_remove(key, bref(holder), 0, true, g) {
                Attempt::Done(r) => return r,
                Attempt::Retry => continue,
            }
        }
    }

    fn attempt_remove<'g>(
        &self,
        key: &K,
        node: &'g BNode<K, V>,
        node_v: u64,
        dir_right: bool,
        g: &'g Guard,
    ) -> Attempt<bool> {
        loop {
            let child = node.child(dir_right, g);
            if node.ver() != node_v {
                return Attempt::Retry;
            }
            if child.is_null() {
                return Attempt::Done(false);
            }
            let c = bref(child);
            let next_right = match c.key.as_ref() {
                Some(ck) => match key.cmp(ck) {
                    Cmp::Equal => match self.attempt_rm_node(node, child, g) {
                        Attempt::Retry => {
                            if node.ver() != node_v {
                                return Attempt::Retry;
                            }
                            continue;
                        }
                        done => return done,
                    },
                    Cmp::Less => false,
                    Cmp::Greater => true,
                },
                None => true,
            };
            let child_v = c.ver();
            if child_v & SHRINKING != 0 {
                self.wait_until_shrink_completed(c, child_v);
                if node.ver() != node_v {
                    return Attempt::Retry;
                }
                continue;
            }
            if child_v & UNLINKED != 0 || node.child(dir_right, g) != child {
                if node.ver() != node_v {
                    return Attempt::Retry;
                }
                continue;
            }
            if node.ver() != node_v {
                return Attempt::Retry;
            }
            match self.attempt_remove(key, c, child_v, next_right, g) {
                Attempt::Retry => {
                    if node.ver() != node_v {
                        return Attempt::Retry;
                    }
                    continue;
                }
                done => return done,
            }
        }
    }

    /// Removes the key held by `n` (child of `parent`): logical delete if it
    /// has two children, physical unlink otherwise.
    fn attempt_rm_node<'g>(
        &self,
        parent: &'g BNode<K, V>,
        n: Shared<'g, BNode<K, V>>,
        g: &'g Guard,
    ) -> Attempt<bool> {
        let nr = bref(n);
        if nr.value.load(Ordering::Acquire, g).is_null() {
            // Routing node: key absent (linearizes at the null read while n
            // was still reachable).
            return Attempt::Done(false);
        }
        let l = nr.left.load(Ordering::Acquire, g);
        let r = nr.right.load(Ordering::Acquire, g);
        if !l.is_null() && !r.is_null() {
            // Two children: logical delete under the node lock.
            nr.lock.lock();
            if nr.is_unlinked() {
                nr.lock.unlock();
                return Attempt::Retry;
            }
            let l = nr.left.load(Ordering::Acquire, g);
            let r = nr.right.load(Ordering::Acquire, g);
            if l.is_null() || r.is_null() {
                // Shape changed; take the unlink path instead.
                nr.lock.unlock();
            } else {
                let old = nr.value.swap(Shared::null(), Ordering::AcqRel, g);
                nr.lock.unlock();
                if old.is_null() {
                    return Attempt::Done(false);
                }
                // SAFETY: the swap under the node lock unlinked `old`
                // exclusively; readers hold epoch guards.
                unsafe { g.defer_destroy(old) };
                return Attempt::Done(true);
            }
        }
        // ≤1 child: physical unlink under parent + node locks (parent first).
        parent.lock.lock();
        if parent.is_unlinked() || !std::ptr::eq(nr.parent.load(Ordering::Acquire, g).as_raw(), parent)
        {
            parent.lock.unlock();
            return Attempt::Retry;
        }
        nr.lock.lock();
        if nr.is_unlinked() {
            nr.lock.unlock();
            parent.lock.unlock();
            return Attempt::Retry;
        }
        let old = nr.value.load(Ordering::Acquire, g);
        if old.is_null() {
            nr.lock.unlock();
            parent.lock.unlock();
            return Attempt::Done(false);
        }
        let l = nr.left.load(Ordering::Acquire, g);
        let r = nr.right.load(Ordering::Acquire, g);
        if !l.is_null() && !r.is_null() {
            // Grew a second child: logical delete instead.
            nr.value.store(Shared::null(), Ordering::Release);
            nr.lock.unlock();
            parent.lock.unlock();
            // SAFETY: `old` was unlinked under the node lock by this thread;
            // readers hold epoch guards.
            unsafe { g.defer_destroy(old) };
            return Attempt::Done(true);
        }
        // Unlink n: splice its only child (or null) into parent.
        let splice = if l.is_null() { r } else { l };
        let parent_sh = Shared::from(parent as *const _);
        if parent.left.load(Ordering::Acquire, g) == n {
            parent.left.store(splice, Ordering::Release);
        } else {
            debug_assert_eq!(parent.right.load(Ordering::Acquire, g), n);
            parent.right.store(splice, Ordering::Release);
        }
        if !splice.is_null() {
            bref(splice).parent.store(parent_sh, Ordering::Release);
        }
        nr.value.store(Shared::null(), Ordering::Release);
        nr.version.store(nr.ver() | UNLINKED, Ordering::SeqCst);
        nr.lock.unlock();
        parent.lock.unlock();
        // SAFETY: this thread unlinked both the value and the node under the
        // parent + node locks; the UNLINKED version bit stops new references
        // and readers hold epoch guards.
        unsafe {
            g.defer_destroy(old);
            g.defer_destroy(n);
        }
        self.fix_height_and_rebalance(parent_sh, g);
        Attempt::Done(true)
    }

    // ------------------------------------------------------------------
    // Rebalancing
    // ------------------------------------------------------------------

    fn node_condition<'g>(&self, n: &'g BNode<K, V>, g: &'g Guard) -> Condition {
        let l = n.left.load(Ordering::Acquire, g);
        let r = n.right.load(Ordering::Acquire, g);
        if (l.is_null() || r.is_null()) && n.value.load(Ordering::Acquire, g).is_null() {
            return Condition::UnlinkRequired;
        }
        let hn = n.h();
        let hl = node_height(l);
        let hr = node_height(r);
        if (hl - hr).abs() > 1 {
            return Condition::RebalanceRequired;
        }
        let hnew = hl.max(hr) + 1;
        if hn != hnew {
            Condition::FixHeight
        } else {
            Condition::Nothing
        }
    }

    fn fix_height_and_rebalance<'g>(&self, mut node: Shared<'g, BNode<K, V>>, g: &'g Guard) {
        let holder = self.holder(g);
        let mut budget = 0usize;
        while node != holder && !node.is_null() {
            budget += 1;
            if budget > 1_000_000 {
                debug_assert!(false, "rebalance failed to converge");
                return;
            }
            let n = bref(node);
            if n.is_unlinked() {
                return;
            }
            match self.node_condition(n, g) {
                Condition::Nothing => return,
                Condition::FixHeight => {
                    n.lock.lock();
                    let next = if n.is_unlinked() {
                        Shared::null()
                    } else {
                        let hl = node_height(n.left.load(Ordering::Acquire, g));
                        let hr = node_height(n.right.load(Ordering::Acquire, g));
                        let hnew = hl.max(hr) + 1;
                        if n.h() == hnew {
                            Shared::null()
                        } else {
                            n.height.store(hnew, Ordering::Relaxed);
                            n.parent.load(Ordering::Acquire, g)
                        }
                    };
                    n.lock.unlock();
                    if next.is_null() {
                        return;
                    }
                    node = next;
                }
                Condition::UnlinkRequired | Condition::RebalanceRequired => {
                    let parent = n.parent.load(Ordering::Acquire, g);
                    if parent.is_null() {
                        return;
                    }
                    let p = bref(parent);
                    p.lock.lock();
                    let next = if p.is_unlinked()
                        || bref(node).parent.load(Ordering::Acquire, g) != parent
                    {
                        Shared::null()
                    } else {
                        n.lock.lock();
                        let nx = self.rebalance_locked(parent, node, g);
                        n.lock.unlock();
                        nx
                    };
                    p.lock.unlock();
                    if next.is_null() {
                        // Revalidate from the same node (shape changed under
                        // us); loop re-runs node_condition.
                        if bref(node).is_unlinked() {
                            return;
                        }
                        continue;
                    }
                    node = next;
                }
            }
        }
    }

    /// With `parent` and `n` locked: unlink a dead routing node or rotate.
    /// Returns the next node to examine (null = re-examine `n`).
    fn rebalance_locked<'g>(
        &self,
        parent: Shared<'g, BNode<K, V>>,
        n: Shared<'g, BNode<K, V>>,
        g: &'g Guard,
    ) -> Shared<'g, BNode<K, V>> {
        let nr = bref(n);
        if nr.is_unlinked() {
            return Shared::null();
        }
        let l = nr.left.load(Ordering::Acquire, g);
        let r = nr.right.load(Ordering::Acquire, g);
        if (l.is_null() || r.is_null()) && nr.value.load(Ordering::Acquire, g).is_null() {
            // Unlink the dead routing node.
            let splice = if l.is_null() { r } else { l };
            let p = bref(parent);
            if p.left.load(Ordering::Acquire, g) == n {
                p.left.store(splice, Ordering::Release);
            } else {
                debug_assert_eq!(p.right.load(Ordering::Acquire, g), n);
                p.right.store(splice, Ordering::Release);
            }
            if !splice.is_null() {
                bref(splice).parent.store(parent, Ordering::Release);
            }
            nr.version.store(nr.ver() | UNLINKED, Ordering::SeqCst);
            // SAFETY: unlinked under the parent + node locks by this thread;
            // readers hold epoch guards.
            unsafe { g.defer_destroy(n) };
            return parent;
        }
        let hl = node_height(l);
        let hr = node_height(r);
        if hl - hr > 1 {
            self.rebalance_to_right(parent, n, l, hr, g)
        } else if hl - hr < -1 {
            self.rebalance_to_left(parent, n, r, hl, g)
        } else {
            let hnew = hl.max(hr) + 1;
            if nr.h() != hnew {
                nr.height.store(hnew, Ordering::Relaxed);
                parent
            } else {
                Shared::null()
            }
        }
    }

    /// Left-heavy: rotate right (possibly double). `parent` and `n` locked.
    fn rebalance_to_right<'g>(
        &self,
        parent: Shared<'g, BNode<K, V>>,
        n: Shared<'g, BNode<K, V>>,
        nl: Shared<'g, BNode<K, V>>,
        hr0: i32,
        g: &'g Guard,
    ) -> Shared<'g, BNode<K, V>> {
        if nl.is_null() {
            return Shared::null(); // heights were stale; re-examine
        }
        
        bref(nl).lock.lock();
        let hl = bref(nl).h();
        if hl - hr0 <= 1 {
            bref(nl).lock.unlock();
            return Shared::null(); // condition changed
        }
        let nll = bref(nl).left.load(Ordering::Acquire, g);
        let nlr = bref(nl).right.load(Ordering::Acquire, g);
        let hll = node_height(nll);
        let hlr = node_height(nlr);
        if hll >= hlr {
            // Single right rotation.
            let res = self.rotate_right(parent, n, nl, nlr, g);
            bref(nl).lock.unlock();
            return res;
        }
        // Double rotation: first left on (nl, nlr), then right on (n, nlr).
        if nlr.is_null() {
            bref(nl).lock.unlock();
            return Shared::null();
        }
        let nlr_node = nlr;
        bref(nlr_node).lock.lock();
        let hlr = bref(nlr_node).h();
        if hll >= hlr {
            let res = self.rotate_right(parent, n, nl, nlr, g);
            bref(nlr_node).lock.unlock();
            bref(nl).lock.unlock();
            return res;
        }
        let res = self.rotate_right_over_left(parent, n, nl, nlr, g);
        bref(nlr_node).lock.unlock();
        bref(nl).lock.unlock();
        res
    }

    /// Mirror image of [`Self::rebalance_to_right`].
    fn rebalance_to_left<'g>(
        &self,
        parent: Shared<'g, BNode<K, V>>,
        n: Shared<'g, BNode<K, V>>,
        nr: Shared<'g, BNode<K, V>>,
        hl0: i32,
        g: &'g Guard,
    ) -> Shared<'g, BNode<K, V>> {
        if nr.is_null() {
            return Shared::null();
        }
        bref(nr).lock.lock();
        let hr = bref(nr).h();
        if hr - hl0 <= 1 {
            bref(nr).lock.unlock();
            return Shared::null();
        }
        let nrl = bref(nr).left.load(Ordering::Acquire, g);
        let nrr = bref(nr).right.load(Ordering::Acquire, g);
        let hrr = node_height(nrr);
        let hrl = node_height(nrl);
        if hrr >= hrl {
            let res = self.rotate_left(parent, n, nr, nrl, g);
            bref(nr).lock.unlock();
            return res;
        }
        if nrl.is_null() {
            bref(nr).lock.unlock();
            return Shared::null();
        }
        bref(nrl).lock.lock();
        let hrl = bref(nrl).h();
        if hrr >= hrl {
            let res = self.rotate_left(parent, n, nr, nrl, g);
            bref(nrl).lock.unlock();
            bref(nr).lock.unlock();
            return res;
        }
        let res = self.rotate_left_over_right(parent, n, nr, nrl, g);
        bref(nrl).lock.unlock();
        bref(nr).lock.unlock();
        res
    }

    /// n rotates down-right; nl rises. Locks held: parent, n, nl.
    fn rotate_right<'g>(
        &self,
        parent: Shared<'g, BNode<K, V>>,
        n: Shared<'g, BNode<K, V>>,
        nl: Shared<'g, BNode<K, V>>,
        nlr: Shared<'g, BNode<K, V>>,
        g: &'g Guard,
    ) -> Shared<'g, BNode<K, V>> {
        let nr_node = bref(n);
        let nl_node = bref(nl);
        let v = nr_node.ver();
        nr_node.version.store(v | SHRINKING, Ordering::SeqCst);

        nr_node.left.store(nlr, Ordering::Release);
        if !nlr.is_null() {
            bref(nlr).parent.store(n, Ordering::Release);
        }
        nl_node.right.store(n, Ordering::Release);
        nr_node.parent.store(nl, Ordering::Release);
        let p = bref(parent);
        if p.left.load(Ordering::Acquire, g) == n {
            p.left.store(nl, Ordering::Release);
        } else {
            p.right.store(nl, Ordering::Release);
        }
        nl_node.parent.store(parent, Ordering::Release);

        let h_repl = node_height(nr_node.left.load(Ordering::Acquire, g))
            .max(node_height(nr_node.right.load(Ordering::Acquire, g)))
            + 1;
        nr_node.height.store(h_repl, Ordering::Relaxed);
        nl_node.height.store(
            node_height(nl_node.left.load(Ordering::Acquire, g)).max(h_repl) + 1,
            Ordering::Relaxed,
        );

        nr_node.version.store((v | SHRINKING).wrapping_add(SHRINK_INC) & !SHRINKING, Ordering::SeqCst);

        // Decide where balancing continues (simplified severity check).
        self.post_rotation_target(parent, n, nl, g)
    }

    /// Mirror of [`Self::rotate_right`].
    fn rotate_left<'g>(
        &self,
        parent: Shared<'g, BNode<K, V>>,
        n: Shared<'g, BNode<K, V>>,
        nr: Shared<'g, BNode<K, V>>,
        nrl: Shared<'g, BNode<K, V>>,
        g: &'g Guard,
    ) -> Shared<'g, BNode<K, V>> {
        let n_node = bref(n);
        let nr_node = bref(nr);
        let v = n_node.ver();
        n_node.version.store(v | SHRINKING, Ordering::SeqCst);

        n_node.right.store(nrl, Ordering::Release);
        if !nrl.is_null() {
            bref(nrl).parent.store(n, Ordering::Release);
        }
        nr_node.left.store(n, Ordering::Release);
        n_node.parent.store(nr, Ordering::Release);
        let p = bref(parent);
        if p.left.load(Ordering::Acquire, g) == n {
            p.left.store(nr, Ordering::Release);
        } else {
            p.right.store(nr, Ordering::Release);
        }
        nr_node.parent.store(parent, Ordering::Release);

        let h_repl = node_height(n_node.left.load(Ordering::Acquire, g))
            .max(node_height(n_node.right.load(Ordering::Acquire, g)))
            + 1;
        n_node.height.store(h_repl, Ordering::Relaxed);
        nr_node.height.store(
            node_height(nr_node.right.load(Ordering::Acquire, g)).max(h_repl) + 1,
            Ordering::Relaxed,
        );

        n_node.version.store((v | SHRINKING).wrapping_add(SHRINK_INC) & !SHRINKING, Ordering::SeqCst);

        self.post_rotation_target(parent, n, nr, g)
    }

    /// Double rotation: nlr rises above both nl and n. Locks: parent, n, nl,
    /// nlr.
    fn rotate_right_over_left<'g>(
        &self,
        parent: Shared<'g, BNode<K, V>>,
        n: Shared<'g, BNode<K, V>>,
        nl: Shared<'g, BNode<K, V>>,
        nlr: Shared<'g, BNode<K, V>>,
        g: &'g Guard,
    ) -> Shared<'g, BNode<K, V>> {
        let n_node = bref(n);
        let nl_node = bref(nl);
        let nlr_node = bref(nlr);
        let vn = n_node.ver();
        let vl = nl_node.ver();
        n_node.version.store(vn | SHRINKING, Ordering::SeqCst);
        nl_node.version.store(vl | SHRINKING, Ordering::SeqCst);

        let nlrl = nlr_node.left.load(Ordering::Acquire, g);
        let nlrr = nlr_node.right.load(Ordering::Acquire, g);

        n_node.left.store(nlrr, Ordering::Release);
        if !nlrr.is_null() {
            bref(nlrr).parent.store(n, Ordering::Release);
        }
        nl_node.right.store(nlrl, Ordering::Release);
        if !nlrl.is_null() {
            bref(nlrl).parent.store(nl, Ordering::Release);
        }
        nlr_node.left.store(nl, Ordering::Release);
        nl_node.parent.store(nlr, Ordering::Release);
        nlr_node.right.store(n, Ordering::Release);
        n_node.parent.store(nlr, Ordering::Release);
        let p = bref(parent);
        if p.left.load(Ordering::Acquire, g) == n {
            p.left.store(nlr, Ordering::Release);
        } else {
            p.right.store(nlr, Ordering::Release);
        }
        nlr_node.parent.store(parent, Ordering::Release);

        let hn = node_height(n_node.left.load(Ordering::Acquire, g))
            .max(node_height(n_node.right.load(Ordering::Acquire, g)))
            + 1;
        n_node.height.store(hn, Ordering::Relaxed);
        let hl = node_height(nl_node.left.load(Ordering::Acquire, g))
            .max(node_height(nl_node.right.load(Ordering::Acquire, g)))
            + 1;
        nl_node.height.store(hl, Ordering::Relaxed);
        nlr_node.height.store(hn.max(hl) + 1, Ordering::Relaxed);

        nl_node.version.store((vl | SHRINKING).wrapping_add(SHRINK_INC) & !SHRINKING, Ordering::SeqCst);
        n_node.version.store((vn | SHRINKING).wrapping_add(SHRINK_INC) & !SHRINKING, Ordering::SeqCst);

        self.post_rotation_target(parent, n, nlr, g)
    }

    /// Mirror of [`Self::rotate_right_over_left`].
    fn rotate_left_over_right<'g>(
        &self,
        parent: Shared<'g, BNode<K, V>>,
        n: Shared<'g, BNode<K, V>>,
        nr: Shared<'g, BNode<K, V>>,
        nrl: Shared<'g, BNode<K, V>>,
        g: &'g Guard,
    ) -> Shared<'g, BNode<K, V>> {
        let n_node = bref(n);
        let nr_node = bref(nr);
        let nrl_node = bref(nrl);
        let vn = n_node.ver();
        let vr = nr_node.ver();
        n_node.version.store(vn | SHRINKING, Ordering::SeqCst);
        nr_node.version.store(vr | SHRINKING, Ordering::SeqCst);

        let nrll = nrl_node.left.load(Ordering::Acquire, g);
        let nrlr = nrl_node.right.load(Ordering::Acquire, g);

        n_node.right.store(nrll, Ordering::Release);
        if !nrll.is_null() {
            bref(nrll).parent.store(n, Ordering::Release);
        }
        nr_node.left.store(nrlr, Ordering::Release);
        if !nrlr.is_null() {
            bref(nrlr).parent.store(nr, Ordering::Release);
        }
        nrl_node.right.store(nr, Ordering::Release);
        nr_node.parent.store(nrl, Ordering::Release);
        nrl_node.left.store(n, Ordering::Release);
        n_node.parent.store(nrl, Ordering::Release);
        let p = bref(parent);
        if p.left.load(Ordering::Acquire, g) == n {
            p.left.store(nrl, Ordering::Release);
        } else {
            p.right.store(nrl, Ordering::Release);
        }
        nrl_node.parent.store(parent, Ordering::Release);

        let hn = node_height(n_node.left.load(Ordering::Acquire, g))
            .max(node_height(n_node.right.load(Ordering::Acquire, g)))
            + 1;
        n_node.height.store(hn, Ordering::Relaxed);
        let hr = node_height(nr_node.left.load(Ordering::Acquire, g))
            .max(node_height(nr_node.right.load(Ordering::Acquire, g)))
            + 1;
        nr_node.height.store(hr, Ordering::Relaxed);
        nrl_node.height.store(hn.max(hr) + 1, Ordering::Relaxed);

        nr_node.version.store((vr | SHRINKING).wrapping_add(SHRINK_INC) & !SHRINKING, Ordering::SeqCst);
        n_node.version.store((vn | SHRINKING).wrapping_add(SHRINK_INC) & !SHRINKING, Ordering::SeqCst);

        self.post_rotation_target(parent, n, nrl, g)
    }

    /// After a rotation pick the next node to fix: the rotated-down node if
    /// it still violates, else the new subtree root, else the parent.
    fn post_rotation_target<'g>(
        &self,
        parent: Shared<'g, BNode<K, V>>,
        n: Shared<'g, BNode<K, V>>,
        new_root: Shared<'g, BNode<K, V>>,
        g: &'g Guard,
    ) -> Shared<'g, BNode<K, V>> {
        for cand in [n, new_root] {
            match self.node_condition(bref(cand), g) {
                Condition::Nothing => {}
                _ => return cand,
            }
        }
        parent
    }
}

impl<K: Key, V: Value> BccoTreeMap<K, V> {
    /// (physical nodes, routing "zombie" nodes) — quiescent use only; feeds
    /// the memory experiment (the paper: "the BCCO-tree may maintain up to
    /// 50% zombie nodes").
    pub fn node_stats(&self) -> (usize, usize) {
        let g = epoch::pin();
        let mut physical = 0usize;
        let mut routing = 0usize;
        let mut stack = vec![bref(self.holder(&g)).right.load(Ordering::Acquire, &g)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            physical += 1;
            let r = bref(n);
            if r.value.load(Ordering::Acquire, &g).is_null() {
                routing += 1;
            }
            stack.push(r.left.load(Ordering::Acquire, &g));
            stack.push(r.right.load(Ordering::Acquire, &g));
        }
        (physical, routing)
    }
}

impl<K: Key, V: Value> Default for BccoTreeMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> Drop for BccoTreeMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: &mut self — no concurrent readers or writers remain.
        let g = unsafe { epoch::unprotected() };
        let mut stack = vec![self.root_holder.load(Ordering::Relaxed, g)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = bref(n);
            stack.push(r.left.load(Ordering::Relaxed, g));
            stack.push(r.right.load(Ordering::Relaxed, g));
            // SAFETY: quiescent teardown; each node is reachable exactly once.
            drop(unsafe { n.into_owned() });
        }
    }
}

impl<K: Key, V: Value> ConcurrentMap<K, V> for BccoTreeMap<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: &K) -> bool {
        self.get_impl(key, |_| ()).is_some()
    }
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.get_impl(key, V::clone)
    }
    fn name(&self) -> &'static str {
        "bcco"
    }
}

/// Snapshot-only ordered access: this structure has no ordering layer
/// (no `pred`/`succ` chain), so it cannot offer concurrent ordered reads
/// ([`lo_api::OrderedRead`]); quiescent in-order dumps are all it has.
impl<K: Key, V: Value> QuiescentOrdered<K> for BccoTreeMap<K, V> {
    fn keys_in_order(&self) -> Vec<K> {
        let g = epoch::pin();
        let mut out = Vec::new();
        // Iterative in-order from the real root, skipping routing nodes.
        let mut stack = Vec::new();
        let mut node = bref(self.holder(&g)).right.load(Ordering::Acquire, &g);
        while !node.is_null() || !stack.is_empty() {
            while !node.is_null() {
                stack.push(node);
                node = bref(node).left.load(Ordering::Acquire, &g);
            }
            let n = stack.pop().expect("non-empty");
            let r = bref(n);
            if !r.value.load(Ordering::Acquire, &g).is_null() {
                out.push(*r.key.as_ref().expect("only holder lacks a key"));
            }
            node = r.right.load(Ordering::Acquire, &g);
        }
        out
    }
}

impl<K: Key, V: Value> CheckInvariants for BccoTreeMap<K, V> {
    fn check_invariants(&self) {
        let g = epoch::pin();
        let holder = self.holder(&g);
        let root = bref(holder).right.load(Ordering::Acquire, &g);
        // BST order, parent pointers, heights within relaxed-AVL tolerance.
        type Frame<'g, K, V> = (Shared<'g, BNode<K, V>>, Option<K>, Option<K>);
        let mut stack: Vec<Frame<'_, K, V>> = vec![(root, None, None)];
        while let Some((n, lo, hi)) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = bref(n);
            assert!(!r.is_unlinked(), "unlinked node reachable at quiescence");
            assert!(!r.lock.is_locked(), "lock left held");
            let k = r.key.expect("only holder lacks a key");
            if let Some(lo) = lo {
                assert!(lo < k, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(k < hi, "BST order violated");
            }
            let l = r.left.load(Ordering::Acquire, &g);
            let rt = r.right.load(Ordering::Acquire, &g);
            for c in [l, rt] {
                if !c.is_null() {
                    assert_eq!(
                        bref(c).parent.load(Ordering::Acquire, &g),
                        n,
                        "parent pointer inconsistent"
                    );
                }
            }
            // Partially-external: a routing node must have two children at
            // quiescence (single-child routers get unlinked eventually; we
            // tolerate them but they must be rare — assert the weak form).
            stack.push((l, lo, Some(k)));
            stack.push((rt, Some(k), hi));
        }
        // Relaxed balance: height within a constant factor of optimal.
        fn true_height<K: Key, V: Value>(
            n: Shared<'_, BNode<K, V>>,
            g: &Guard,
        ) -> (i32, usize) {
            if n.is_null() {
                return (0, 0);
            }
            let r = bref(n);
            let (hl, cl) = true_height(r.left.load(Ordering::Acquire, g), g);
            let (hr, cr) = true_height(r.right.load(Ordering::Acquire, g), g);
            (hl.max(hr) + 1, cl + cr + 1)
        }
        let (h, count) = true_height(root, &g);
        if count > 16 {
            let bound = (2.5 * ((count + 2) as f64).log2()).ceil() as i32;
            assert!(h <= bound, "tree too tall for relaxed AVL: h={h}, n={count}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let m = BccoTreeMap::new();
        assert!(!m.contains(&5));
        assert!(m.insert(5i64, 50u64));
        assert!(!m.insert(5, 51));
        assert_eq!(m.get(&5), Some(50));
        assert!(m.insert(3, 30));
        assert!(m.insert(8, 80));
        assert!(m.remove(&5)); // two children → logical delete
        assert!(!m.contains(&5));
        assert!(!m.remove(&5));
        assert!(m.insert(5, 55)); // revive the routing node
        assert_eq!(m.get(&5), Some(55));
        m.check_invariants();
    }

    #[test]
    fn bulk_sorted_stays_shallow() {
        let m = BccoTreeMap::new();
        for k in 0..4_096i64 {
            assert!(m.insert(k, k as u64));
        }
        m.check_invariants(); // height bound asserts the balancing works
        for k in (0..4_096i64).rev() {
            assert!(m.remove(&k));
        }
        assert!(m.keys_in_order().is_empty());
        m.check_invariants();
    }

    #[test]
    fn concurrent_net_balance() {
        let m = BccoTreeMap::new();
        let nets: Vec<i64> = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        let mut x = 0xFACE ^ (t + 1);
                        let mut net = 0i64;
                        for i in 0..20_000u64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = (x % 100) as i64;
                            match x % 3 {
                                0 => {
                                    if m.insert(k, k as u64) {
                                        net += 1;
                                    }
                                }
                                1 => {
                                    if m.remove(&k) {
                                        net -= 1;
                                    }
                                }
                                _ => {
                                    let _ = m.contains(&k);
                                }
                            }
                            if i % 128 == 0 {
                                std::thread::yield_now();
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(m.keys_in_order().len() as i64, nets.iter().sum::<i64>());
        m.check_invariants();
    }
}
