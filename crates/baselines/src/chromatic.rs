//! Chromatic tree: the relaxed-balance external red-black tree of Brown,
//! Ellen and Ruppert ("Chromatic6" in the paper's evaluation).
//!
//! Every node carries a **weight**: 0 = red, 1 = black, ≥2 = overweight.
//! The relaxed red-black invariant allows two kinds of *violations* —
//! red-red (a weight-0 node with a weight-0 parent) and overweight — which
//! updates may create and dedicated rebalancing steps repair later. As in
//! Chromatic6, repair is *batched*: an update only triggers a repair when
//! the number of violations it observed on its search path reaches a
//! threshold (6).
//!
//! Update weight rules (path-weight conservation):
//! * insert: leaf `l` (weight `w`) becomes `Internal(w−1)` over `l(1)` and
//!   the new leaf `(1)`, possibly creating a red-red violation;
//! * delete: leaf `l` and its parent `p` vanish; the sibling absorbs `p`'s
//!   weight (`w(s) += w(p)`), possibly creating an overweight violation.
//!
//! Repairs (best-effort, `try_lock`-based — abandoning a repair is safe in a
//! relaxed-balance tree): *blacking* and rotation for red-red, *weight push*
//! and red-sibling rotation for overweight. Rotations demote nodes **by
//! copy** so optimistic readers parked on the demoted router still see a
//! consistent subtree (same trick as the CF tree).
//!
//! **Substitution note (DESIGN.md §3):** the original is non-blocking via
//! LLX/SCX; this implementation keeps the data structure, weight rules and
//! violation batching but synchronizes with per-node locks.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

use crate::lock::RawLock;
use lo_api::{CheckInvariants, ConcurrentMap, Key, QuiescentOrdered, Value};

/// Violation-batching threshold (Chromatic6).
const THRESHOLD: usize = 6;
/// Budget for one best-effort repair walk.
const REPAIR_BUDGET: usize = 32;

/// Key with the two infinity sentinels (`Key < Inf1 < Inf2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum CKey<K> {
    Key(K),
    Inf1,
    Inf2,
}

struct CNode<K, V> {
    key: CKey<K>,
    value: Option<V>,
    is_leaf: bool,
    weight: AtomicI32,
    left: Atomic<CNode<K, V>>,
    right: Atomic<CNode<K, V>>,
    parent: Atomic<CNode<K, V>>,
    /// Written under the node lock, re-validated after locking: Release
    /// stores / Acquire loads suffice (no cross-flag SC order is used).
    removed: AtomicBool,
    lock: RawLock,
}

impl<K, V> CNode<K, V> {
    fn leaf(key: CKey<K>, value: Option<V>, weight: i32) -> Self {
        Self {
            key,
            value,
            is_leaf: true,
            weight: AtomicI32::new(weight),
            left: Atomic::null(),
            right: Atomic::null(),
            parent: Atomic::null(),
            removed: AtomicBool::new(false),
            lock: RawLock::new(),
        }
    }

    fn internal(key: CKey<K>, weight: i32) -> Self {
        let mut n = Self::leaf(key, None, weight);
        n.is_leaf = false;
        n
    }

    #[inline]
    fn w(&self) -> i32 {
        self.weight.load(Ordering::Relaxed)
    }
}

fn xref<'g, K, V>(s: Shared<'g, CNode<K, V>>) -> &'g CNode<K, V> {
    debug_assert!(!s.is_null());
    // SAFETY: nodes retired only via the epoch after unlinking.
    unsafe { s.deref() }
}

/// (grandparent, parent, leaf, violations seen on the path).
type ChromaticSearch<'g, K, V> =
    (Shared<'g, CNode<K, V>>, Shared<'g, CNode<K, V>>, Shared<'g, CNode<K, V>>, usize);

/// The chromatic (relaxed red-black, external) tree.
pub struct ChromaticTreeMap<K: Key, V: Value + Clone> {
    root: Atomic<CNode<K, V>>,
}

impl<K: Key, V: Value + Clone> ChromaticTreeMap<K, V> {
    /// Empty tree: Internal(∞₂) over leaves ∞₁ and ∞₂ (all weight 1).
    pub fn new() -> Self {
        // SAFETY: the tree is not yet shared; no other thread can free nodes.
        let g = unsafe { epoch::unprotected() };
        let root = Owned::new(CNode::internal(CKey::Inf2, 1)).into_shared(g);
        let l1 = Owned::new(CNode::leaf(CKey::Inf1, None, 1)).into_shared(g);
        let l2 = Owned::new(CNode::leaf(CKey::Inf2, None, 1)).into_shared(g);
        xref(l1).parent.store(root, Ordering::Release);
        xref(l2).parent.store(root, Ordering::Release);
        xref(root).left.store(l1, Ordering::Release);
        xref(root).right.store(l2, Ordering::Release);
        Self { root: Atomic::from(root) }
    }

    fn root_sh<'g>(&self, g: &'g Guard) -> Shared<'g, CNode<K, V>> {
        self.root.load(Ordering::Relaxed, g)
    }

    /// Descends to the leaf for `key`, counting violations on the path.
    /// Returns (grandparent, parent, leaf, violations_seen).
    fn search<'g>(&self, key: &K, g: &'g Guard) -> ChromaticSearch<'g, K, V> {
        let mut gp = Shared::null();
        let mut p = Shared::null();
        let mut l = self.root_sh(g);
        let mut violations = 0usize;
        let mut prev_w = 1i32;
        loop {
            let n = xref(l);
            let w = n.w();
            if w >= 2 || (w == 0 && prev_w == 0) {
                violations += 1;
            }
            prev_w = w;
            if n.is_leaf {
                return (gp, p, l, violations);
            }
            gp = p;
            p = l;
            let go_left = match &n.key {
                CKey::Key(nk) => key < nk,
                _ => true,
            };
            l = if go_left {
                n.left.load(Ordering::Acquire, g)
            } else {
                n.right.load(Ordering::Acquire, g)
            };
        }
    }

    fn insert_impl(&self, key: K, value: V) -> bool {
        let g = &epoch::pin();
        let mut value = Some(value);
        loop {
            let (_gp, p, l, violations) = self.search(&key, g);
            let lr = xref(l);
            if matches!(lr.key, CKey::Key(k) if k == key) {
                return false;
            }
            let pr = xref(p);
            pr.lock.lock();
            let slot_ok = !pr.removed.load(Ordering::Acquire)
                && (pr.left.load(Ordering::Acquire, g) == l
                    || pr.right.load(Ordering::Acquire, g) == l);
            if !slot_ok {
                pr.lock.unlock();
                continue;
            }
            // Weight rules: Internal(w(l)−1) over l(1) and new(1).
            let wl = lr.w();
            let wi = (wl - 1).max(0);
            let v = value.take().expect("value unconsumed");
            let new_leaf = Owned::new(CNode::leaf(CKey::Key(key), Some(v), 1)).into_shared(g);
            let ikey = lr.key.max(CKey::Key(key));
            let internal = Owned::new(CNode::internal(ikey, wi)).into_shared(g);
            lr.weight.store(1, Ordering::Relaxed);
            if CKey::Key(key) < lr.key {
                xref(internal).left.store(new_leaf, Ordering::Release);
                xref(internal).right.store(l, Ordering::Release);
            } else {
                xref(internal).left.store(l, Ordering::Release);
                xref(internal).right.store(new_leaf, Ordering::Release);
            }
            xref(new_leaf).parent.store(internal, Ordering::Release);
            lr.parent.store(internal, Ordering::Release);
            xref(internal).parent.store(p, Ordering::Release);
            if pr.left.load(Ordering::Acquire, g) == l {
                pr.left.store(internal, Ordering::Release);
            } else {
                pr.right.store(internal, Ordering::Release);
            }
            pr.lock.unlock();
            // New red-red violation? Repair when the batch threshold is hit.
            if wi == 0 && pr.w() == 0 && violations + 1 >= THRESHOLD {
                self.repair(internal, g);
            }
            return true;
        }
    }

    fn remove_impl(&self, key: &K) -> bool {
        let g = &epoch::pin();
        loop {
            let (gp, p, l, violations) = self.search(key, g);
            if !matches!(xref(l).key, CKey::Key(k) if k == *key) {
                return false;
            }
            debug_assert!(!gp.is_null(), "real leaves always have a grandparent");
            let gpr = xref(gp);
            let pr = xref(p);
            gpr.lock.lock();
            if gpr.removed.load(Ordering::Acquire)
                || (gpr.left.load(Ordering::Acquire, g) != p
                    && gpr.right.load(Ordering::Acquire, g) != p)
            {
                gpr.lock.unlock();
                continue;
            }
            pr.lock.lock();
            let l_side_ok = pr.left.load(Ordering::Acquire, g) == l
                || pr.right.load(Ordering::Acquire, g) == l;
            if pr.removed.load(Ordering::Acquire) || !l_side_ok {
                pr.lock.unlock();
                gpr.lock.unlock();
                continue;
            }
            let sibling = if pr.left.load(Ordering::Acquire, g) == l {
                pr.right.load(Ordering::Acquire, g)
            } else {
                pr.left.load(Ordering::Acquire, g)
            };
            let sr = xref(sibling);
            sr.lock.lock();
            // Splice p out; sibling absorbs p's weight.
            let new_w = sr.w() + pr.w();
            sr.weight.store(new_w, Ordering::Relaxed);
            sr.parent.store(gp, Ordering::Release);
            if gpr.left.load(Ordering::Acquire, g) == p {
                gpr.left.store(sibling, Ordering::Release);
            } else {
                gpr.right.store(sibling, Ordering::Release);
            }
            pr.removed.store(true, Ordering::Release);
            xref(l).removed.store(true, Ordering::Release);
            sr.lock.unlock();
            pr.lock.unlock();
            gpr.lock.unlock();
            // SAFETY: this thread unlinked both nodes under the grandparent +
            // parent + sibling locks; the `removed` flags stop new references
            // and readers hold epoch guards.
            unsafe {
                g.defer_destroy(p);
                g.defer_destroy(l);
            }
            if new_w >= 2 && violations + 1 >= THRESHOLD {
                self.repair(sibling, g);
            }
            return true;
        }
    }

    // ------------------------------------------------------------------
    // Best-effort violation repair.
    // ------------------------------------------------------------------

    /// Walks up from `node`, fixing red-red and overweight violations until
    /// none remains locally, a try_lock fails (abandon: violations are
    /// tolerated), or the budget runs out.
    fn repair<'g>(&self, mut node: Shared<'g, CNode<K, V>>, g: &'g Guard) {
        for _ in 0..REPAIR_BUDGET {
            if node.is_null() {
                return;
            }
            let n = xref(node);
            if n.removed.load(Ordering::Acquire) {
                return;
            }
            let w = n.w();
            if w >= 2 {
                match self.fix_overweight(node, g) {
                    Some(next) => node = next,
                    None => return,
                }
            } else if w == 0 {
                let p = n.parent.load(Ordering::Acquire, g);
                if p.is_null() || xref(p).w() != 0 {
                    return; // no red-red here
                }
                match self.fix_red_red(node, g) {
                    Some(next) => node = next,
                    None => return,
                }
            } else {
                return;
            }
        }
    }

    /// Locks `node`'s parent and validates the link; all-or-nothing.
    fn try_lock_parent<'g>(
        &self,
        node: Shared<'g, CNode<K, V>>,
        g: &'g Guard,
    ) -> Option<Shared<'g, CNode<K, V>>> {
        let p = xref(node).parent.load(Ordering::Acquire, g);
        if p.is_null() {
            return None;
        }
        let pr = xref(p);
        if !pr.lock.try_lock() {
            return None;
        }
        let valid = !pr.removed.load(Ordering::Acquire)
            && (pr.left.load(Ordering::Acquire, g) == node
                || pr.right.load(Ordering::Acquire, g) == node);
        if !valid {
            pr.lock.unlock();
            return None;
        }
        Some(p)
    }

    /// Overweight at `node` (w ≥ 2): push a unit of weight to the parent, or
    /// rotate a red sibling up first. Returns the next node to examine.
    fn fix_overweight<'g>(
        &self,
        node: Shared<'g, CNode<K, V>>,
        g: &'g Guard,
    ) -> Option<Shared<'g, CNode<K, V>>> {
        let p = self.try_lock_parent(node, g)?;
        let pr = xref(p);
        if pr.parent.load(Ordering::Acquire, g).is_null() {
            // Parent is the root: the root absorbs weight freely.
            let n = xref(node);
            if !n.lock.try_lock() {
                pr.lock.unlock();
                return None;
            }
            n.weight.store(1, Ordering::Relaxed);
            n.lock.unlock();
            pr.lock.unlock();
            return None;
        }
        let n = xref(node);
        let sibling = if pr.left.load(Ordering::Acquire, g) == node {
            pr.right.load(Ordering::Acquire, g)
        } else {
            pr.left.load(Ordering::Acquire, g)
        };
        let sr = xref(sibling);
        if !n.lock.try_lock() {
            pr.lock.unlock();
            return None;
        }
        if !sr.lock.try_lock() {
            n.lock.unlock();
            pr.lock.unlock();
            return None;
        }
        let result;
        if n.w() < 2 {
            // Resolved since the unlocked check.
            result = None;
        } else if sr.w() == 0 && !sr.is_leaf {
            // Red sibling: rotate it up (by copy of the demoted parent),
            // then retry at the (relocated) node.
            result = self.rotate_up_locked(p, sibling, None, g).map(|_| node);
        } else {
            // Push: n and s each give one unit to p. (If s is a red leaf
            // its weight saturates at 0, giving up exact path-sum
            // conservation — harmless in a relaxed-balance tree.)
            n.weight.store(n.w() - 1, Ordering::Relaxed);
            sr.weight.store((sr.w() - 1).max(0), Ordering::Relaxed);
            pr.weight.store(pr.w() + 1, Ordering::Relaxed);
            result = Some(p);
        }
        sr.lock.unlock();
        n.lock.unlock();
        pr.lock.unlock();
        result
    }

    /// Red-red at `node` (w(node) = 0 = w(parent)): blacking if the uncle is
    /// red, rotation otherwise. Returns the next node to examine.
    fn fix_red_red<'g>(
        &self,
        node: Shared<'g, CNode<K, V>>,
        g: &'g Guard,
    ) -> Option<Shared<'g, CNode<K, V>>> {
        let p = self.try_lock_parent(node, g)?;
        let pr = xref(p);
        if pr.w() != 0 {
            pr.lock.unlock();
            return None; // resolved meanwhile
        }
        let gp = match self.try_lock_parent(p, g) {
            Some(gp) => gp,
            None => {
                pr.lock.unlock();
                return None;
            }
        };
        let gpr = xref(gp);
        let uncle = if gpr.left.load(Ordering::Acquire, g) == p {
            gpr.right.load(Ordering::Acquire, g)
        } else {
            gpr.left.load(Ordering::Acquire, g)
        };
        let ur = xref(uncle);
        let result;
        if pr.w() != 0 || xref(node).w() != 0 {
            // Resolved since the unlocked check.
            gpr.lock.unlock();
            pr.lock.unlock();
            return None;
        } else if gpr.w() == 0 && !gpr.parent.load(Ordering::Acquire, g).is_null() {
            // gp itself is red: the red-red violation one level up must be
            // fixed first (blacking would drive gp's weight negative).
            gpr.lock.unlock();
            pr.lock.unlock();
            return Some(p);
        } else if ur.w() == 0 {
            // Blacking: p and u become black; gp gives up one unit (the root
            // may absorb the difference).
            if !ur.lock.try_lock() {
                gpr.lock.unlock();
                pr.lock.unlock();
                return None;
            }
            pr.weight.store(1, Ordering::Relaxed);
            ur.weight.store(1, Ordering::Relaxed);
            let is_root = gpr.parent.load(Ordering::Acquire, g).is_null();
            let new_gw = if is_root { 1 } else { (gpr.w() - 1).max(0) };
            gpr.weight.store(new_gw, Ordering::Relaxed);
            ur.lock.unlock();
            result = Some(gp);
        } else {
            // Rotation: lift p (or node, for the inner case) above gp.
            let p_is_left = gpr.left.load(Ordering::Acquire, g) == p;
            let n_is_left = pr.left.load(Ordering::Acquire, g) == node;
            if p_is_left == n_is_left {
                // Single rotation: p rises over gp.
                result = self.rotate_up_locked(gp, p, None, g).map(|_| p);
            } else {
                // Double rotation, first half: node rises over p (gp is
                // already locked by us and passed through). The second half
                // happens on a later repair visit; the budget-bounded caller
                // tolerates the intermediate state.
                let nr = xref(node);
                if !nr.lock.try_lock() {
                    result = None;
                } else {
                    let r1 = self.rotate_up_locked(p, node, Some(gp), g);
                    nr.lock.unlock();
                    result = r1.map(|_| node);
                }
            }
        }
        gpr.lock.unlock();
        pr.lock.unlock();
        result
    }

    /// Rotation by copy with `parent` and `child` locked: `child` rises into
    /// `parent`'s place; `parent` is demoted as a fresh copy below `child`
    /// and the original is retired. Weight exchange: the risen child takes
    /// the parent's weight; the demoted copy becomes red.
    ///
    /// Requires `parent` and `child` locked by the caller. The node above
    /// `parent` is either passed in pre-locked (`upper`) or try-locked here.
    fn rotate_up_locked<'g>(
        &self,
        parent: Shared<'g, CNode<K, V>>,
        child: Shared<'g, CNode<K, V>>,
        upper: Option<Shared<'g, CNode<K, V>>>,
        g: &'g Guard,
    ) -> Option<()> {
        let (gp, locked_here) = match upper {
            Some(u) => {
                debug_assert_eq!(xref(parent).parent.load(Ordering::Acquire, g), u);
                (u, false)
            }
            None => (self.try_lock_parent(parent, g)?, true),
        };
        let gpr = xref(gp);
        debug_assert_eq!(xref(child).w(), 0, "only red nodes rotate up");
        let pr = xref(parent);
        let cr = xref(child);
        debug_assert!(!cr.is_leaf, "cannot rotate a leaf up");
        let child_is_left = pr.left.load(Ordering::Acquire, g) == child;
        // Demoted copy of parent adopts child's far grandchild and parent's
        // other child.
        let copy = CNode::internal(pr.key, 0);
        let (moved, kept) = if child_is_left {
            (cr.right.load(Ordering::Acquire, g), pr.right.load(Ordering::Acquire, g))
        } else {
            (cr.left.load(Ordering::Acquire, g), pr.left.load(Ordering::Acquire, g))
        };
        if child_is_left {
            copy.left.store(moved, Ordering::Relaxed);
            copy.right.store(kept, Ordering::Relaxed);
        } else {
            copy.left.store(kept, Ordering::Relaxed);
            copy.right.store(moved, Ordering::Relaxed);
        }
        let copy = Owned::new(copy).into_shared(g);
        xref(moved).parent.store(copy, Ordering::Release);
        xref(kept).parent.store(copy, Ordering::Release);
        xref(copy).parent.store(child, Ordering::Release);
        if child_is_left {
            cr.right.store(copy, Ordering::Release);
        } else {
            cr.left.store(copy, Ordering::Release);
        }
        // Weight exchange preserving path sums: child takes parent's weight
        // plus its own minus... risen child w' = w(p) + w(c); copy w = 0
        // keeps paths through `moved`/`kept` intact.
        let wsum = pr.w() + cr.w();
        cr.weight.store(wsum, Ordering::Relaxed);
        cr.parent.store(gp, Ordering::Release);
        if gpr.left.load(Ordering::Acquire, g) == parent {
            gpr.left.store(child, Ordering::Release);
        } else {
            gpr.right.store(child, Ordering::Release);
        }
        pr.removed.store(true, Ordering::Release);
        if locked_here {
            gpr.lock.unlock();
        }
        // SAFETY: the weight-violation repair unlinked `parent` under its
        // lock; readers hold epoch guards.
        unsafe { g.defer_destroy(parent) };
        Some(())
    }
}

impl<K: Key, V: Value + Clone> Default for ChromaticTreeMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value + Clone> Drop for ChromaticTreeMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: &mut self — no concurrent readers or writers remain.
        let g = unsafe { epoch::unprotected() };
        let mut stack = vec![self.root.load(Ordering::Relaxed, g)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = xref(n);
            stack.push(r.left.load(Ordering::Relaxed, g));
            stack.push(r.right.load(Ordering::Relaxed, g));
            // SAFETY: quiescent teardown; each node is reachable exactly once.
            drop(unsafe { n.into_owned() });
        }
    }
}

impl<K: Key, V: Value + Clone> ConcurrentMap<K, V> for ChromaticTreeMap<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: &K) -> bool {
        let g = &epoch::pin();
        let (_, _, l, _) = self.search(key, g);
        matches!(xref(l).key, CKey::Key(k) if k == *key)
    }
    fn get(&self, key: &K) -> Option<V> {
        let g = &epoch::pin();
        let (_, _, l, _) = self.search(key, g);
        let lr = xref(l);
        if matches!(lr.key, CKey::Key(k) if k == *key) {
            lr.value.clone()
        } else {
            None
        }
    }
    fn name(&self) -> &'static str {
        "chromatic"
    }
}

/// Snapshot-only ordered access: this structure has no ordering layer
/// (no `pred`/`succ` chain), so it cannot offer concurrent ordered reads
/// ([`lo_api::OrderedRead`]); quiescent in-order dumps are all it has.
impl<K: Key, V: Value + Clone> QuiescentOrdered<K> for ChromaticTreeMap<K, V> {
    fn keys_in_order(&self) -> Vec<K> {
        let g = epoch::pin();
        let mut out = Vec::new();
        let mut stack = vec![self.root_sh(&g)];
        let mut leaves = Vec::new();
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = xref(n);
            if r.is_leaf {
                leaves.push(n);
            } else {
                stack.push(r.right.load(Ordering::Acquire, &g));
                stack.push(r.left.load(Ordering::Acquire, &g));
            }
        }
        for leaf in leaves {
            if let CKey::Key(k) = xref(leaf).key {
                out.push(k);
            }
        }
        out
    }
}

impl<K: Key, V: Value + Clone> CheckInvariants for ChromaticTreeMap<K, V> {
    fn check_invariants(&self) {
        let g = epoch::pin();
        let root = self.root_sh(&g);
        type Frame<'g, K, V> = (Shared<'g, CNode<K, V>>, Option<CKey<K>>, Option<CKey<K>>);
        let mut stack: Vec<Frame<'_, K, V>> = vec![(root, None, None)];
        let mut leaf_count = 0usize;
        while let Some((n, lo, hi)) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = xref(n);
            assert!(!r.removed.load(Ordering::Acquire), "removed node reachable");
            assert!(r.w() >= 0, "negative weight");
            if let Some(lo) = lo {
                assert!(r.key >= lo, "external BST order violated (lower)");
            }
            if let Some(hi) = hi {
                assert!(r.key < hi, "external BST order violated (upper)");
            }
            if r.is_leaf {
                leaf_count += 1;
                continue;
            }
            let l = r.left.load(Ordering::Acquire, &g);
            let rt = r.right.load(Ordering::Acquire, &g);
            assert!(!l.is_null() && !rt.is_null(), "internal node missing a child");
            for c in [l, rt] {
                assert_eq!(
                    xref(c).parent.load(Ordering::Acquire, &g),
                    n,
                    "parent pointer inconsistent"
                );
            }
            stack.push((l, lo, Some(r.key)));
            stack.push((rt, Some(r.key), hi));
        }
        assert!(leaf_count >= 2, "sentinel leaves missing");
        let keys = self.keys_in_order();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaves not strictly sorted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let m = ChromaticTreeMap::new();
        assert!(m.insert(5i64, 50u64));
        assert!(!m.insert(5, 51));
        assert_eq!(m.get(&5), Some(50));
        assert!(m.insert(3, 30));
        assert!(m.insert(8, 80));
        assert!(m.remove(&5));
        assert!(!m.remove(&5));
        assert!(!m.contains(&5));
        assert_eq!(m.keys_in_order(), vec![3, 8]);
        m.check_invariants();
    }

    #[test]
    fn bulk_sorted_insert() {
        let m = ChromaticTreeMap::new();
        for k in 0..4_096i64 {
            assert!(m.insert(k, k as u64));
        }
        m.check_invariants();
        assert_eq!(m.keys_in_order().len(), 4_096);
        for k in 0..4_096i64 {
            assert!(m.contains(&k));
        }
        for k in 0..4_096i64 {
            assert!(m.remove(&k));
        }
        assert!(m.keys_in_order().is_empty());
        m.check_invariants();
    }

    #[test]
    fn concurrent_net_balance() {
        let m = ChromaticTreeMap::new();
        let nets: Vec<i64> = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        let mut x = 0x1CED ^ (t + 1);
                        let mut net = 0i64;
                        for i in 0..20_000u64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = (x % 100) as i64;
                            match x % 3 {
                                0 => {
                                    if m.insert(k, k as u64) {
                                        net += 1;
                                    }
                                }
                                1 => {
                                    if m.remove(&k) {
                                        net -= 1;
                                    }
                                }
                                _ => {
                                    let _ = m.contains(&k);
                                }
                            }
                            if i % 128 == 0 {
                                std::thread::yield_now();
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(m.keys_in_order().len() as i64, nets.iter().sum::<i64>());
        m.check_invariants();
    }
}
