//! Lock-free skip list (the paper's "Java's Skip List" comparator, i.e. the
//! Fraser/Harris design behind `ConcurrentSkipListMap`), built from scratch.
//!
//! * Logical deletion = tag bit on a node's own `next` pointers, set top
//!   level down, bottom level last (the bottom-level mark is the
//!   linearization point and designates the owning remover).
//! * `find` physically unlinks marked successors at every level it visits;
//!   inserts therefore never link behind a still-linked marked node.
//! * The owning remover loops `find` passes until the node is no longer
//!   encountered at any level, then retires it through the epoch — no new
//!   traversal can reach it, and in-flight readers are protected by their
//!   guards.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::sync::atomic::{AtomicU64, Ordering};

use lo_api::{CheckInvariants, ConcurrentMap, Key, OrderedRead, QuiescentOrdered, Value};

/// Maximum tower height; supports ~2^28 elements comfortably.
const MAX_HEIGHT: usize = 28;

/// Result of [`SkipListMap::bottom_bounds`]: the last live strict
/// predecessor (`None` = head) and the first `>= key` bottom node.
type BottomBounds<'g, K, V> = (Option<&'g SlNode<K, V>>, Shared<'g, SlNode<K, V>>);

struct SlNode<K, V> {
    /// `None` only for the head sentinel (−∞).
    key: Option<K>,
    value: Option<V>,
    /// Tower of next pointers; tag bit 1 = this node is deleted at that level.
    next: Box<[Atomic<SlNode<K, V>>]>,
}

impl<K, V> SlNode<K, V> {
    fn new(key: Option<K>, value: Option<V>, height: usize) -> Self {
        let next = (0..height).map(|_| Atomic::null()).collect::<Vec<_>>().into_boxed_slice();
        Self { key, value, next }
    }

    fn height(&self) -> usize {
        self.next.len()
    }
}

fn sl_ref<'g, K, V>(s: Shared<'g, SlNode<K, V>>) -> &'g SlNode<K, V> {
    debug_assert!(!s.is_null());
    // SAFETY: nodes are retired only via the epoch after being unreachable.
    unsafe { s.deref() }
}

/// A lock-free skip-list map.
pub struct SkipListMap<K: Key, V: Value> {
    head: Atomic<SlNode<K, V>>,
    /// Per-instance RNG state for tower heights.
    rng: AtomicU64,
}

struct FindResult<'g, K: Key, V: Value> {
    preds: [Shared<'g, SlNode<K, V>>; MAX_HEIGHT],
    succs: [Shared<'g, SlNode<K, V>>; MAX_HEIGHT],
    /// Bottom-level successor equals the key and is unmarked.
    found: bool,
}

impl<K: Key, V: Value> SkipListMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        // SAFETY: the map is not yet shared; no other thread can free nodes.
        let g = unsafe { epoch::unprotected() };
        let head = Owned::new(SlNode::new(None, None, MAX_HEIGHT)).into_shared(g);
        Self { head: Atomic::from(head), rng: AtomicU64::new(0x853C_49E6_748F_EA9B) }
    }

    fn random_height(&self) -> usize {
        // xorshift on a shared word: races are harmless (it is a RNG).
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        // Geometric with p = 1/2.
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    /// The Harris-style search: returns preds/succs per level, unlinking
    /// marked nodes along the way. If `watch` is non-null, reports whether
    /// that exact node was still linked anywhere on the search path.
    fn find<'g>(
        &self,
        key: &K,
        watch: Shared<'g, SlNode<K, V>>,
        g: &'g Guard,
    ) -> (FindResult<'g, K, V>, bool) {
        'retry: loop {
            let head = self.head.load(Ordering::Acquire, g);
            let mut preds = [head; MAX_HEIGHT];
            let mut succs = [Shared::null(); MAX_HEIGHT];
            let mut watched = false;
            let mut pred = head;
            for level in (0..MAX_HEIGHT).rev() {
                // Strip the mark bit: a tag on pred's next means *pred* is
                // deleted; the target pointer is still the correct next node
                // (any CAS on that field will fail and retry).
                let mut curr = sl_ref(pred).next[level].load(Ordering::Acquire, g).with_tag(0);
                loop {
                    if curr.is_null() {
                        break;
                    }
                    let curr_ref = sl_ref(curr);
                    let succ = curr_ref.next[level].load(Ordering::Acquire, g);
                    if succ.tag() == 1 {
                        // curr is deleted at this level: unlink it.
                        if curr == watch.with_tag(0) {
                            watched = true;
                        }
                        if sl_ref(pred).next[level]
                            .compare_exchange(
                                curr,
                                succ.with_tag(0),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                                g,
                            )
                            .is_err()
                        {
                            continue 'retry;
                        }
                        curr = succ.with_tag(0);
                        continue;
                    }
                    let curr_key = curr_ref.key.as_ref().expect("only head lacks a key");
                    if curr_key < key {
                        pred = curr;
                        curr = succ.with_tag(0);
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
            }
            let found = !succs[0].is_null()
                && sl_ref(succs[0]).key.as_ref() == Some(key)
                && sl_ref(succs[0]).next[0].load(Ordering::Acquire, g).tag() == 0;
            return (FindResult { preds, succs, found }, watched);
        }
    }

    fn insert_impl(&self, key: K, value: V) -> bool {
        let g = &epoch::pin();
        let height = self.random_height();
        self.insert_with_height(key, value, height, g)
    }

    fn insert_with_height(&self, key: K, value: V, height: usize, g: &Guard) -> bool {
        let mut key = key;
        let mut value = value;
        loop {
            let (f, _) = self.find(&key, Shared::null(), g);
            if f.found {
                return false;
            }
            let node = Owned::new(SlNode::new(Some(key), Some(value), height));
            for (level, n) in node.next.iter().enumerate().take(height) {
                n.store(f.succs[level], Ordering::Relaxed);
            }
            let node = node.into_shared(g);
            if sl_ref(f.preds[0]).next[0]
                .compare_exchange(f.succs[0], node, Ordering::AcqRel, Ordering::Acquire, g)
                .is_ok()
            {
                self.link_tower(node, height, g);
                return true;
            }
            // SAFETY: the CAS failed, so `node` was never published; this
            // thread still uniquely owns the allocation.
            let mut owned = unsafe { node.into_owned() };
            let (k, v) = (owned.key.take(), owned.value.take());
            drop(owned);
            let (Some(k), Some(v)) = (k, v) else { unreachable!() };
            key = k;
            value = v;
        }
    }

    /// Links levels 1..height after the bottom-level publication.
    fn link_tower<'g>(&self, node: Shared<'g, SlNode<K, V>>, height: usize, g: &'g Guard) {
        let key = sl_ref(node).key.as_ref().expect("key node");
        for level in 1..height {
            loop {
                // Stop if the node got deleted meanwhile.
                let cur_next = sl_ref(node).next[level].load(Ordering::Acquire, g);
                if cur_next.tag() == 1 {
                    return;
                }
                let (f, _) = self.find(key, Shared::null(), g);
                // Aim our pointer at the current succ, then splice in.
                if cur_next != f.succs[level]
                    && sl_ref(node).next[level]
                        .compare_exchange(
                            cur_next,
                            f.succs[level],
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            g,
                        )
                        .is_err()
                {
                    // Marked meanwhile (only markers touch our tower).
                    return;
                }
                if sl_ref(f.preds[level]).next[level]
                    .compare_exchange(f.succs[level], node, Ordering::AcqRel, Ordering::Acquire, g)
                    .is_ok()
                {
                    break;
                }
                // Contention: re-find and retry this level.
            }
        }
    }

    fn remove_impl(&self, key: &K) -> bool {
        let g = &epoch::pin();
        let (f, _) = self.find(key, Shared::null(), g);
        if !f.found {
            return false;
        }
        let node = f.succs[0];
        let node_ref = sl_ref(node);
        let height = node_ref.height();
        // Mark top-down, bottom last.
        for level in (1..height).rev() {
            loop {
                let next = node_ref.next[level].load(Ordering::Acquire, g);
                if next.tag() == 1 {
                    break;
                }
                if node_ref.next[level]
                    .compare_exchange(
                        next,
                        next.with_tag(1),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        g,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Bottom-level mark: linearization point; the winner owns the node.
        loop {
            let next = node_ref.next[0].load(Ordering::Acquire, g);
            if next.tag() == 1 {
                return false; // someone else removed it first
            }
            if node_ref.next[0]
                .compare_exchange(next, next.with_tag(1), Ordering::AcqRel, Ordering::Acquire, g)
                .is_ok()
            {
                break;
            }
        }
        // Unlink everywhere, then retire.
        loop {
            let (_, watched) = self.find(key, node, g);
            if !watched {
                break;
            }
        }
        // SAFETY: this thread won the bottom-level mark, and `find` has
        // unlinked the node from every level; readers hold epoch guards.
        unsafe { g.defer_destroy(node) };
        true
    }

    fn contains_impl(&self, key: &K) -> bool {
        let g = &epoch::pin();
        self.peek(key, g).is_some()
    }

    /// Wait-free-ish search that skips marked nodes without unlinking.
    fn get_node(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let g = &epoch::pin();
        self.peek(key, g).map(|n| n.value.clone().expect("key nodes hold values"))
    }

    /// Bottom-level position for `key` without unlinking: the last *live*
    /// node with key `< key` seen on the descent (`None` = only the head
    /// precedes it) and the first bottom-level node (possibly marked) with
    /// key `>= key`.
    fn bottom_bounds<'g>(&self, key: &K, g: &'g Guard) -> BottomBounds<'g, K, V> {
        let head = self.head.load(Ordering::Acquire, g);
        let mut pred = head;
        let mut floor: Option<&'g SlNode<K, V>> = None;
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = sl_ref(pred).next[level].load(Ordering::Acquire, g).with_tag(0);
            loop {
                if curr.is_null() {
                    break;
                }
                let curr_ref = sl_ref(curr);
                let succ = curr_ref.next[level].load(Ordering::Acquire, g);
                if succ.tag() == 1 {
                    curr = succ.with_tag(0);
                    continue; // skip marked node
                }
                if curr_ref.key.as_ref().expect("only head lacks a key") < key {
                    pred = curr;
                    floor = Some(curr_ref);
                    curr = succ.with_tag(0);
                } else {
                    break;
                }
            }
            if level == 0 {
                return (floor, curr);
            }
        }
        unreachable!("the loop returns at level 0")
    }

    fn peek<'g>(&self, key: &K, g: &'g Guard) -> Option<&'g SlNode<K, V>> {
        let head = self.head.load(Ordering::Acquire, g);
        let mut pred = head;
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = sl_ref(pred).next[level].load(Ordering::Acquire, g).with_tag(0);
            loop {
                if curr.is_null() {
                    break;
                }
                let curr_ref = sl_ref(curr);
                let succ = curr_ref.next[level].load(Ordering::Acquire, g);
                if succ.tag() == 1 {
                    curr = succ.with_tag(0);
                    continue; // skip marked node
                }
                match curr_ref.key.as_ref().expect("only head lacks a key").cmp(key) {
                    std::cmp::Ordering::Less => {
                        pred = curr;
                        curr = succ.with_tag(0);
                    }
                    std::cmp::Ordering::Equal => return Some(curr_ref),
                    std::cmp::Ordering::Greater => break,
                }
            }
        }
        None
    }
}

impl<K: Key, V: Value> Default for SkipListMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> Drop for SkipListMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: &mut self (drop) — no concurrent readers or writers
        // remain, so an unprotected guard is sound. The bottom-level chain
        // contains every still-owned node (retired ones are already
        // unlinked), so each is freed exactly once.
        let g = unsafe { epoch::unprotected() };
        let mut n = self.head.load(Ordering::Relaxed, g);
        while !n.is_null() {
            let next = sl_ref(n).next[0].load(Ordering::Relaxed, g).with_tag(0);
            // SAFETY: quiescent teardown; each node is reachable exactly
            // once via the bottom-level chain.
            drop(unsafe { n.into_owned() });
            n = next;
        }
    }
}

impl<K: Key, V: Value> ConcurrentMap<K, V> for SkipListMap<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: &K) -> bool {
        self.contains_impl(key)
    }
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.get_node(key)
    }
    fn name(&self) -> &'static str {
        "skiplist"
    }
}

/// The skip list has a sorted bottom-level list — structurally the same
/// asset as the logical-ordering trees' `succ` chain — so it implements
/// the concurrent [`OrderedRead`] surface natively: ceiling/floor come
/// from a marked-node-skipping descent, scans walk the bottom level.
impl<K: Key, V: Value> OrderedRead<K> for SkipListMap<K, V> {
    fn min_key(&self) -> Option<K> {
        let g = epoch::pin();
        let mut n = sl_ref(self.head.load(Ordering::Acquire, &g)).next[0]
            .load(Ordering::Acquire, &g)
            .with_tag(0);
        while !n.is_null() {
            let r = sl_ref(n);
            let next = r.next[0].load(Ordering::Acquire, &g);
            if next.tag() == 0 {
                return Some(*r.key.as_ref().expect("key node"));
            }
            n = next.with_tag(0);
        }
        None
    }

    fn max_key(&self) -> Option<K> {
        let g = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &g);
        // Descend to the rightmost node, then check liveness along the
        // bottom-level suffix the descent lands in.
        let mut pred = head;
        let mut best: Option<K> = None;
        for level in (0..MAX_HEIGHT).rev() {
            loop {
                let next = sl_ref(pred).next[level].load(Ordering::Acquire, &g).with_tag(0);
                if next.is_null() {
                    break;
                }
                if level == 0 {
                    let r = sl_ref(next);
                    if r.next[0].load(Ordering::Acquire, &g).tag() == 0 {
                        best = Some(*r.key.as_ref().expect("key node"));
                    }
                }
                pred = next;
            }
        }
        if best.is_some() {
            return best;
        }
        // The whole suffix was concurrently deleted: fall back to a full
        // bottom-level walk tracking the last live node.
        let mut n = sl_ref(head).next[0].load(Ordering::Acquire, &g).with_tag(0);
        while !n.is_null() {
            let r = sl_ref(n);
            let next = r.next[0].load(Ordering::Acquire, &g);
            if next.tag() == 0 {
                best = Some(*r.key.as_ref().expect("key node"));
            }
            n = next.with_tag(0);
        }
        best
    }

    fn ceiling_key(&self, key: &K) -> Option<K> {
        let g = epoch::pin();
        let (_, mut curr) = self.bottom_bounds(key, &g);
        while !curr.is_null() {
            let r = sl_ref(curr);
            let next = r.next[0].load(Ordering::Acquire, &g);
            if next.tag() == 0 {
                return Some(*r.key.as_ref().expect("key node"));
            }
            curr = next.with_tag(0);
        }
        None
    }

    fn floor_key(&self, key: &K) -> Option<K> {
        let g = epoch::pin();
        let (floor, mut curr) = self.bottom_bounds(key, &g);
        // Exact live hit beats the strict floor from the descent.
        while !curr.is_null() {
            let r = sl_ref(curr);
            let next = r.next[0].load(Ordering::Acquire, &g);
            if next.tag() == 0 {
                if r.key.as_ref().expect("key node") == key {
                    return Some(*key);
                }
                break;
            }
            curr = next.with_tag(0);
        }
        floor.map(|n| *n.key.as_ref().expect("key node"))
    }

    fn scan_range(&self, range: std::ops::RangeInclusive<K>, f: &mut dyn FnMut(K)) {
        let (lo, hi) = range.into_inner();
        if lo > hi {
            return;
        }
        let g = epoch::pin();
        let (_, mut curr) = self.bottom_bounds(&lo, &g);
        let mut last: Option<K> = None;
        while !curr.is_null() {
            let r = sl_ref(curr);
            let next = r.next[0].load(Ordering::Acquire, &g);
            if next.tag() == 0 {
                let k = *r.key.as_ref().expect("key node");
                if k > hi {
                    break;
                }
                // Defensive strict-ascent filter (a racing unlink can step
                // the walk backwards through a stale next pointer).
                if last.is_none_or(|l| k > l) {
                    f(k);
                    last = Some(k);
                }
            }
            curr = next.with_tag(0);
        }
    }
}

impl<K: Key, V: Value> QuiescentOrdered<K> for SkipListMap<K, V> {
    fn keys_in_order(&self) -> Vec<K> {
        let g = epoch::pin();
        let mut out = Vec::new();
        let mut n = sl_ref(self.head.load(Ordering::Acquire, &g)).next[0]
            .load(Ordering::Acquire, &g)
            .with_tag(0);
        while !n.is_null() {
            let r = sl_ref(n);
            let next = r.next[0].load(Ordering::Acquire, &g);
            if next.tag() == 0 {
                out.push(*r.key.as_ref().expect("key node"));
            }
            n = next.with_tag(0);
        }
        out
    }
}

impl<K: Key, V: Value> CheckInvariants for SkipListMap<K, V> {
    fn check_invariants(&self) {
        let g = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &g);
        // Every level strictly sorted; every key on level i is also on i-1.
        let mut level_keys: Vec<Vec<K>> = Vec::with_capacity(MAX_HEIGHT);
        for level in 0..MAX_HEIGHT {
            let mut keys = Vec::new();
            let mut n = sl_ref(head).next[level].load(Ordering::Acquire, &g).with_tag(0);
            while !n.is_null() {
                let r = sl_ref(n);
                let next = r.next[level].load(Ordering::Acquire, &g);
                assert_eq!(next.tag(), 0, "marked node still linked at quiescence");
                assert!(r.height() > level, "node linked above its own tower");
                keys.push(*r.key.as_ref().expect("key node"));
                n = next.with_tag(0);
            }
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "level {level} not sorted");
            level_keys.push(keys);
        }
        for level in 1..MAX_HEIGHT {
            for k in &level_keys[level] {
                assert!(
                    level_keys[level - 1].binary_search(k).is_ok(),
                    "key {k:?} on level {level} missing below"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let m = SkipListMap::new();
        assert!(m.insert(5i64, 50u64));
        assert!(!m.insert(5, 51));
        assert_eq!(m.get(&5), Some(50));
        assert!(m.insert(1, 10));
        assert!(m.insert(9, 90));
        assert_eq!(m.keys_in_order(), vec![1, 5, 9]);
        assert!(m.remove(&5));
        assert!(!m.remove(&5));
        assert!(!m.contains(&5));
        m.check_invariants();
    }

    #[test]
    fn towers_survive_churn() {
        let m = SkipListMap::new();
        for k in 0..2_000i64 {
            assert!(m.insert(k, k as u64));
        }
        for k in (0..2_000i64).step_by(2) {
            assert!(m.remove(&k));
        }
        assert_eq!(m.keys_in_order().len(), 1_000);
        assert!(m.contains(&1001));
        assert!(!m.contains(&1000));
        m.check_invariants();
    }

    #[test]
    fn concurrent_net_balance() {
        let m = SkipListMap::new();
        let nets: Vec<i64> = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        let mut x = 0xDEAD ^ (t + 1);
                        let mut net = 0i64;
                        for _ in 0..20_000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = (x % 128) as i64;
                            match x % 3 {
                                0 => {
                                    if m.insert(k, k as u64) {
                                        net += 1;
                                    }
                                }
                                1 => {
                                    if m.remove(&k) {
                                        net -= 1;
                                    }
                                }
                                _ => {
                                    let _ = m.contains(&k);
                                }
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert_eq!(m.keys_in_order().len() as i64, nets.iter().sum::<i64>());
        m.check_invariants();
    }
}
