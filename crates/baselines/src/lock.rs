//! Tiny manual-release lock used by the lock-based baselines (same shape as
//! `lo-core`'s node lock; duplicated to keep the comparator crate free of a
//! dependency on the system under test).

use parking_lot::lock_api::RawMutex as _;

pub(crate) struct RawLock {
    raw: parking_lot::RawMutex,
}

impl RawLock {
    pub(crate) const fn new() -> Self {
        Self { raw: parking_lot::RawMutex::INIT }
    }

    #[inline]
    pub(crate) fn lock(&self) {
        self.raw.lock();
    }

    #[allow(dead_code)] // used by the CF tree's maintenance thread
    #[inline]
    pub(crate) fn try_lock(&self) -> bool {
        self.raw.try_lock()
    }

    #[inline]
    pub(crate) fn unlock(&self) {
        debug_assert!(self.raw.is_locked(), "unlock of an unheld RawLock");
        // SAFETY: call sites pair every acquisition with exactly one release.
        unsafe { self.raw.unlock() }
    }

    #[inline]
    pub(crate) fn is_locked(&self) -> bool {
        self.raw.is_locked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let l = RawLock::new();
        l.lock();
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
    }
}
