//! Sequential AVL map: the single-threaded reference implementation.
//!
//! Used three ways: as the oracle in differential tests, as the payload of
//! the coarse-grained locked baseline ([`crate::coarse`]), and as the
//! single-thread performance reference in the benchmark tables.

use std::cmp::Ordering;

struct SeqNode<K, V> {
    key: K,
    value: V,
    height: i32,
    left: Option<Box<SeqNode<K, V>>>,
    right: Option<Box<SeqNode<K, V>>>,
}

impl<K: Ord, V> SeqNode<K, V> {
    fn new(key: K, value: V) -> Box<Self> {
        Box::new(Self { key, value, height: 1, left: None, right: None })
    }
}

fn height<K, V>(n: &Option<Box<SeqNode<K, V>>>) -> i32 {
    n.as_ref().map_or(0, |b| b.height)
}

fn fix_height<K, V>(n: &mut SeqNode<K, V>) {
    n.height = height(&n.left).max(height(&n.right)) + 1;
}

fn bf<K, V>(n: &SeqNode<K, V>) -> i32 {
    height(&n.left) - height(&n.right)
}

fn rotate_right<K, V>(mut n: Box<SeqNode<K, V>>) -> Box<SeqNode<K, V>> {
    let mut l = n.left.take().expect("rotate_right requires a left child");
    n.left = l.right.take();
    fix_height(&mut n);
    l.right = Some(n);
    fix_height(&mut l);
    l
}

fn rotate_left<K, V>(mut n: Box<SeqNode<K, V>>) -> Box<SeqNode<K, V>> {
    let mut r = n.right.take().expect("rotate_left requires a right child");
    n.right = r.left.take();
    fix_height(&mut n);
    r.left = Some(n);
    fix_height(&mut r);
    r
}

fn balance<K: Ord, V>(mut n: Box<SeqNode<K, V>>) -> Box<SeqNode<K, V>> {
    fix_height(&mut n);
    let b = bf(&n);
    if b >= 2 {
        if bf(n.left.as_ref().expect("left-heavy implies left child")) < 0 {
            n.left = Some(rotate_left(n.left.take().expect("checked above")));
        }
        rotate_right(n)
    } else if b <= -2 {
        if bf(n.right.as_ref().expect("right-heavy implies right child")) > 0 {
            n.right = Some(rotate_right(n.right.take().expect("checked above")));
        }
        rotate_left(n)
    } else {
        n
    }
}

/// A plain sequential AVL tree map.
pub struct SeqAvl<K, V> {
    root: Option<Box<SeqNode<K, V>>>,
    len: usize,
}

impl<K: Ord, V> SeqAvl<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        Self { root: None, len: 0 }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts if absent; `true` on success.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        fn go<K: Ord, V>(slot: &mut Option<Box<SeqNode<K, V>>>, key: K, value: V) -> bool {
            match slot {
                None => {
                    *slot = Some(SeqNode::new(key, value));
                    true
                }
                Some(n) => {
                    let inserted = match key.cmp(&n.key) {
                        Ordering::Equal => return false,
                        Ordering::Less => go(&mut n.left, key, value),
                        Ordering::Greater => go(&mut n.right, key, value),
                    };
                    if inserted {
                        let owned = slot.take().expect("slot was Some");
                        *slot = Some(balance(owned));
                    }
                    inserted
                }
            }
        }
        let inserted = go(&mut self.root, key, value);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Removes `key`; `true` if present.
    pub fn remove(&mut self, key: &K) -> bool {
        fn pop_min<K: Ord, V>(slot: &mut Option<Box<SeqNode<K, V>>>) -> Box<SeqNode<K, V>> {
            let n = slot.as_mut().expect("pop_min on empty subtree");
            if n.left.is_some() {
                let min = pop_min(&mut n.left);
                let owned = slot.take().expect("slot was Some");
                *slot = Some(balance(owned));
                min
            } else {
                let mut owned = slot.take().expect("slot was Some");
                *slot = owned.right.take();
                owned
            }
        }
        fn go<K: Ord, V>(slot: &mut Option<Box<SeqNode<K, V>>>, key: &K) -> bool {
            let Some(n) = slot else { return false };
            let removed = match key.cmp(&n.key) {
                Ordering::Less => go(&mut n.left, key),
                Ordering::Greater => go(&mut n.right, key),
                Ordering::Equal => {
                    let mut owned = slot.take().expect("slot was Some");
                    *slot = match (owned.left.take(), owned.right.take()) {
                        (None, r) => r,
                        (l, None) => l,
                        (l, Some(r)) => {
                            let mut right = Some(r);
                            let mut succ = pop_min(&mut right);
                            succ.left = l;
                            succ.right = right;
                            Some(succ)
                        }
                    };
                    true
                }
            };
            if removed {
                if let Some(owned) = slot.take() {
                    *slot = Some(balance(owned));
                }
            }
            removed
        }
        let removed = go(&mut self.root, key);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Reference to the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Equal => return Some(&n.value),
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
            }
        }
        None
    }

    /// Membership test.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Ascending keys.
    pub fn keys_in_order(&self) -> Vec<K>
    where
        K: Copy,
    {
        fn go<K: Copy, V>(n: &Option<Box<SeqNode<K, V>>>, out: &mut Vec<K>) {
            if let Some(n) = n {
                go(&n.left, out);
                out.push(n.key);
                go(&n.right, out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        go(&self.root, &mut out);
        out
    }

    /// Panics unless heights are exact and every node satisfies |bf| ≤ 1.
    pub fn check_invariants(&self) {
        fn go<K: Ord, V>(n: &Option<Box<SeqNode<K, V>>>, lo: Option<&K>, hi: Option<&K>) -> i32 {
            let Some(n) = n else { return 0 };
            if let Some(lo) = lo {
                assert!(*lo < n.key, "BST order violated (lower bound)");
            }
            if let Some(hi) = hi {
                assert!(n.key < *hi, "BST order violated (upper bound)");
            }
            let hl = go(&n.left, lo, Some(&n.key));
            let hr = go(&n.right, Some(&n.key), hi);
            assert_eq!(n.height, hl.max(hr) + 1, "stale height");
            assert!((hl - hr).abs() <= 1, "AVL violation");
            n.height
        }
        let h = go(&self.root, None, None);
        // Height must be logarithmic in len (sanity bound: 1.45 log2(n+2)).
        if self.len > 0 {
            let bound = (1.4405 * ((self.len + 2) as f64).log2()).ceil() as i32 + 1;
            assert!(h <= bound, "tree too tall: height {h}, len {}", self.len);
        }
    }
}

impl<K: Ord, V> Default for SeqAvl<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn mirrors_btreemap() {
        let mut avl = SeqAvl::new();
        let mut oracle = BTreeMap::new();
        // Deterministic pseudo-random op sequence.
        let mut x = 0x12345678u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 512) as i64;
            match x % 3 {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, k);
                    }
                    assert_eq!(avl.insert(k, k), expect);
                }
                1 => {
                    assert_eq!(avl.remove(&k), oracle.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(avl.get(&k), oracle.get(&k));
                }
            }
        }
        avl.check_invariants();
        assert_eq!(avl.len(), oracle.len());
        assert_eq!(avl.keys_in_order(), oracle.keys().copied().collect::<Vec<_>>());
    }

    #[test]
    fn sorted_insert_stays_balanced() {
        let mut avl = SeqAvl::new();
        for k in 0..4096i64 {
            assert!(avl.insert(k, k));
        }
        avl.check_invariants(); // would fail the height bound if unbalanced
        for k in 0..4096i64 {
            assert!(avl.remove(&k));
            if k % 512 == 0 {
                avl.check_invariants();
            }
        }
        assert!(avl.is_empty());
    }

    #[test]
    fn two_children_removal() {
        let mut avl = SeqAvl::new();
        for k in [50i64, 25, 75, 10, 30, 60, 90] {
            avl.insert(k, k);
        }
        assert!(avl.remove(&50)); // root with two children
        assert!(!avl.contains(&50));
        assert_eq!(avl.len(), 6);
        avl.check_invariants();
    }
}
