//! CF tree: the contention-friendly binary search tree of Crain, Gramoli and
//! Raynal (Euro-Par 2013) — the paper's "maintenance thread" comparator.
//!
//! Design points reproduced:
//! * **Decoupled maintenance**: application operations never rebalance or
//!   physically remove. `remove` only sets a `del` flag; `insert` may revive
//!   a deleted node. A dedicated background thread continuously walks the
//!   tree, unlinking deleted nodes that have at most one child and restoring
//!   balance.
//! * **Rotation by copy**: the maintenance thread rotates by *cloning* the
//!   node that moves down. The original keeps its child pointers, so an
//!   in-flight reader parked on it still sees a consistent subtree; the
//!   original is marked `rem` and retired through the epoch.
//! * **Unlink keeps pointers**: a spliced-out node's `left`/`right` remain
//!   valid entry points into the live tree for stranded readers.
//!
//! Because rotation clones carry the value across, this map requires
//! `V: Clone` (the paper's Java version shares references; see DESIGN.md).
//!
//! The paper's evaluation runs the maintenance thread continuously; here it
//! sleeps briefly whenever a full pass found no work, so idle trees do not
//! spin a core.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use std::cmp::Ordering as Cmp;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;

use crate::lock::RawLock;
use lo_api::{CheckInvariants, ConcurrentMap, Key, QuiescentOrdered, Value};

struct CfNode<K, V> {
    /// `None` only for the root holder (−∞; everything descends right).
    key: Option<K>,
    value: Atomic<V>,
    /// Logically deleted (guarded by `lock`).
    ///
    /// `del`/`rem` are written under the node lock and validated after
    /// re-locking, so Release stores / Acquire loads carry all the ordering
    /// the algorithm uses (no cross-flag SC total order is relied on).
    del: AtomicBool,
    /// Physically removed / superseded by a rotation clone (terminal).
    rem: AtomicBool,
    left: Atomic<CfNode<K, V>>,
    right: Atomic<CfNode<K, V>>,
    /// Height estimate, maintained solely by the maintenance thread.
    height: AtomicI32,
    lock: RawLock,
}

impl<K, V> CfNode<K, V> {
    fn new(key: Option<K>, value: Atomic<V>) -> Self {
        Self {
            key,
            value,
            del: AtomicBool::new(false),
            rem: AtomicBool::new(false),
            left: Atomic::null(),
            right: Atomic::null(),
            height: AtomicI32::new(1),
            lock: RawLock::new(),
        }
    }
}

impl<K, V> Drop for CfNode<K, V> {
    fn drop(&mut self) {
        // SAFETY: drop implies exclusive access (epoch reclamation already
        // proved no reader can still hold a reference).
        let g = unsafe { epoch::unprotected() };
        let v = self.value.swap(Shared::null(), Ordering::Relaxed, g);
        if !v.is_null() {
            // SAFETY: the value pointer is uniquely owned by this node.
            drop(unsafe { v.into_owned() });
        }
    }
}

fn cref<'g, K, V>(s: Shared<'g, CfNode<K, V>>) -> &'g CfNode<K, V> {
    debug_assert!(!s.is_null());
    // SAFETY: nodes retired only via the epoch after becoming unreachable.
    unsafe { s.deref() }
}

struct Inner<K: Key, V: Value> {
    root: Atomic<CfNode<K, V>>,
    stop: AtomicBool,
    /// Serializes each structural maintenance action (unlink / rotation by
    /// copy) against whole-tree snapshot walks. A rotation briefly makes a
    /// subtree reachable through two paths — harmless for point searches,
    /// but a concurrent in-order walk would observe duplicated keys.
    gate: parking_lot::Mutex<()>,
}

impl<K: Key, V: Value> Drop for Inner<K, V> {
    fn drop(&mut self) {
        // SAFETY: &mut self — the maintenance thread has been joined and no
        // readers remain.
        let g = unsafe { epoch::unprotected() };
        let mut stack = vec![self.root.load(Ordering::Relaxed, g)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = cref(n);
            stack.push(r.left.load(Ordering::Relaxed, g));
            stack.push(r.right.load(Ordering::Relaxed, g));
            // SAFETY: quiescent teardown; each node is reachable exactly once.
            drop(unsafe { n.into_owned() });
        }
    }
}

/// The contention-friendly tree (owns its maintenance thread).
pub struct CfTreeMap<K: Key, V: Value + Clone> {
    inner: Arc<Inner<K, V>>,
    maintenance: Option<std::thread::JoinHandle<()>>,
}

impl<K: Key, V: Value + Clone> CfTreeMap<K, V> {
    /// Empty tree; spawns the maintenance thread.
    pub fn new() -> Self {
        // SAFETY: the tree is not yet shared; no other thread can free nodes.
        let g = unsafe { epoch::unprotected() };
        let holder = Owned::new(CfNode::new(None, Atomic::null())).into_shared(g);
        let inner = Arc::new(Inner {
            root: Atomic::from(holder),
            stop: AtomicBool::new(false),
            gate: parking_lot::Mutex::new(()),
        });
        let worker = Arc::clone(&inner);
        let maintenance = std::thread::Builder::new()
            .name("cf-maintenance".into())
            .spawn(move || {
                while !worker.stop.load(Ordering::Relaxed) {
                    let did_work = Self::maintenance_pass(&worker);
                    if !did_work {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            })
            .expect("spawn maintenance thread");
        Self { inner, maintenance: Some(maintenance) }
    }

    fn holder<'g>(inner: &Inner<K, V>, g: &'g Guard) -> Shared<'g, CfNode<K, V>> {
        inner.root.load(Ordering::Relaxed, g)
    }

    // ------------------------------------------------------------------
    // Application operations (no structural changes, no rebalancing).
    // ------------------------------------------------------------------

    /// Plain traversal; returns the node holding `key` (live or `rem` — both
    /// answer correctly) or null.
    fn find<'g>(&self, key: &K, g: &'g Guard) -> Shared<'g, CfNode<K, V>> {
        let mut node = Self::holder(&self.inner, g);
        loop {
            let n = cref(node);
            let next = match n.key.as_ref() {
                None => n.right.load(Ordering::Acquire, g),
                Some(nk) => match key.cmp(nk) {
                    Cmp::Equal => return node,
                    Cmp::Less => n.left.load(Ordering::Acquire, g),
                    Cmp::Greater => n.right.load(Ordering::Acquire, g),
                },
            };
            if next.is_null() {
                return Shared::null();
            }
            node = next;
        }
    }

    fn insert_impl(&self, key: K, value: V) -> bool {
        let g = &epoch::pin();
        let mut value = Some(value);
        'restart: loop {
            // Traverse to the key node or the candidate parent.
            let mut node = Self::holder(&self.inner, g);
            loop {
                let n = cref(node);
                let (next, go_left) = match n.key.as_ref() {
                    None => (n.right.load(Ordering::Acquire, g), false),
                    Some(nk) => match key.cmp(nk) {
                        Cmp::Equal => {
                            // Present (maybe deleted): lock and decide.
                            n.lock.lock();
                            if n.rem.load(Ordering::Acquire) {
                                n.lock.unlock();
                                continue 'restart;
                            }
                            if n.del.load(Ordering::Acquire) {
                                let v = value.take().expect("value unconsumed");
                                let old =
                                    n.value.swap(Owned::new(v), Ordering::AcqRel, g);
                                n.del.store(false, Ordering::Release);
                                n.lock.unlock();
                                if !old.is_null() {
                                    // SAFETY: `old` was swapped out under the
                                    // node lock; readers hold epoch guards.
                                    unsafe { g.defer_destroy(old) };
                                }
                                return true;
                            }
                            n.lock.unlock();
                            return false;
                        }
                        Cmp::Less => (n.left.load(Ordering::Acquire, g), true),
                        Cmp::Greater => (n.right.load(Ordering::Acquire, g), false),
                    },
                };
                if next.is_null() {
                    // Candidate parent: lock, validate, link.
                    n.lock.lock();
                    if n.rem.load(Ordering::Acquire) {
                        n.lock.unlock();
                        continue 'restart;
                    }
                    let slot = if go_left { &n.left } else { &n.right };
                    if !slot.load(Ordering::Acquire, g).is_null() {
                        n.lock.unlock();
                        continue; // slot filled meanwhile; keep descending
                    }
                    let v = value.take().expect("value unconsumed");
                    let leaf =
                        Owned::new(CfNode::new(Some(key), Atomic::new(v))).into_shared(g);
                    slot.store(leaf, Ordering::Release);
                    n.lock.unlock();
                    return true;
                }
                node = next;
            }
        }
    }

    fn remove_impl(&self, key: &K) -> bool {
        let g = &epoch::pin();
        loop {
            let node = self.find(key, g);
            if node.is_null() {
                return false;
            }
            let n = cref(node);
            n.lock.lock();
            if n.rem.load(Ordering::Acquire) {
                n.lock.unlock();
                continue; // superseded; retry on the live copy
            }
            if n.del.load(Ordering::Acquire) {
                n.lock.unlock();
                return false;
            }
            n.del.store(true, Ordering::Release);
            n.lock.unlock();
            return true;
        }
    }

    fn contains_impl(&self, key: &K) -> bool {
        let g = &epoch::pin();
        let node = self.find(key, g);
        !node.is_null() && !cref(node).del.load(Ordering::Acquire)
    }

    fn get_value(&self, key: &K) -> Option<V> {
        let g = &epoch::pin();
        let node = self.find(key, g);
        if node.is_null() {
            return None;
        }
        let n = cref(node);
        if n.del.load(Ordering::Acquire) {
            return None;
        }
        let v = n.value.load(Ordering::Acquire, g);
        if v.is_null() {
            return None;
        }
        // SAFETY: value pointers are epoch-protected.
        Some(unsafe { v.deref() }.clone())
    }

    // ------------------------------------------------------------------
    // Maintenance (single background thread): unlink + rebalance.
    // ------------------------------------------------------------------

    /// One full pass; returns whether any structural work was done.
    fn maintenance_pass(inner: &Inner<K, V>) -> bool {
        let g = &epoch::pin();
        let holder = Self::holder(inner, g);
        let mut did_work = false;
        // Post-order walk with an explicit stack of (parent, node, expanded).
        type Frame<'g, K, V> = (Shared<'g, CfNode<K, V>>, Shared<'g, CfNode<K, V>>, bool);
        let mut stack: Vec<Frame<'_, K, V>> = Vec::new();
        let first = cref(holder).right.load(Ordering::Acquire, g);
        if !first.is_null() {
            stack.push((holder, first, false));
        }
        while let Some((parent, node, expanded)) = stack.pop() {
            if inner.stop.load(Ordering::Relaxed) {
                return did_work;
            }
            let n = cref(node);
            if n.rem.load(Ordering::Acquire) {
                continue; // superseded during this pass
            }
            if !expanded {
                stack.push((parent, node, true));
                for child in
                    [n.left.load(Ordering::Acquire, g), n.right.load(Ordering::Acquire, g)]
                {
                    if !child.is_null() {
                        stack.push((node, child, false));
                    }
                }
                continue;
            }
            // Post-visit: children processed. Try unlink, then height/rotate.
            if n.del.load(Ordering::Acquire) {
                let l = n.left.load(Ordering::Acquire, g);
                let r = n.right.load(Ordering::Acquire, g);
                if l.is_null() || r.is_null() {
                    did_work |= Self::try_unlink(inner, parent, node, g);
                    continue;
                }
            }
            did_work |= Self::fix_heights_and_rotate(inner, parent, node, g);
        }
        did_work
    }

    fn stored_height(s: Shared<'_, CfNode<K, V>>) -> i32 {
        if s.is_null() {
            0
        } else {
            cref(s).height.load(Ordering::Relaxed)
        }
    }

    /// Unlinks a deleted node with ≤1 child (splices its only child, or
    /// nothing, into the parent). The node keeps its pointers for stranded
    /// readers and is retired.
    fn try_unlink<'g>(
        inner: &Inner<K, V>,
        parent: Shared<'g, CfNode<K, V>>,
        node: Shared<'g, CfNode<K, V>>,
        g: &'g Guard,
    ) -> bool {
        let _gate = inner.gate.lock();
        let p = cref(parent);
        let n = cref(node);
        p.lock.lock();
        n.lock.lock();
        let ok = !p.rem.load(Ordering::Acquire)
            && !n.rem.load(Ordering::Acquire)
            && n.del.load(Ordering::Acquire)
            && (p.left.load(Ordering::Acquire, g) == node
                || p.right.load(Ordering::Acquire, g) == node);
        if !ok {
            n.lock.unlock();
            p.lock.unlock();
            return false;
        }
        let l = n.left.load(Ordering::Acquire, g);
        let r = n.right.load(Ordering::Acquire, g);
        if !l.is_null() && !r.is_null() {
            // Grew a second child since the check.
            n.lock.unlock();
            p.lock.unlock();
            return false;
        }
        let splice = if l.is_null() { r } else { l };
        if p.left.load(Ordering::Acquire, g) == node {
            p.left.store(splice, Ordering::Release);
        } else {
            debug_assert_eq!(p.right.load(Ordering::Acquire, g), node);
            p.right.store(splice, Ordering::Release);
        }
        n.rem.store(true, Ordering::Release);
        n.lock.unlock();
        p.lock.unlock();
        // SAFETY: this thread unlinked the node under the parent + node
        // locks; the `rem` flag stops new references and readers hold epoch
        // guards.
        unsafe { g.defer_destroy(node) };
        true
    }

    /// Recomputes the height estimate; rotates by copy when imbalanced.
    fn fix_heights_and_rotate<'g>(
        inner: &Inner<K, V>,
        parent: Shared<'g, CfNode<K, V>>,
        node: Shared<'g, CfNode<K, V>>,
        g: &'g Guard,
    ) -> bool {
        let n = cref(node);
        let hl = Self::stored_height(n.left.load(Ordering::Acquire, g));
        let hr = Self::stored_height(n.right.load(Ordering::Acquire, g));
        n.height.store(hl.max(hr) + 1, Ordering::Relaxed);
        if hl - hr > 1 {
            Self::rotate(inner, parent, node, true, g)
        } else if hr - hl > 1 {
            Self::rotate(inner, parent, node, false, g)
        } else {
            false
        }
    }

    /// Rotation by copy: the rising child keeps its identity; `node` is
    /// superseded by a clone placed below, and retired. `right_rotation`
    /// lifts the left child.
    fn rotate<'g>(
        inner: &Inner<K, V>,
        parent: Shared<'g, CfNode<K, V>>,
        node: Shared<'g, CfNode<K, V>>,
        right_rotation: bool,
        g: &'g Guard,
    ) -> bool {
        let _gate = inner.gate.lock();
        let p = cref(parent);
        let n = cref(node);
        p.lock.lock();
        n.lock.lock();
        let child = if right_rotation {
            n.left.load(Ordering::Acquire, g)
        } else {
            n.right.load(Ordering::Acquire, g)
        };
        let valid = !p.rem.load(Ordering::Acquire)
            && !n.rem.load(Ordering::Acquire)
            && !child.is_null()
            && (p.left.load(Ordering::Acquire, g) == node
                || p.right.load(Ordering::Acquire, g) == node);
        if !valid {
            n.lock.unlock();
            p.lock.unlock();
            return false;
        }
        let c = cref(child);
        c.lock.lock();

        // Clone n (key, value, del) to sit below the rising child.
        let val = n.value.load(Ordering::Acquire, g);
        let val_clone = if val.is_null() {
            Atomic::null()
        } else {
            // SAFETY: epoch-protected value, stable under n's lock.
            Atomic::new(unsafe { val.deref() }.clone())
        };
        let clone = CfNode::new(n.key, val_clone);
        clone.del.store(n.del.load(Ordering::Acquire), Ordering::Release);
        if right_rotation {
            // clone gets (c.right, n.right); c.right becomes clone.
            clone.left.store(c.right.load(Ordering::Acquire, g), Ordering::Relaxed);
            clone.right.store(n.right.load(Ordering::Acquire, g), Ordering::Relaxed);
            clone.height.store(
                Self::stored_height(clone.left.load(Ordering::Relaxed, g))
                    .max(Self::stored_height(clone.right.load(Ordering::Relaxed, g)))
                    + 1,
                Ordering::Relaxed,
            );
            let clone = Owned::new(clone).into_shared(g);
            c.right.store(clone, Ordering::Release);
        } else {
            clone.right.store(c.left.load(Ordering::Acquire, g), Ordering::Relaxed);
            clone.left.store(n.left.load(Ordering::Acquire, g), Ordering::Relaxed);
            clone.height.store(
                Self::stored_height(clone.left.load(Ordering::Relaxed, g))
                    .max(Self::stored_height(clone.right.load(Ordering::Relaxed, g)))
                    + 1,
                Ordering::Relaxed,
            );
            let clone = Owned::new(clone).into_shared(g);
            c.left.store(clone, Ordering::Release);
        }
        c.height.store(
            Self::stored_height(c.left.load(Ordering::Acquire, g))
                .max(Self::stored_height(c.right.load(Ordering::Acquire, g)))
                + 1,
            Ordering::Relaxed,
        );
        // Swing the parent pointer to the rising child; supersede n.
        if p.left.load(Ordering::Acquire, g) == node {
            p.left.store(child, Ordering::Release);
        } else {
            p.right.store(child, Ordering::Release);
        }
        n.rem.store(true, Ordering::Release);

        c.lock.unlock();
        n.lock.unlock();
        p.lock.unlock();
        // SAFETY: unlinked under the parent + node + child locks by this
        // thread; readers hold epoch guards.
        unsafe { g.defer_destroy(node) };
        true
    }
}

impl<K: Key, V: Value + Clone> CfTreeMap<K, V> {
    /// (physical nodes, logically-deleted nodes awaiting maintenance) —
    /// quiescent use only.
    pub fn node_stats(&self) -> (usize, usize) {
        let _gate = self.inner.gate.lock();
        let g = epoch::pin();
        let mut physical = 0usize;
        let mut deleted = 0usize;
        let mut stack =
            vec![cref(Self::holder(&self.inner, &g)).right.load(Ordering::Acquire, &g)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            physical += 1;
            let r = cref(n);
            if r.del.load(Ordering::Acquire) {
                deleted += 1;
            }
            stack.push(r.left.load(Ordering::Acquire, &g));
            stack.push(r.right.load(Ordering::Acquire, &g));
        }
        (physical, deleted)
    }
}

impl<K: Key, V: Value + Clone> Default for CfTreeMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value + Clone> Drop for CfTreeMap<K, V> {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.maintenance.take() {
            let _ = h.join();
        }
        // Inner (and all nodes) freed when the last Arc drops.
    }
}

impl<K: Key, V: Value + Clone> ConcurrentMap<K, V> for CfTreeMap<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: &K) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: &K) -> bool {
        self.contains_impl(key)
    }
    fn get(&self, key: &K) -> Option<V> {
        self.get_value(key)
    }
    fn name(&self) -> &'static str {
        "cf"
    }
}

/// Snapshot-only ordered access: this structure has no ordering layer
/// (no `pred`/`succ` chain), so it cannot offer concurrent ordered reads
/// ([`lo_api::OrderedRead`]); quiescent in-order dumps are all it has.
impl<K: Key, V: Value + Clone> QuiescentOrdered<K> for CfTreeMap<K, V> {
    fn keys_in_order(&self) -> Vec<K> {
        let _gate = self.inner.gate.lock();
        let g = epoch::pin();
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut node = cref(Self::holder(&self.inner, &g)).right.load(Ordering::Acquire, &g);
        while !node.is_null() || !stack.is_empty() {
            while !node.is_null() {
                stack.push(node);
                node = cref(node).left.load(Ordering::Acquire, &g);
            }
            let n = stack.pop().expect("non-empty");
            let r = cref(n);
            if !r.del.load(Ordering::Acquire) {
                out.push(*r.key.as_ref().expect("only holder lacks a key"));
            }
            node = r.right.load(Ordering::Acquire, &g);
        }
        out
    }
}

impl<K: Key, V: Value + Clone> CheckInvariants for CfTreeMap<K, V> {
    fn check_invariants(&self) {
        let _gate = self.inner.gate.lock();
        let g = epoch::pin();
        let root = cref(Self::holder(&self.inner, &g)).right.load(Ordering::Acquire, &g);
        type Frame<'g, K, V> = (Shared<'g, CfNode<K, V>>, Option<K>, Option<K>);
        let mut stack: Vec<Frame<'_, K, V>> = vec![(root, None, None)];
        while let Some((n, lo, hi)) = stack.pop() {
            if n.is_null() {
                continue;
            }
            let r = cref(n);
            assert!(!r.rem.load(Ordering::Acquire), "rem node reachable");
            let k = r.key.expect("only holder lacks a key");
            if let Some(lo) = lo {
                assert!(lo < k, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(k < hi, "BST order violated");
            }
            stack.push((r.left.load(Ordering::Acquire, &g), lo, Some(k)));
            stack.push((r.right.load(Ordering::Acquire, &g), Some(k), hi));
        }
        let keys = self.keys_in_order();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys not strictly sorted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let m = CfTreeMap::new();
        assert!(m.insert(5i64, 50u64));
        assert!(!m.insert(5, 51));
        assert_eq!(m.get(&5), Some(50));
        assert!(m.insert(3, 30));
        assert!(m.insert(8, 80));
        assert!(m.remove(&5)); // logical
        assert!(!m.contains(&5));
        assert!(!m.remove(&5));
        assert!(m.insert(5, 55)); // revive (or re-insert after cleanup)
        assert_eq!(m.get(&5), Some(55));
        m.check_invariants();
    }

    #[test]
    fn maintenance_eventually_unlinks_and_balances() {
        let m = CfTreeMap::new();
        for k in 0..2_000i64 {
            assert!(m.insert(k, k as u64));
        }
        for k in 500..1_500i64 {
            assert!(m.remove(&k));
        }
        // Give the maintenance thread time to clean up and rebalance.
        std::thread::sleep(std::time::Duration::from_millis(300));
        assert_eq!(m.keys_in_order().len(), 1_000);
        for k in [0i64, 499, 1500, 1999] {
            assert!(m.contains(&k));
        }
        for k in [500i64, 1499] {
            assert!(!m.contains(&k));
        }
        m.check_invariants();
    }

    #[test]
    fn concurrent_net_balance() {
        let m = CfTreeMap::new();
        let nets: Vec<i64> = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        let mut x = 0xC0DE ^ (t + 1);
                        let mut net = 0i64;
                        for i in 0..20_000u64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = (x % 100) as i64;
                            match x % 3 {
                                0 => {
                                    if m.insert(k, k as u64) {
                                        net += 1;
                                    }
                                }
                                1 => {
                                    if m.remove(&k) {
                                        net -= 1;
                                    }
                                }
                                _ => {
                                    let _ = m.contains(&k);
                                }
                            }
                            if i % 128 == 0 {
                                std::thread::yield_now();
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        // Let maintenance settle, then verify.
        std::thread::sleep(std::time::Duration::from_millis(200));
        assert_eq!(m.keys_in_order().len() as i64, nets.iter().sum::<i64>());
        m.check_invariants();
    }
}
