//! Proptest oracles for every comparator: arbitrary op sequences must match
//! `BTreeMap`, and structural invariants must hold afterwards. (The root
//! workspace `tests/differential.rs` covers cross-implementation agreement;
//! this file gives each baseline its own shrinkable failure cases.)

use lo_api::{CheckInvariants, ConcurrentMap, QuiescentOrdered};
use lo_baselines::{
    BccoTreeMap, CfTreeMap, ChromaticTreeMap, CoarseAvlMap, EfrbTreeMap, NmTreeMap, SkipListMap,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64),
    Remove(i64),
    Contains(i64),
}

fn ops(key_space: i64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..key_space).prop_map(Op::Insert),
            (0..key_space).prop_map(Op::Remove),
            (0..key_space).prop_map(Op::Contains),
        ],
        1..300,
    )
}

fn run_oracle<M>(map: &M, ops: &[Op], check_final_keys: bool)
where
    M: ConcurrentMap<i64, u64> + CheckInvariants + QuiescentOrdered<i64>,
{
    let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                let absent = !oracle.contains_key(&k);
                if absent {
                    oracle.insert(k, k as u64);
                }
                assert_eq!(map.insert(k, k as u64), absent, "insert({k}) step {i}");
            }
            Op::Remove(k) => {
                assert_eq!(map.remove(&k), oracle.remove(&k).is_some(), "remove({k}) step {i}");
            }
            Op::Contains(k) => {
                assert_eq!(map.contains(&k), oracle.contains_key(&k), "contains({k}) step {i}");
            }
        }
    }
    if check_final_keys {
        assert_eq!(map.keys_in_order(), oracle.keys().copied().collect::<Vec<_>>());
    }
    map.check_invariants();
}

macro_rules! oracle_suite {
    ($name:ident, $make:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(32))]
                #[test]
                fn matches_btreemap(ops in ops(24)) {
                    let m = $make;
                    run_oracle(&m, &ops, true);
                }

                #[test]
                fn matches_btreemap_wide(ops in ops(2_000)) {
                    let m = $make;
                    run_oracle(&m, &ops, true);
                }
            }
        }
    };
}

oracle_suite!(bcco, BccoTreeMap::<i64, u64>::new());
oracle_suite!(cf, CfTreeMap::<i64, u64>::new());
oracle_suite!(chromatic, ChromaticTreeMap::<i64, u64>::new());
oracle_suite!(efrb, EfrbTreeMap::<i64, u64>::new());
oracle_suite!(nm, NmTreeMap::<i64, u64>::new());
oracle_suite!(skiplist, SkipListMap::<i64, u64>::new());
oracle_suite!(coarse, CoarseAvlMap::<i64, u64>::new());

/// Skew-shaped deterministic sequences that hit each structure's rebalance
/// or maintenance machinery hard.
#[test]
fn adversarial_shapes() {
    fn run<M>(m: M)
    where
        M: ConcurrentMap<i64, u64> + CheckInvariants + QuiescentOrdered<i64>,
    {
        // Ascending.
        let asc: Vec<Op> = (0..600).map(Op::Insert).collect();
        run_oracle(&m, &asc, true);
        // Descending removals (peels the edge repeatedly).
        let desc: Vec<Op> = (0..600).rev().map(Op::Remove).collect();
        run_oracle_continue(&m, &desc);
        // Zig-zag.
        let mut zig = Vec::new();
        for i in 0..300 {
            zig.push(Op::Insert(i));
            zig.push(Op::Insert(1_000 - i));
        }
        run_oracle_continue(&m, &zig);
        m.check_invariants();
    }
    // Continue-from-current-state variant (no fresh oracle).
    fn run_oracle_continue<M>(m: &M, ops: &[Op])
    where
        M: ConcurrentMap<i64, u64>,
    {
        for op in ops {
            match *op {
                Op::Insert(k) => {
                    let _ = m.insert(k, k as u64);
                }
                Op::Remove(k) => {
                    let _ = m.remove(&k);
                }
                Op::Contains(k) => {
                    let _ = m.contains(&k);
                }
            }
        }
    }
    run(BccoTreeMap::<i64, u64>::new());
    run(CfTreeMap::<i64, u64>::new());
    run(ChromaticTreeMap::<i64, u64>::new());
    run(EfrbTreeMap::<i64, u64>::new());
    run(NmTreeMap::<i64, u64>::new());
    run(SkipListMap::<i64, u64>::new());
}
