//! Soundness self-test for the linearizability checker: crafted
//! non-linearizable histories must be rejected, and near-identical valid
//! variants accepted — guarding against a checker that silently accepts
//! everything (the failure mode that would void the whole validation layer).

use lo_check::lin::{is_linearizable, CompletedOp, LinOp};

fn op(op: LinOp, key: u8, result: bool, invoke: u64, response: u64) -> CompletedOp {
    CompletedOp { op, key, result, invoke, response }
}

#[test]
fn lost_update_is_rejected() {
    // Two non-overlapping successful inserts of the same key with no remove
    // in between: the second insert cannot have returned true.
    let h = [
        op(LinOp::Insert, 3, true, 0, 1),
        op(LinOp::Insert, 3, true, 2, 3),
    ];
    assert!(!is_linearizable(&h, 0));
    // Fixing the second result makes it valid.
    let h_ok = [
        op(LinOp::Insert, 3, true, 0, 1),
        op(LinOp::Insert, 3, false, 2, 3),
    ];
    assert!(is_linearizable(&h_ok, 0));
}

#[test]
fn stale_read_is_rejected() {
    // remove(5) completes, then a later contains(5) still sees it: stale.
    let h = [
        op(LinOp::Insert, 5, true, 0, 1),
        op(LinOp::Remove, 5, true, 2, 3),
        op(LinOp::Contains, 5, true, 4, 5),
    ];
    assert!(!is_linearizable(&h, 0));
}

#[test]
fn value_out_of_thin_air_is_rejected() {
    // contains(9) = true though 9 was never inserted.
    let h = [op(LinOp::Contains, 9, true, 0, 1)];
    assert!(!is_linearizable(&h, 0));
    assert!(is_linearizable(&h, 1 << 9));
}

#[test]
fn overlapping_window_is_honoured_exactly() {
    // insert(2) overlaps contains(2): either answer is fine while the
    // window is open…
    let open = [
        op(LinOp::Insert, 2, true, 0, 3),
        op(LinOp::Contains, 2, false, 1, 2),
    ];
    assert!(is_linearizable(&open, 0));
    // …but once the insert has responded before the contains is invoked,
    // only true is acceptable.
    let closed = [
        op(LinOp::Insert, 2, true, 0, 1),
        op(LinOp::Contains, 2, false, 2, 3),
    ];
    assert!(!is_linearizable(&closed, 0));
}

#[test]
fn three_thread_interleaving_rejected() {
    // Threads: A inserts 1 (t0–t1), B removes 1 (t2–t5), C reads 1 twice,
    // first false (t3–t4, inside B's window — fine alone) then true
    // (t6–t7, strictly after the remove responded — contradiction).
    let h = [
        op(LinOp::Insert, 1, true, 0, 1),
        op(LinOp::Remove, 1, true, 2, 5),
        op(LinOp::Contains, 1, false, 3, 4),
        op(LinOp::Contains, 1, true, 6, 7),
    ];
    assert!(!is_linearizable(&h, 0));
    // Swap the two read results and the history becomes valid.
    let h_ok = [
        op(LinOp::Insert, 1, true, 0, 1),
        op(LinOp::Remove, 1, true, 2, 5),
        op(LinOp::Contains, 1, true, 3, 4),
        op(LinOp::Contains, 1, false, 6, 7),
    ];
    assert!(is_linearizable(&h_ok, 0));
}
