//! Seeded-interleaving regression models for the optimistic write path
//! (ISSUE 8, DESIGN.md §17), exhaustively explored by the [`lo_check::mc`]
//! explorer.
//!
//! Two races are modeled, each in two variants: with the protocol's defense
//! ON every schedule must pass, and with it OFF the explorer must *exhibit*
//! the bug — proving the model has teeth and the defense is load-bearing.
//!
//! 1. **insert-vs-remove version validation**: an optimistic inserter
//!    snapshots the pred's succ window at version `v1`, a remover then
//!    marks the pred under its succ lock (odd/even seqlock bumps via the
//!    versioned wrappers). The inserter's in-lock confirmation
//!    (`version == v1 + 1`) must force a restart; without it the new node
//!    links behind a logically removed pred and is lost.
//! 2. **rotation during validation**: a rotation relinks the snapshot's
//!    candidate attach point under *tree* locks only — invisible to succ
//!    locks — and issues the conservative parity-preserving `+2` bump
//!    (`Node::bump_version`, pinned in `[[version.bump_sites]]`). The bump
//!    must fail the inserter's in-lock confirmation; without it the insert
//!    commits against a stale physical snapshot.
//!
//! The models mirror `update.rs` exactly at the protocol level: reads at
//! even versions, `try_lock` + bump to odd, confirm `v1 + 1` inside the
//! window, unlock + bump to even, restart on mismatch. The rotation is a
//! single atomic action (relink + bump): the sub-window between the two is
//! defended by the tree-lock revalidation in `insert_to_tree`, which is
//! out of scope for the succ-window model.

use lo_check::mc::{explore, Step, ThreadFn};

// --- Model 1: insert vs remove ---------------------------------------------

/// Succ window of one pred node `p`: its seqlock word, succ lock, logical
/// mark, and what the inserter ended up doing.
#[derive(Default)]
struct WindowState {
    version: u32,
    succ_locked: bool,
    marked: bool,
    /// New node linked behind `p`.
    linked: bool,
    /// Inserter observed the mark and routed to the blocking fallback.
    gave_up: bool,
}

/// The remover: lock `p.succLock` (odd bump), mark + splice, unlock (even
/// bump) — the blocking side of the protocol, which always uses the
/// versioned wrappers.
fn remover() -> ThreadFn<WindowState> {
    let mut pc = 0;
    Box::new(move |s: &mut WindowState| match pc {
        0 => {
            if s.succ_locked {
                return Step::Blocked;
            }
            s.succ_locked = true;
            s.version += 1;
            pc = 1;
            Step::Ready
        }
        1 => {
            s.marked = true;
            pc = 2;
            Step::Ready
        }
        2 => {
            s.succ_locked = false;
            s.version += 1;
            pc = 3;
            Step::Done
        }
        _ => Step::Done,
    })
}

/// The optimistic inserter. `confirm` gates the in-lock version check —
/// the defense under test.
fn inserter(confirm: bool) -> ThreadFn<WindowState> {
    let mut pc = 0;
    let mut v1 = 0u32;
    Box::new(move |s: &mut WindowState| match pc {
        // read_succ_window: snapshot at an even version.
        0 => {
            if !s.version.is_multiple_of(2) {
                return Step::Blocked; // writer active: wait for the bump
            }
            v1 = s.version;
            pc = 1;
            Step::Ready
        }
        // Window reads + the v2 == v1 re-check.
        1 => {
            let saw_marked = s.marked;
            if s.version != v1 {
                pc = 0; // torn read: validation restart
            } else if saw_marked {
                s.gave_up = true; // valid window, pred dead: fallback
                pc = 4;
                return Step::Done;
            } else {
                pc = 2;
            }
            Step::Ready
        }
        // lock_window: try_lock + odd bump.
        2 => {
            if s.succ_locked {
                return Step::Blocked;
            }
            s.succ_locked = true;
            s.version += 1;
            pc = 3;
            Step::Ready
        }
        // In-lock confirmation, then the link flip.
        3 => {
            if confirm && s.version != v1 + 1 {
                s.succ_locked = false;
                s.version += 1;
                pc = 0; // snapshot went stale under us: restart
                return Step::Ready;
            }
            if s.marked {
                return Step::Fail("insert linked behind a removed pred".into());
            }
            s.linked = true;
            s.succ_locked = false;
            s.version += 1;
            pc = 4;
            Step::Done
        }
        _ => Step::Done,
    })
}

#[test]
fn insert_vs_remove_validation_all_interleavings() {
    let report = explore(
        &mut || (WindowState::default(), vec![remover(), inserter(true)]),
        &|s: &WindowState| {
            if !s.linked && !s.gave_up {
                return Err("inserter finished without linking or falling back".into());
            }
            if !s.version.is_multiple_of(2) {
                return Err(format!("version left odd at quiescence: {}", s.version));
            }
            Ok(())
        },
        1_000_000,
    )
    .expect("the confirmed protocol must survive every interleaving");
    assert!(report.complete, "schedule space must be fully explored");
    assert!(report.schedules > 1, "the race window must produce real branching");
}

#[test]
fn insert_vs_remove_without_confirmation_is_caught() {
    let err = explore(
        &mut || (WindowState::default(), vec![remover(), inserter(false)]),
        &|_| Ok(()),
        1_000_000,
    )
    .expect_err("dropping the in-lock version check must admit the lost insert");
    assert!(err.contains("removed pred"), "unexpected failure: {err}");
}

// --- Model 2: rotation during validation ------------------------------------

/// The snapshot's candidate attach point `n`: its seqlock word, succ lock,
/// and which physical slot it currently occupies (rotations move it).
#[derive(Default)]
struct RotState {
    version: u32,
    succ_locked: bool,
    /// 0 before the rotation, 1 after.
    slot: u32,
    committed: bool,
}

/// The rotator: relinks `n` under tree locks only (no succ-lock interplay)
/// and — when `bump` is on — issues the conservative parity-preserving +2.
fn rotator(bump: bool) -> ThreadFn<RotState> {
    let mut pc = 0;
    Box::new(move |s: &mut RotState| match pc {
        0 => {
            s.slot = 1;
            if bump {
                s.version += 2;
            }
            pc = 1;
            Step::Done
        }
        _ => Step::Done,
    })
}

/// An optimistic writer whose snapshot includes `n`'s physical slot. The
/// in-lock confirmation is always on here; the defense under test is the
/// rotator's bump.
fn slot_writer() -> ThreadFn<RotState> {
    let mut pc = 0;
    let mut v1 = 0u32;
    let mut slot_seen = 0u32;
    Box::new(move |s: &mut RotState| match pc {
        0 => {
            if !s.version.is_multiple_of(2) {
                return Step::Blocked;
            }
            v1 = s.version;
            slot_seen = s.slot;
            pc = 1;
            Step::Ready
        }
        1 => {
            if s.succ_locked {
                return Step::Blocked;
            }
            s.succ_locked = true;
            s.version += 1;
            pc = 2;
            Step::Ready
        }
        2 => {
            if s.version != v1 + 1 {
                s.succ_locked = false;
                s.version += 1;
                pc = 0; // the rotation's bump landed: re-snapshot
                return Step::Ready;
            }
            if slot_seen != s.slot {
                return Step::Fail("commit against a stale physical snapshot".into());
            }
            s.committed = true;
            s.succ_locked = false;
            s.version += 1;
            pc = 3;
            Step::Done
        }
        _ => Step::Done,
    })
}

#[test]
fn rotation_bump_fails_validation_all_interleavings() {
    let report = explore(
        &mut || (RotState::default(), vec![rotator(true), slot_writer()]),
        &|s: &RotState| {
            if !s.committed {
                return Err("writer never committed".into());
            }
            if s.slot != 1 {
                return Err("rotation lost".into());
            }
            Ok(())
        },
        1_000_000,
    )
    .expect("the +2 relink bump must force a restart in every interleaving");
    assert!(report.complete, "schedule space must be fully explored");
    assert!(report.schedules > 1, "the race window must produce real branching");
}

#[test]
fn rotation_without_bump_is_caught() {
    let err = explore(
        &mut || (RotState::default(), vec![rotator(false), slot_writer()]),
        &|_| Ok(()),
        1_000_000,
    )
    .expect_err("an unbumped relink must let a stale snapshot commit");
    assert!(err.contains("stale physical snapshot"), "unexpected failure: {err}");
}
