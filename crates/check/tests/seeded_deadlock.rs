//! Seeded-deadlock self-test: a deliberately mis-ordered AB/BA acquisition
//! pattern (the classic two-lock deadlock) must be flagged by the ledger's
//! acquired-before graph, while the same locks taken in a consistent order
//! must not be.

#![cfg(feature = "lockdep")]
// The serialization gate for the process-global ledger is a plain std mutex,
// not a tree-protocol lock (see clippy.toml).
#![allow(clippy::disallowed_types)]

use lo_check::lockdep::{
    fresh_lock_id, on_acquire_attempt, on_acquired, on_release, set_thread_collect,
    take_violations, AcquireHow, LockClass, Rank, ViolationKind,
};

/// The ledger is process-global; serialize tests within this binary.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn acquire(id: u64) {
    on_acquire_attempt(id, LockClass::Other, Rank::Opaque, AcquireHow::Block);
    on_acquired(id, LockClass::Other, Rank::Opaque, AcquireHow::Block);
}

/// Runs `f` on two worker threads (sequentially — the graph accumulates
/// ordering facts across threads regardless of timing, which is exactly the
/// lockdep property: the deadlock need not actually fire to be caught).
fn on_two_threads(f: impl Fn(usize) + Send + Sync) {
    std::thread::scope(|s| {
        for t in 0..2 {
            let f = &f;
            s.spawn(move || {
                set_thread_collect(true);
                f(t);
            })
            .join()
            .expect("worker must not panic in collect mode");
        }
    });
}

#[test]
fn mis_ordered_acquisition_is_flagged() {
    let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let _ = take_violations();
    let (a, b) = (fresh_lock_id(), fresh_lock_id());
    on_two_threads(|t| {
        // Thread 0 takes A then B; thread 1 takes B then A.
        let (first, second) = if t == 0 { (a, b) } else { (b, a) };
        acquire(first);
        acquire(second);
        on_release(second);
        on_release(first);
    });
    let kinds: Vec<ViolationKind> = take_violations().iter().map(|v| v.kind).collect();
    assert!(
        kinds.contains(&ViolationKind::DeadlockCycle),
        "AB/BA inversion must close a cycle in the acquired-before graph, got {kinds:?}"
    );
}

#[test]
fn consistent_order_is_not_flagged() {
    let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let _ = take_violations();
    let (a, b) = (fresh_lock_id(), fresh_lock_id());
    on_two_threads(|_| {
        // Both threads agree: A before B. No cycle, no violation.
        acquire(a);
        acquire(b);
        on_release(b);
        on_release(a);
    });
    let v = take_violations();
    assert!(v.is_empty(), "consistent order must stay clean, got {v:?}");
}

#[test]
fn three_lock_transitive_cycle_is_flagged() {
    let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let _ = take_violations();
    let (a, b, c) = (fresh_lock_id(), fresh_lock_id(), fresh_lock_id());
    // A→B, B→C on two clean threads, then C→A closes the triangle even
    // though no pair of locks was ever directly inverted.
    for (first, second) in [(a, b), (b, c)] {
        on_two_threads(move |t| {
            if t == 0 {
                acquire(first);
                acquire(second);
                on_release(second);
                on_release(first);
            }
        });
    }
    assert!(take_violations().is_empty(), "chain edges alone are clean");
    on_two_threads(|t| {
        if t == 0 {
            acquire(c);
            acquire(a);
            on_release(a);
            on_release(c);
        }
    });
    let kinds: Vec<ViolationKind> = take_violations().iter().map(|v| v.kind).collect();
    assert!(
        kinds.contains(&ViolationKind::DeadlockCycle),
        "transitive A→B→C→A cycle must be flagged, got {kinds:?}"
    );
}
