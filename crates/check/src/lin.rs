//! A small-history linearizability checker for concurrent sets
//! (Wing–Gong search with memoization on (linearized-set, state) pairs).
//!
//! Histories are recorded with a global atomic timestamp: each completed
//! operation carries an invocation stamp and a response stamp; operation A
//! *happens before* B iff `A.response < B.invoke`. The checker searches for
//! a total order consistent with happens-before in which every operation's
//! result matches sequential set semantics.
//!
//! Designed for *small* histories (≤ ~24 operations, key universe ≤ 64):
//! the point is adversarial validation of tiny hot interleavings, thousands
//! of times, not full-run verification (the stress harness's net-balance
//! accounting covers long runs). This module is the canonical home of the
//! checker; `lo-validate` re-exports it for its stress harness.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Set operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinOp {
    /// insert(k) → bool (true = was absent)
    Insert,
    /// remove(k) → bool (true = was present)
    Remove,
    /// contains(k) → bool
    Contains,
}

/// One completed operation.
#[derive(Clone, Copy, Debug)]
pub struct CompletedOp {
    /// Which operation.
    pub op: LinOp,
    /// The key (must be `< 64` for the bitmask state).
    pub key: u8,
    /// The returned boolean.
    pub result: bool,
    /// Global invocation stamp.
    pub invoke: u64,
    /// Global response stamp.
    pub response: u64,
}

/// Concurrent history recorder: wrap each operation call with
/// [`Recorder::stamp`]s and push the completed op.
#[derive(Debug)]
pub struct Recorder {
    clock: AtomicU64,
}

impl Recorder {
    /// Fresh recorder with clock 0.
    pub fn new() -> Self {
        Self { clock: AtomicU64::new(0) }
    }

    /// Draws the next timestamp.
    pub fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Runs `f`, stamping around it, and builds the completed record.
    pub fn record(&self, op: LinOp, key: u8, f: impl FnOnce() -> bool) -> CompletedOp {
        let invoke = self.stamp();
        let result = f();
        let response = self.stamp();
        CompletedOp { op, key, result, invoke, response }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Checks whether `history` (completed ops only) is linearizable w.r.t. set
/// semantics starting from `initial` (bitmask of present keys).
///
/// Panics if the history has more than 28 operations (search-space guard).
pub fn is_linearizable(history: &[CompletedOp], initial: u64) -> bool {
    assert!(history.len() <= 28, "history too large for the exhaustive checker");
    let n = history.len();
    if n == 0 {
        return true;
    }
    // DFS over (taken-mask, state); memoize visited (mask, state) pairs.
    // Classic pruning: op i may linearize next only if no *untaken* op
    // responded before i was invoked (otherwise that op must come first).
    let mut memo: HashSet<(u32, u64)> = HashSet::new();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    fn apply(op: &CompletedOp, state: u64) -> Option<u64> {
        let bit = 1u64 << op.key;
        let present = state & bit != 0;
        match op.op {
            LinOp::Contains => (op.result == present).then_some(state),
            LinOp::Insert => {
                if op.result {
                    (!present).then_some(state | bit)
                } else {
                    present.then_some(state)
                }
            }
            LinOp::Remove => {
                if op.result {
                    present.then_some(state & !bit)
                } else {
                    (!present).then_some(state)
                }
            }
        }
    }

    fn dfs(
        history: &[CompletedOp],
        taken: u32,
        state: u64,
        full: u32,
        memo: &mut HashSet<(u32, u64)>,
    ) -> bool {
        if taken == full {
            return true;
        }
        if !memo.insert((taken, state)) {
            return false;
        }
        // Earliest response among untaken ops: candidates must have been
        // invoked before it (they overlap or precede that op).
        let mut min_resp = u64::MAX;
        for (i, op) in history.iter().enumerate() {
            if taken & (1 << i) == 0 {
                min_resp = min_resp.min(op.response);
            }
        }
        for (i, op) in history.iter().enumerate() {
            if taken & (1 << i) != 0 || op.invoke > min_resp {
                continue;
            }
            if let Some(next) = apply(op, state) {
                if dfs(history, taken | (1 << i), next, full, memo) {
                    return true;
                }
            }
        }
        false
    }

    dfs(history, 0, initial, full, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(op: LinOp, key: u8, result: bool, invoke: u64, response: u64) -> CompletedOp {
        CompletedOp { op, key, result, invoke, response }
    }

    #[test]
    fn sequential_valid() {
        let h = [
            op(LinOp::Insert, 1, true, 0, 1),
            op(LinOp::Contains, 1, true, 2, 3),
            op(LinOp::Remove, 1, true, 4, 5),
            op(LinOp::Contains, 1, false, 6, 7),
        ];
        assert!(is_linearizable(&h, 0));
    }

    #[test]
    fn sequential_invalid() {
        // contains(1) = false strictly after a successful insert with no
        // remove anywhere: not linearizable.
        let h = [
            op(LinOp::Insert, 1, true, 0, 1),
            op(LinOp::Contains, 1, false, 2, 3),
        ];
        assert!(!is_linearizable(&h, 0));
    }

    #[test]
    fn overlap_allows_reordering() {
        // Same shape, but the contains overlaps the insert: fine.
        let h = [
            op(LinOp::Insert, 1, true, 0, 3),
            op(LinOp::Contains, 1, false, 1, 2),
        ];
        assert!(is_linearizable(&h, 0));
    }

    #[test]
    fn figure1_scenario_would_be_caught() {
        // The paper's Figure 1 bug: contains(7) returns false even though 7
        // was in the set the whole time and only key 3 was removed.
        let h = [
            op(LinOp::Remove, 3, true, 1, 4),
            op(LinOp::Contains, 7, false, 2, 3),
        ];
        let initial = (1 << 1) | (1 << 3) | (1 << 7) | (1 << 9);
        assert!(!is_linearizable(&h, initial), "Figure 1 anomaly must be rejected");
        // The correct answer is accepted.
        let h_ok = [
            op(LinOp::Remove, 3, true, 1, 4),
            op(LinOp::Contains, 7, true, 2, 3),
        ];
        assert!(is_linearizable(&h_ok, initial));
    }

    #[test]
    fn duplicate_insert_results() {
        // Two overlapping inserts of the same key: exactly one may win.
        let both_win = [
            op(LinOp::Insert, 5, true, 0, 2),
            op(LinOp::Insert, 5, true, 1, 3),
        ];
        assert!(!is_linearizable(&both_win, 0));
        let one_wins = [
            op(LinOp::Insert, 5, true, 0, 2),
            op(LinOp::Insert, 5, false, 1, 3),
        ];
        assert!(is_linearizable(&one_wins, 0));
    }

    #[test]
    fn initial_state_respected() {
        let h = [op(LinOp::Remove, 9, true, 0, 1)];
        assert!(!is_linearizable(&h, 0));
        assert!(is_linearizable(&h, 1 << 9));
    }

    #[test]
    fn empty_history() {
        assert!(is_linearizable(&[], 0));
    }

    #[test]
    fn recorder_orders_stamps() {
        let r = Recorder::new();
        let a = r.record(LinOp::Insert, 1, || true);
        let b = r.record(LinOp::Contains, 1, || true);
        assert!(a.invoke < a.response);
        assert!(a.response < b.invoke);
        assert!(is_linearizable(&[a, b], 0));
    }
}
