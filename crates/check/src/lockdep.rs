//! Lockdep-style runtime lock-ordering ledger.
//!
//! The paper's deadlock-freedom argument (§5.1) rests on three rules:
//!
//! 1. **succ-locks before tree-locks** — an operation acquires all of its
//!    ordering-layout locks before its first physical-layout lock and never
//!    goes back;
//! 2. **succ-locks in ascending key order** — when an operation holds more
//!    than one `succLock`, it acquired them smallest key first;
//! 3. **tree-locks bottom-up** — blocking `treeLock` acquisitions only travel
//!    from a locked node to its parent (or anchor a fresh chain while no
//!    tree-lock is held); every *descending* acquisition must be a `try_lock`
//!    that restarts on failure, so it can never wait.
//!
//! This module turns those rules from prose into machine checks. Lock call
//! sites report every acquisition and release; the ledger keeps a per-thread
//! held-set and asserts the rules at acquire time, and additionally folds
//! blocking acquisitions into a global *acquired-before* graph whose cycles
//! are reported as potential deadlocks (the classic lockdep construction:
//! if thread 1 ever takes A then B, and thread 2 ever takes B then A, the
//! cycle A→B→A is flagged even if the actual deadlock never fired).
//!
//! ## Scope and honesty
//! * `try_lock` acquisitions are recorded in the held-set (so double-acquire
//!   and release-while-unheld are still caught) but are exempt from the
//!   ordering rules and the graph: a `try_lock` never waits, so it cannot
//!   close a wait-for cycle. This mirrors the kernel lockdep treatment.
//! * *Upward* blocking acquisitions ([`AcquireHow::BlockUpward`], used by
//!   `lockParent`-style hand-over-hand walks) are checked against rule 3 but
//!   excluded from the cycle graph: rotations legitimately reorder the
//!   parent relation over time, so instance-level edges accumulated across a
//!   whole run would contain stale inversions that were never concurrently
//!   live. The hand-over-hand walk is deadlock-free because all walkers
//!   travel rootward at any instant; the ledger enforces exactly that
//!   discipline instead of graphing it.
//! * Everything is gated on the `lockdep` cargo feature. Without it, every
//!   hook is an empty `#[inline(always)]` function and the types remain so
//!   call sites compile unchanged (the `metrics` feature pattern).
//!
//! ## Violation handling
//! Violations panic by default (so any test that drives a tree under
//! `--features lockdep` doubles as a protocol check). A thread can switch
//! itself to collect mode with [`set_thread_collect`] — used by the seeded
//! self-tests, which *want* to observe violations — and drain them with
//! [`take_violations`].

/// Whether this build carries the live ledger (compile-time constant).
pub const ENABLED: bool = cfg!(feature = "lockdep");

/// The lock classes of the §5.1 discipline, plus an escape hatch for
/// self-tests and non-tree locks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockClass {
    /// An ordering-layout interval lock (`succLock`).
    Succ,
    /// A physical-layout lock (`treeLock`).
    Tree,
    /// Any other lock: exempt from rules 1–3, still graphed and held-tracked.
    Other,
}

/// Total-order rank of a lock's key, used to check rule 2.
///
/// Keys that cannot be mapped into `i128` are [`Rank::Opaque`]; ordering
/// checks involving an opaque rank are skipped (rules 1 and 3 and the cycle
/// graph still apply).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rank {
    /// The `−∞` sentinel.
    NegInf,
    /// A concrete key, order-embedded into `i128`.
    Key(i128),
    /// Unrankable key type; rule-2 comparisons are skipped.
    Opaque,
    /// The `+∞` sentinel.
    PosInf,
}

impl Rank {
    /// Compares two ranks when both are concrete; `None` if either is
    /// [`Rank::Opaque`].
    pub fn cmp_concrete(self, other: Rank) -> Option<std::cmp::Ordering> {
        let level = |r: Rank| match r {
            Rank::NegInf => 0u8,
            Rank::Key(_) => 1,
            Rank::Opaque => 2,
            Rank::PosInf => 3,
        };
        match (self, other) {
            (Rank::Opaque, _) | (_, Rank::Opaque) => None,
            (Rank::Key(a), Rank::Key(b)) => Some(a.cmp(&b)),
            (a, b) => Some(level(a).cmp(&level(b))),
        }
    }
}

/// Maps a key of any `'static + Copy` type to a [`Rank`] by trying the
/// standard integer types. Unknown types rank [`Rank::Opaque`].
pub fn rank_of_key<K: std::any::Any + Copy>(key: &K) -> Rank {
    let any = key as &dyn std::any::Any;
    macro_rules! try_int {
        ($($t:ty),*) => {
            $(if let Some(v) = any.downcast_ref::<$t>() {
                return Rank::Key(*v as i128);
            })*
        };
    }
    try_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);
    if let Some(c) = any.downcast_ref::<char>() {
        return Rank::Key(*c as i128);
    }
    Rank::Opaque
}

/// How an acquisition waits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireHow {
    /// Blocking acquire anchoring a fresh chain (no same-class constraint
    /// may be outstanding; see rule 3 for tree locks).
    Block,
    /// Blocking acquire travelling from a held lock to its parent
    /// (hand-over-hand rootward walk; permitted by rule 3).
    BlockUpward,
    /// Non-blocking `try_lock`; exempt from ordering rules and the graph.
    Try,
}

/// The rule (or meta-check) a violation broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Rule 1: blocking succ-lock acquire while holding a tree lock.
    SuccAfterTree,
    /// Rule 2: blocking succ-lock acquire out of ascending key order.
    SuccOrder,
    /// Rule 3: blocking non-upward tree-lock acquire while holding a tree
    /// lock (descending acquisitions must be `try_lock`).
    TreeBlockingNotAnchor,
    /// The thread already holds this very lock.
    Reentrant,
    /// Release of a lock the thread does not hold.
    ReleaseUnheld,
    /// The global acquired-before graph closed a cycle.
    DeadlockCycle,
}

/// One recorded rule violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which rule broke.
    pub kind: ViolationKind,
    /// Human-readable diagnostic.
    pub message: String,
}

/// Draws a fresh process-unique lock id (compile-time 0 when the feature is
/// off; ids are only meaningful to the ledger).
#[inline(always)]
pub fn fresh_lock_id() -> u64 {
    #[cfg(feature = "lockdep")]
    {
        imp::fresh_lock_id()
    }
    #[cfg(not(feature = "lockdep"))]
    {
        0
    }
}

/// Hook: call immediately *before* a blocking raw acquire. Asserts the
/// ordering rules and feeds the acquired-before graph. Never call for
/// `try_lock` attempts.
#[inline(always)]
pub fn on_acquire_attempt(id: u64, class: LockClass, rank: Rank, how: AcquireHow) {
    #[cfg(feature = "lockdep")]
    {
        imp::on_acquire_attempt(id, class, rank, how);
    }
    #[cfg(not(feature = "lockdep"))]
    {
        let _ = (id, class, rank, how);
    }
}

/// Hook: call immediately after a successful acquire (blocking or try).
/// Records the lock in the thread's held-set.
#[inline(always)]
pub fn on_acquired(id: u64, class: LockClass, rank: Rank, how: AcquireHow) {
    #[cfg(feature = "lockdep")]
    {
        imp::on_acquired(id, class, rank, how);
    }
    #[cfg(not(feature = "lockdep"))]
    {
        let _ = (id, class, rank, how);
    }
}

/// Hook: call after the raw release. Removes the lock from the held-set.
#[inline(always)]
pub fn on_release(id: u64) {
    #[cfg(feature = "lockdep")]
    {
        imp::on_release(id);
    }
    #[cfg(not(feature = "lockdep"))]
    {
        let _ = id;
    }
}

/// Number of locks the current thread holds according to the ledger
/// (always 0 with the feature off).
#[inline(always)]
pub fn held_count() -> usize {
    #[cfg(feature = "lockdep")]
    {
        imp::held_count()
    }
    #[cfg(not(feature = "lockdep"))]
    {
        0
    }
}

/// Switches the *current thread* between panic-on-violation (default) and
/// collect mode. In collect mode violations caused by this thread's calls
/// are recorded and retrievable with [`take_violations`] instead of
/// panicking. No-op with the feature off.
#[inline(always)]
pub fn set_thread_collect(collect: bool) {
    #[cfg(feature = "lockdep")]
    {
        imp::set_thread_collect(collect);
    }
    #[cfg(not(feature = "lockdep"))]
    {
        let _ = collect;
    }
}

/// Drains and returns every violation recorded so far (process-global).
pub fn take_violations() -> Vec<Violation> {
    #[cfg(feature = "lockdep")]
    {
        imp::take_violations()
    }
    #[cfg(not(feature = "lockdep"))]
    {
        Vec::new()
    }
}

#[cfg(feature = "lockdep")]
// The ledger's graph/violation stores are the instrumentation itself, guarded
// by plain std mutexes outside the tree protocol (see clippy.toml).
#[allow(clippy::disallowed_types)]
mod imp {
    use super::*;
    use crate::sched;
    use std::cell::{Cell, RefCell};
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[derive(Clone, Copy)]
    struct Held {
        id: u64,
        class: LockClass,
        rank: Rank,
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    /// Acquired-before edges among blocking, non-upward acquisitions.
    static GRAPH: Mutex<BTreeMap<u64, BTreeSet<u64>>> = Mutex::new(BTreeMap::new());
    static VIOLATIONS: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static COLLECT: Cell<bool> = const { Cell::new(false) };
    }

    pub(super) fn fresh_lock_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    pub(super) fn set_thread_collect(collect: bool) {
        COLLECT.with(|c| c.set(collect));
    }

    pub(super) fn take_violations() -> Vec<Violation> {
        std::mem::take(&mut *VIOLATIONS.lock().unwrap())
    }

    pub(super) fn held_count() -> usize {
        HELD.with(|h| h.borrow().len())
    }

    fn report(kind: ViolationKind, message: String) {
        let collect = COLLECT.with(|c| c.get());
        VIOLATIONS.lock().unwrap().push(Violation { kind, message: message.clone() });
        if !collect {
            panic!("lockdep {kind:?}: {message}");
        }
    }

    /// DFS: is `to` reachable from `from` in the acquired-before graph?
    fn reachable(graph: &BTreeMap<u64, BTreeSet<u64>>, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = graph.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    pub(super) fn on_acquire_attempt(id: u64, class: LockClass, rank: Rank, how: AcquireHow) {
        debug_assert!(how != AcquireHow::Try, "attempt hook is for blocking acquires");
        sched::pause_point();
        HELD.with(|held| {
            let held = held.borrow();
            for h in held.iter() {
                if h.id == id {
                    report(
                        ViolationKind::Reentrant,
                        format!("blocking re-acquire of already-held lock #{id} ({class:?})"),
                    );
                    return;
                }
            }
            match class {
                LockClass::Succ => {
                    if let Some(t) = held.iter().find(|h| h.class == LockClass::Tree) {
                        report(
                            ViolationKind::SuccAfterTree,
                            format!(
                                "succ-lock #{id} acquired while holding tree-lock #{} \
                                 (rule 1: succ-locks before tree-locks)",
                                t.id
                            ),
                        );
                    }
                    for h in held.iter().filter(|h| h.class == LockClass::Succ) {
                        if let Some(ord) = rank.cmp_concrete(h.rank) {
                            if ord != std::cmp::Ordering::Greater {
                                report(
                                    ViolationKind::SuccOrder,
                                    format!(
                                        "succ-lock #{id} (rank {rank:?}) acquired while \
                                         holding succ-lock #{} (rank {:?}) \
                                         (rule 2: ascending key order)",
                                        h.id, h.rank
                                    ),
                                );
                            }
                        }
                    }
                }
                LockClass::Tree => {
                    if how == AcquireHow::Block {
                        if let Some(t) = held.iter().find(|h| h.class == LockClass::Tree) {
                            report(
                                ViolationKind::TreeBlockingNotAnchor,
                                format!(
                                    "blocking tree-lock #{id} acquired while holding \
                                     tree-lock #{} outside the upward walk (rule 3: \
                                     descending acquisitions must try_lock)",
                                    t.id
                                ),
                            );
                        }
                    }
                }
                LockClass::Other => {}
            }
            // Acquired-before graph: edges held → new for plain blocking
            // acquires. Upward tree acquisitions are excluded (see module
            // docs); their discipline is rule 3.
            if how == AcquireHow::Block {
                let mut graph = GRAPH.lock().unwrap();
                for h in held.iter() {
                    graph.entry(h.id).or_default().insert(id);
                }
                if held.iter().any(|h| reachable(&graph, id, h.id)) {
                    // A path new → …held… exists while we also recorded
                    // held → new: the graph closed a cycle.
                    let involved: Vec<u64> = held.iter().map(|h| h.id).collect();
                    drop(graph);
                    report(
                        ViolationKind::DeadlockCycle,
                        format!(
                            "acquired-before cycle: lock #{id} is transitively \
                             acquired-before currently-held {involved:?} and is now \
                             being acquired after them (potential deadlock)"
                        ),
                    );
                }
            }
        });
    }

    pub(super) fn on_acquired(id: u64, class: LockClass, rank: Rank, how: AcquireHow) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if how == AcquireHow::Try && held.iter().any(|h| h.id == id) {
                report(
                    ViolationKind::Reentrant,
                    format!("try-re-acquire of already-held lock #{id} ({class:?})"),
                );
            }
            held.push(Held { id, class, rank });
        });
        sched::pause_point();
    }

    pub(super) fn on_release(id: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            match held.iter().rposition(|h| h.id == id) {
                Some(pos) => {
                    held.remove(pos);
                }
                None => report(
                    ViolationKind::ReleaseUnheld,
                    format!("release of lock #{id} which this thread does not hold"),
                ),
            }
        });
        sched::pause_point();
    }
}

#[cfg(all(test, feature = "lockdep"))]
#[allow(clippy::disallowed_types)] // test gate, not tree-protocol state
mod tests {
    use super::*;

    // The ledger is process-global; serialize the self-tests.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        set_thread_collect(true);
        let _ = take_violations();
        g
    }

    fn kinds(v: &[Violation]) -> Vec<ViolationKind> {
        v.iter().map(|v| v.kind).collect()
    }

    #[test]
    fn clean_protocol_sequence_passes() {
        let _g = locked();
        let (p_succ, s_succ, n_tree, parent_tree) =
            (fresh_lock_id(), fresh_lock_id(), fresh_lock_id(), fresh_lock_id());
        // insert/remove shape: succ locks ascending, tree anchor, upward.
        on_acquire_attempt(p_succ, LockClass::Succ, Rank::Key(1), AcquireHow::Block);
        on_acquired(p_succ, LockClass::Succ, Rank::Key(1), AcquireHow::Block);
        on_acquire_attempt(s_succ, LockClass::Succ, Rank::Key(5), AcquireHow::Block);
        on_acquired(s_succ, LockClass::Succ, Rank::Key(5), AcquireHow::Block);
        on_acquire_attempt(n_tree, LockClass::Tree, Rank::Key(5), AcquireHow::Block);
        on_acquired(n_tree, LockClass::Tree, Rank::Key(5), AcquireHow::Block);
        on_acquire_attempt(parent_tree, LockClass::Tree, Rank::Key(3), AcquireHow::BlockUpward);
        on_acquired(parent_tree, LockClass::Tree, Rank::Key(3), AcquireHow::BlockUpward);
        for id in [parent_tree, n_tree, s_succ, p_succ] {
            on_release(id);
        }
        assert_eq!(held_count(), 0);
        assert!(take_violations().is_empty(), "clean sequence must not be flagged");
        set_thread_collect(false);
    }

    #[test]
    fn succ_after_tree_flagged() {
        let _g = locked();
        let (t, s) = (fresh_lock_id(), fresh_lock_id());
        on_acquire_attempt(t, LockClass::Tree, Rank::Opaque, AcquireHow::Block);
        on_acquired(t, LockClass::Tree, Rank::Opaque, AcquireHow::Block);
        on_acquire_attempt(s, LockClass::Succ, Rank::Key(1), AcquireHow::Block);
        on_acquired(s, LockClass::Succ, Rank::Key(1), AcquireHow::Block);
        on_release(s);
        on_release(t);
        assert!(kinds(&take_violations()).contains(&ViolationKind::SuccAfterTree));
        set_thread_collect(false);
    }

    #[test]
    fn descending_succ_order_flagged() {
        let _g = locked();
        let (a, b) = (fresh_lock_id(), fresh_lock_id());
        on_acquire_attempt(a, LockClass::Succ, Rank::Key(9), AcquireHow::Block);
        on_acquired(a, LockClass::Succ, Rank::Key(9), AcquireHow::Block);
        on_acquire_attempt(b, LockClass::Succ, Rank::Key(2), AcquireHow::Block);
        on_acquired(b, LockClass::Succ, Rank::Key(2), AcquireHow::Block);
        on_release(b);
        on_release(a);
        assert!(kinds(&take_violations()).contains(&ViolationKind::SuccOrder));
        set_thread_collect(false);
    }

    #[test]
    fn blocking_descending_tree_flagged_but_try_is_exempt() {
        let _g = locked();
        let (a, b, c) = (fresh_lock_id(), fresh_lock_id(), fresh_lock_id());
        on_acquire_attempt(a, LockClass::Tree, Rank::Opaque, AcquireHow::Block);
        on_acquired(a, LockClass::Tree, Rank::Opaque, AcquireHow::Block);
        // Descending try_lock: allowed.
        on_acquired(b, LockClass::Tree, Rank::Opaque, AcquireHow::Try);
        // Descending blocking acquire: rule 3 violation.
        on_acquire_attempt(c, LockClass::Tree, Rank::Opaque, AcquireHow::Block);
        on_acquired(c, LockClass::Tree, Rank::Opaque, AcquireHow::Block);
        on_release(c);
        on_release(b);
        on_release(a);
        let k = kinds(&take_violations());
        assert!(k.contains(&ViolationKind::TreeBlockingNotAnchor));
        assert_eq!(
            k.iter().filter(|k| **k == ViolationKind::TreeBlockingNotAnchor).count(),
            1,
            "the try_lock must not be flagged"
        );
        set_thread_collect(false);
    }

    #[test]
    fn release_unheld_and_reentrant_flagged() {
        let _g = locked();
        let a = fresh_lock_id();
        on_release(a);
        on_acquired(a, LockClass::Other, Rank::Opaque, AcquireHow::Try);
        on_acquired(a, LockClass::Other, Rank::Opaque, AcquireHow::Try);
        on_release(a);
        on_release(a);
        let k = kinds(&take_violations());
        assert!(k.contains(&ViolationKind::ReleaseUnheld));
        assert!(k.contains(&ViolationKind::Reentrant));
        assert_eq!(held_count(), 0);
        set_thread_collect(false);
    }

    #[test]
    fn rank_of_key_integers() {
        assert_eq!(rank_of_key(&7i64), Rank::Key(7));
        assert_eq!(rank_of_key(&7u32), Rank::Key(7));
        assert_eq!(rank_of_key(&-3i8), Rank::Key(-3));
        assert_eq!(rank_of_key(&'a'), Rank::Key('a' as i128));
        assert_eq!(rank_of_key(&(1i64, 2i64)), Rank::Opaque);
    }
}
