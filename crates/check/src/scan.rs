//! Scan-coherence checking over recorded histories.
//!
//! A concurrent range scan is not an atomic snapshot: the cursor walks the
//! ordering chain while updaters run, so the returned set may mix states
//! from different instants. The contract it *does* make (and the one this
//! module checks) is per-key:
//!
//! 1. yields are strictly ascending and stay inside the requested window;
//! 2. every yielded key was **live at some instant** between the scan's
//!    invocation and response;
//! 3. every key that was **continuously live** across the whole scan window
//!    (and inside the key window) is yielded — a scan may miss keys in
//!    flux, never keys at rest.
//!
//! The checker consumes the same timestamped [`CompletedOp`] histories as
//! the WGL linearizability checker in [`crate::lin`], plus one
//! [`ScanObservation`] per recorded scan. Because an operation linearizes
//! at an unknown instant inside its `[invoke, response]` window, liveness
//! is decided conservatively: a yield is flagged only when the key was
//! **certainly dead** for the scan's entire window under *every* possible
//! linearization, and a miss only when the key was **certainly live**
//! throughout. Anything ambiguous passes — the checker produces no false
//! positives on linearizable histories.

use crate::lin::{CompletedOp, LinOp};

/// One recorded range scan: the requested window, the yields (in yield
/// order), and the logical-clock stamps taken around the whole scan with
/// the same [`crate::lin::Recorder`] as the surrounding operation history.
#[derive(Clone, Debug)]
pub struct ScanObservation {
    /// Inclusive lower end of the requested key window.
    pub lo: u8,
    /// Inclusive upper end of the requested key window.
    pub hi: u8,
    /// Keys the scan yielded, in yield order.
    pub keys: Vec<u8>,
    /// Timestamp drawn immediately before the scan started.
    pub invoke: u64,
    /// Timestamp drawn immediately after the scan returned.
    pub response: u64,
}

/// A violated scan-coherence rule. `scan` indexes into the slice passed to
/// [`check_scan_coherence`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanViolation {
    /// Yields were not strictly ascending.
    NotAscending {
        /// Offending scan.
        scan: usize,
    },
    /// A yield fell outside the requested `[lo, hi]` window.
    OutOfBounds {
        /// Offending scan.
        scan: usize,
        /// The stray key.
        key: u8,
    },
    /// A yielded key was dead for the scan's whole window under every
    /// possible linearization of the surrounding history.
    CertainlyDead {
        /// Offending scan.
        scan: usize,
        /// The phantom key.
        key: u8,
    },
    /// A key that was live across the scan's whole window (under every
    /// linearization) was not yielded.
    MissedLiveKey {
        /// Offending scan.
        scan: usize,
        /// The missed key.
        key: u8,
    },
}

impl std::fmt::Display for ScanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ScanViolation::NotAscending { scan } => {
                write!(f, "scan {scan}: yields not strictly ascending")
            }
            ScanViolation::OutOfBounds { scan, key } => {
                write!(f, "scan {scan}: yielded key {key} outside the requested window")
            }
            ScanViolation::CertainlyDead { scan, key } => {
                write!(f, "scan {scan}: yielded key {key}, dead for the scan's whole window")
            }
            ScanViolation::MissedLiveKey { scan, key } => {
                write!(f, "scan {scan}: missed key {key}, live for the scan's whole window")
            }
        }
    }
}

/// Checks every scan in `scans` against the operation history and the
/// initial membership mask (bit `k` = key `k` live at time zero). Returns
/// the first violation found, or `Ok(())`.
///
/// `history` must use the same logical clock as the scans (one shared
/// [`crate::lin::Recorder`]); keys are limited to `0..64` as in the WGL
/// checker.
pub fn check_scan_coherence(
    history: &[CompletedOp],
    scans: &[ScanObservation],
    initial: u64,
) -> Result<(), ScanViolation> {
    for (i, s) in scans.iter().enumerate() {
        if !s.keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(ScanViolation::NotAscending { scan: i });
        }
        if let Some(&k) = s.keys.iter().find(|&&k| k < s.lo || k > s.hi) {
            return Err(ScanViolation::OutOfBounds { scan: i, key: k });
        }
        for &k in &s.keys {
            if certainly_dead_throughout(history, initial, k, s.invoke, s.response) {
                return Err(ScanViolation::CertainlyDead { scan: i, key: k });
            }
        }
        for k in s.lo..=s.hi {
            if certainly_live_throughout(history, initial, k, s.invoke, s.response)
                && !s.keys.contains(&k)
            {
                return Err(ScanViolation::MissedLiveKey { scan: i, key: k });
            }
        }
    }
    Ok(())
}

/// Successful operations on `key` of the given kind.
fn successes(
    history: &[CompletedOp],
    key: u8,
    op: LinOp,
) -> impl Iterator<Item = &CompletedOp> {
    history.iter().filter(move |c| c.key == key && c.op == op && c.result)
}

/// True iff `key` cannot have been live at any instant of `[start, end]`:
/// it was never made live by `end` (not initial, and every successful
/// insert certainly linearizes after `end`), or some successful remove
/// certainly linearizes before `start` with every successful insert
/// certainly before that remove (so nothing can revive the key in time).
fn certainly_dead_throughout(
    history: &[CompletedOp],
    initial: u64,
    key: u8,
    start: u64,
    end: u64,
) -> bool {
    let initially_live = initial & (1u64 << key) != 0;
    let never_made_live =
        !initially_live && successes(history, key, LinOp::Insert).all(|i| i.invoke > end);
    if never_made_live {
        return true;
    }
    successes(history, key, LinOp::Remove).any(|r| {
        r.response < start
            && successes(history, key, LinOp::Insert).all(|i| i.response < r.invoke)
    })
}

/// True iff `key` must have been live at every instant of `[start, end]`:
/// liveness was certainly established before `start` (initial membership,
/// or a successful insert that certainly linearizes before `start`) and no
/// successful remove could possibly linearize by `end`.
fn certainly_live_throughout(
    history: &[CompletedOp],
    initial: u64,
    key: u8,
    start: u64,
    end: u64,
) -> bool {
    let initially_live = initial & (1u64 << key) != 0;
    let live_before = initially_live
        || successes(history, key, LinOp::Insert).any(|i| i.response < start);
    live_before && successes(history, key, LinOp::Remove).all(|r| r.invoke > end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(op: LinOp, key: u8, result: bool, invoke: u64, response: u64) -> CompletedOp {
        CompletedOp { op, key, result, invoke, response }
    }

    fn scan(lo: u8, hi: u8, keys: &[u8], invoke: u64, response: u64) -> ScanObservation {
        ScanObservation { lo, hi, keys: keys.to_vec(), invoke, response }
    }

    #[test]
    fn clean_quiescent_scan_passes() {
        let h = vec![op(LinOp::Insert, 3, true, 0, 1), op(LinOp::Insert, 5, true, 2, 3)];
        let s = [scan(0, 10, &[3, 5], 4, 5)];
        assert_eq!(check_scan_coherence(&h, &s, 0), Ok(()));
    }

    #[test]
    fn descending_yields_flagged() {
        let s = [scan(0, 10, &[5, 3], 0, 1)];
        assert_eq!(
            check_scan_coherence(&[], &s, 0b101000),
            Err(ScanViolation::NotAscending { scan: 0 })
        );
    }

    #[test]
    fn out_of_window_yield_flagged() {
        let s = [scan(2, 4, &[3, 7], 0, 1)];
        assert_eq!(
            check_scan_coherence(&[], &s, 0xFF),
            Err(ScanViolation::OutOfBounds { scan: 0, key: 7 })
        );
    }

    #[test]
    fn phantom_key_flagged() {
        // Key 9 never existed anywhere in the history.
        let s = [scan(0, 10, &[9], 0, 1)];
        assert_eq!(
            check_scan_coherence(&[], &s, 0),
            Err(ScanViolation::CertainlyDead { scan: 0, key: 9 })
        );
    }

    #[test]
    fn key_removed_long_before_scan_flagged() {
        let h = vec![op(LinOp::Remove, 4, true, 0, 1)];
        let s = [scan(0, 10, &[4], 5, 6)];
        assert_eq!(
            check_scan_coherence(&h, &s, 1 << 4),
            Err(ScanViolation::CertainlyDead { scan: 0, key: 4 })
        );
    }

    #[test]
    fn concurrent_removal_is_ambiguous_and_passes() {
        // The remove's window overlaps the scan: the key may have been
        // yielded before the removal linearized.
        let h = vec![op(LinOp::Remove, 4, true, 4, 8)];
        let s = [scan(0, 10, &[4], 5, 6)];
        assert_eq!(check_scan_coherence(&h, &s, 1 << 4), Ok(()));
    }

    #[test]
    fn reinsertion_keeps_key_plausible() {
        // Removed before the scan, but re-inserted with an overlapping
        // window — the insert may linearize before the scan looks.
        let h = vec![
            op(LinOp::Remove, 4, true, 0, 1),
            op(LinOp::Insert, 4, true, 2, 9),
        ];
        let s = [scan(0, 10, &[4], 5, 6)];
        assert_eq!(check_scan_coherence(&h, &s, 1 << 4), Ok(()));
    }

    #[test]
    fn missed_stable_key_flagged() {
        // Key 2 is initial and never touched: the scan must yield it.
        let s = [scan(0, 10, &[5], 3, 4)];
        let h = vec![op(LinOp::Insert, 5, true, 0, 1)];
        assert_eq!(
            check_scan_coherence(&h, &s, 1 << 2),
            Err(ScanViolation::MissedLiveKey { scan: 0, key: 2 })
        );
    }

    #[test]
    fn missed_in_flux_key_passes() {
        // Key 2 has a remove in flight during the scan: missing it is fine.
        let h = vec![op(LinOp::Remove, 2, true, 3, 7)];
        let s = [scan(0, 10, &[], 4, 5)];
        assert_eq!(check_scan_coherence(&h, &s, 1 << 2), Ok(()));
    }

    #[test]
    fn violations_render() {
        let v = ScanViolation::CertainlyDead { scan: 1, key: 7 };
        assert!(v.to_string().contains("key 7"));
    }
}
