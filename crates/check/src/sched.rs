//! Loom-style bounded-interleaving scheduler for real (non-modeled) code.
//!
//! The external `loom` crate model-checks code written against its shimmed
//! atomics. This repo cannot take that dependency, so this module provides
//! the nearest in-tree equivalent for the *real* tree code: a seeded
//! scheduler that serializes a small group of worker threads and hands
//! control between them at **pause points** — the lockdep hooks fire one at
//! every lock acquire attempt/acquisition/release — so a test can drive 2–3
//! threads over 2–4 keys through thousands of *distinct, seed-reproducible*
//! interleavings of the paper's critical windows (two-children relocation,
//! zombie revive, lock-free `contains` racing both).
//!
//! This is schedule *exploration by seeded perturbation* (in the spirit of
//! PCT / CHESS), not exhaustive model checking: see [`crate::mc`] for the
//! exhaustive explorer over modeled lock algorithms, and DESIGN.md
//! "Correctness tooling" for what each layer can and cannot catch.
//!
//! ## Mechanism
//! A single **run token** circulates among the workers. At every pause
//! point, a thread that does not hold the token parks; the holder keeps
//! running until the seeded RNG tells it to hand the token to a randomly
//! chosen unfinished peer. All workers start together behind a barrier, so
//! even short closures overlap.
//!
//! ## Liveness
//! A parked thread waits on a condvar with a short timeout. If the token
//! holder is itself stuck in the kernel on a real lock (a state the
//! scheduler cannot observe — e.g. the parked thread holds the `NodeLock`
//! the holder wants), the timeout releases the pause and the run degrades
//! gracefully to free-running threads instead of hanging the harness.
//! Schedules are therefore *mostly* serialized, which is exactly what makes
//! low-probability windows reachable.
//!
//! Threads that never hit a pause point (not registered, or built without
//! the `lockdep` feature, which compiles the hooks away) run normally.

// The scheduler's own turn-taking machinery is built on std primitives by
// design — it is the thing that *instruments* tree locks (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::cell::RefCell;
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Duration;

/// How long a paused thread waits for the token before self-healing into
/// free-running mode.
const PAUSE_TIMEOUT: Duration = Duration::from_millis(5);

struct State {
    /// xorshift64* state; never zero.
    rng: u64,
    /// The slot currently allowed to run.
    token: usize,
    /// Thread slot i has finished its closure.
    finished: Vec<bool>,
    /// Out of `switch_denom` pause points, one hands the token away.
    switch_denom: u64,
}

impl State {
    fn next_rng(&mut self) -> u64 {
        // xorshift64* — deterministic, seedable, no external dependency.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Picks an unfinished slot other than `me`, if any.
    fn pick_other(&mut self, me: usize) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.finished.len())
            .filter(|&i| i != me && !self.finished[i])
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let r = self.next_rng() as usize % candidates.len();
        Some(candidates[r])
    }
}

/// A seeded interleaving scheduler shared by one group of worker threads.
pub struct Scheduler {
    inner: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

impl Scheduler {
    /// Creates a scheduler for `threads` workers. `seed` makes the schedule
    /// reproducible; `switch_denom` tunes context-switch pressure (1 =
    /// offer a hand-off at every pause point, larger = longer bursts per
    /// thread — and, with two workers, also the difference between
    /// deterministic round-robin and seed-dependent schedules).
    pub fn new(threads: usize, seed: u64, switch_denom: u64) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(State {
                rng: seed | 1,
                token: 0,
                finished: vec![false; threads],
                switch_denom: switch_denom.max(1),
            }),
            cv: Condvar::new(),
        })
    }

    /// Runs the worker closures to completion under this scheduler, each on
    /// its own OS thread with pause points wired to this scheduler.
    /// Panics from workers propagate.
    pub fn run(self: &Arc<Self>, workers: Vec<Box<dyn FnOnce() + Send>>) {
        assert_eq!(
            workers.len(),
            self.inner.lock().unwrap().finished.len(),
            "worker count must match scheduler size"
        );
        let start = Arc::new(Barrier::new(workers.len()));
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (slot, work) in workers.into_iter().enumerate() {
                let sched = Arc::clone(self);
                let start = Arc::clone(&start);
                handles.push(scope.spawn(move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some((sched, slot)));
                    // Ensure deregistration + finish signal even on panic.
                    struct Finish;
                    impl Drop for Finish {
                        fn drop(&mut self) {
                            CURRENT.with(|c| {
                                if let Some((sched, slot)) = c.borrow_mut().take() {
                                    sched.finish(slot);
                                }
                            });
                        }
                    }
                    let _finish = Finish;
                    start.wait();
                    work();
                }));
            }
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });
    }

    /// Pause point body for registered thread `me`.
    fn pause(&self, me: usize) {
        let mut st = self.inner.lock().unwrap();
        if st.token == me {
            // Burst control: mostly keep the token.
            let denom = st.switch_denom;
            if !st.next_rng().is_multiple_of(denom) {
                return;
            }
            let Some(next) = st.pick_other(me) else { return };
            st.token = next;
            self.cv.notify_all();
        }
        // Not (or no longer) the token holder: park until the token comes
        // back, self-healing on timeout (see module docs on liveness).
        while st.token != me {
            let (st2, timeout) = self.cv.wait_timeout(st, PAUSE_TIMEOUT).unwrap();
            st = st2;
            if timeout.timed_out() {
                return;
            }
        }
    }

    /// Marks `me` finished and passes the token on if `me` held it.
    fn finish(&self, me: usize) {
        let mut st = self.inner.lock().unwrap();
        st.finished[me] = true;
        if st.token == me {
            if let Some(next) = st.pick_other(me) {
                st.token = next;
            }
        }
        self.cv.notify_all();
    }
}

/// The global pause point. Called by the lockdep hooks; a no-op on threads
/// not owned by a running [`Scheduler`].
#[inline]
pub fn pause_point() {
    // `try_borrow` (not `borrow`): a panicking worker may re-enter via
    // drops while CURRENT is mid-mutation.
    CURRENT.with(|c| {
        let pair = match c.try_borrow() {
            Ok(b) => b.as_ref().map(|(s, i)| (Arc::clone(s), *i)),
            Err(_) => None,
        };
        if let Some((sched, slot)) = pair {
            sched.pause(slot);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn unregistered_pause_point_is_noop() {
        pause_point();
    }

    #[test]
    fn all_workers_complete() {
        let counter = Arc::new(AtomicUsize::new(0));
        let sched = Scheduler::new(3, 42, 1);
        let workers: Vec<Box<dyn FnOnce() + Send>> = (0..3)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    for _ in 0..100 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        pause_point();
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        sched.run(workers);
        assert_eq!(counter.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn schedules_are_interleaved_not_sequential() {
        // With the token circulating, the per-thread bursts must actually
        // alternate rather than each worker running to completion.
        let log = Arc::new(Mutex::new(Vec::new()));
        let sched = Scheduler::new(2, 11, 1);
        let workers: Vec<Box<dyn FnOnce() + Send>> = (0..2)
            .map(|t| {
                let log = Arc::clone(&log);
                Box::new(move || {
                    for _ in 0..50 {
                        log.lock().unwrap().push(t);
                        pause_point();
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        sched.run(workers);
        let v = log.lock().unwrap().clone();
        let switches = v.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches > 1, "expected interleaving, got {switches} switches: {v:?}");
    }

    #[test]
    fn seeds_change_interleavings() {
        // Record the order in which threads append; different seeds should
        // produce different orders at least once across a few tries.
        // switch_denom = 3 so the RNG decides *whether* to hand off, making
        // the schedule genuinely seed-dependent even with two workers.
        fn trace(seed: u64) -> Vec<usize> {
            let log = Arc::new(Mutex::new(Vec::new()));
            let sched = Scheduler::new(2, seed, 3);
            let workers: Vec<Box<dyn FnOnce() + Send>> = (0..2)
                .map(|t| {
                    let log = Arc::clone(&log);
                    Box::new(move || {
                        for _ in 0..20 {
                            log.lock().unwrap().push(t);
                            pause_point();
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            sched.run(workers);
            let v = log.lock().unwrap().clone();
            v
        }
        let a = trace(1);
        let differs = (2..12).any(|s| trace(s) != a);
        assert!(differs, "ten seeds produced identical interleavings");
    }

    #[test]
    fn worker_panic_propagates() {
        let sched = Scheduler::new(2, 7, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sched.run(vec![
                Box::new(|| panic!("boom")),
                Box::new(pause_point),
            ]);
        }));
        assert!(result.is_err());
    }
}
