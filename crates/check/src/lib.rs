//! # lo-check — concurrency correctness toolkit
//!
//! Verification substrate for the logical-ordering tree suite
//! (Drachsler–Vechev–Yahav, PPoPP 2014). Six pillars:
//!
//! * [`lockdep`] — a kernel-lockdep-style runtime ledger. Behind the
//!   `lockdep` cargo feature, every `NodeLock` acquire/release in `lo-core`
//!   reports here; the ledger asserts the paper's §5.1 lock-ordering rules
//!   (succ-locks before tree-locks, succ-locks in ascending key order,
//!   blocking tree-locks only as bottom anchors or upward hand-over-hand)
//!   and maintains a global acquired-before graph with cycle detection.
//!   With the feature off, every hook compiles to an empty
//!   `#[inline(always)]` function — the same zero-cost pattern as
//!   `lo-metrics`.
//! * [`lin`] — a Wing–Gong linearizability checker over recorded
//!   timestamped histories of set operations (the canonical home;
//!   `lo-validate` re-exports it).
//! * [`scan`] — a scan-coherence checker for concurrent range scans
//!   recorded against the same logical clock: every yielded key was live
//!   at some instant inside the scan's window, yields ascend strictly,
//!   and continuously-live keys are never missed.
//! * [`mc`] — an exhaustive bounded-interleaving explorer for *modeled*
//!   lock algorithms (loom-shaped stateless model checking by schedule
//!   replay; the `loom` crate itself is not available as a dependency).
//! * [`fail`] — a failpoint registry: seeded, budgeted [`fail::FaultPlan`]s
//!   drive named crosscut points in `lo-core` (behind its `failpoints`
//!   feature) to inject delays, forced `try_lock` failures, and panics at
//!   the algorithm's sensitive windows, with deterministic replay by seed.
//! * [`sched`] — a seeded bounded-interleaving scheduler that serializes
//!   real tree code at lockdep pause points (PCT/CHESS-spirit schedule
//!   perturbation) so tests can drive rare windows such as two-children
//!   relocation and zombie revive.
//!
//! This crate has **no dependencies** and forbids unsafe code: it must stay
//! buildable standalone and clean under Miri.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fail;
pub mod lin;
pub mod lockdep;
pub mod mc;
pub mod scan;
pub mod sched;

pub use lockdep::{AcquireHow, LockClass, Rank, Violation, ViolationKind};
