//! Exhaustive bounded interleaving explorer for *modeled* concurrent
//! algorithms (stateless model checking by schedule replay).
//!
//! The external `loom` crate cannot be taken as a dependency here, so this
//! module supplies the loom-shaped layer for the lock substrate: algorithms
//! are re-expressed as small per-thread state machines over a shared model
//! state (each `step` = one atomic action), and [`explore`] enumerates
//! **every** schedule of those steps by depth-first search with replay,
//! checking invariants inside steps and a final-state predicate after each
//! complete schedule.
//!
//! What this layer *can* catch: mutual-exclusion violations, lost updates,
//! deadlocks and protocol bugs in the modeled algorithm (the model is
//! sequentially consistent, like `loom` without weak-memory reordering).
//! What it *cannot* catch: bugs in the real implementation that the model
//! does not mirror, and relaxed-ordering bugs — those are ThreadSanitizer's
//! and Miri's job (see DESIGN.md "Correctness tooling").
//!
//! ## Contract
//! * `mk()` must build a *deterministic* fresh instance: same state, same
//!   thread programs, every call.
//! * A step that returns [`Step::Blocked`] must leave the state and its own
//!   program counter unchanged (a pure failed probe, e.g. a `try_lock` that
//!   lost). Blocked threads are re-enabled after any other thread performs a
//!   real step.
//! * Each thread program must terminate in a bounded number of *real* steps.

/// Outcome of one thread step.
pub enum Step {
    /// Took a real step; thread remains runnable.
    Ready,
    /// Could not progress (e.g. lock held); state unchanged. The thread is
    /// suspended until another thread takes a real step.
    Blocked,
    /// The thread's program finished.
    Done,
    /// An invariant failed; exploration aborts reporting the schedule.
    Fail(String),
}

/// One thread of a model: a state machine advanced one atomic action per
/// call.
pub type ThreadFn<S> = Box<dyn FnMut(&mut S) -> Step>;

/// Exploration summary.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of complete schedules executed.
    pub schedules: u64,
    /// Whether the schedule space was fully explored (`false` means the
    /// `max_schedules` budget truncated the search).
    pub complete: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum St {
    Run,
    Blocked,
    Done,
}

/// Runs one thread step and updates statuses; returns the failure message
/// on [`Step::Fail`].
fn do_step<S>(
    threads: &mut [ThreadFn<S>],
    state: &mut S,
    status: &mut [St],
    trace: &mut Vec<usize>,
    tid: usize,
) -> Result<(), String> {
    trace.push(tid);
    match (threads[tid])(state) {
        Step::Ready => {
            wake_blocked(status, tid);
        }
        Step::Done => {
            status[tid] = St::Done;
            wake_blocked(status, tid);
        }
        Step::Blocked => status[tid] = St::Blocked,
        Step::Fail(msg) => {
            return Err(format!("model invariant failed: {msg}; schedule {trace:?}"));
        }
    }
    Ok(())
}

fn wake_blocked(status: &mut [St], stepped: usize) {
    for (i, s) in status.iter_mut().enumerate() {
        if i != stepped && *s == St::Blocked {
            *s = St::Run;
        }
    }
}

fn enabled(status: &[St]) -> Vec<usize> {
    (0..status.len()).filter(|&i| status[i] == St::Run).collect()
}

/// Exhaustively explores every interleaving of the model built by `mk`,
/// up to `max_schedules` complete schedules.
///
/// After each complete schedule, `final_check` validates the end state.
/// Returns the first failure (invariant, deadlock, or final-check) with the
/// offending schedule, or a [`Report`] if every explored schedule passed.
pub fn explore<S>(
    mk: &mut dyn FnMut() -> (S, Vec<ThreadFn<S>>),
    final_check: &dyn Fn(&S) -> Result<(), String>,
    max_schedules: u64,
) -> Result<Report, String> {
    // DFS frames: (index of the chosen thread within `enabled`, enabled set).
    let mut stack: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut schedules: u64 = 0;
    loop {
        // Fresh instance, replay the committed prefix, then extend greedily.
        let (mut state, mut threads) = mk();
        let n = threads.len();
        assert!(n > 0, "model must have at least one thread");
        let mut status = vec![St::Run; n];
        let mut trace: Vec<usize> = Vec::new();

        for frame in stack.iter() {
            let tid = frame.1[frame.0];
            do_step(&mut threads, &mut state, &mut status, &mut trace, tid)?;
        }
        loop {
            let en = enabled(&status);
            if en.is_empty() {
                if status.contains(&St::Blocked) {
                    let blocked: Vec<usize> =
                        (0..n).filter(|&i| status[i] == St::Blocked).collect();
                    return Err(format!(
                        "model deadlock: threads {blocked:?} blocked with no runnable \
                         thread; schedule {trace:?}"
                    ));
                }
                break; // every thread Done: schedule complete
            }
            let tid = en[0];
            stack.push((0, en));
            do_step(&mut threads, &mut state, &mut status, &mut trace, tid)?;
        }
        final_check(&state).map_err(|msg| format!("{msg}; schedule {trace:?}"))?;
        schedules += 1;
        if schedules >= max_schedules {
            return Ok(Report { schedules, complete: false });
        }

        // Backtrack to the deepest frame with an untried alternative.
        loop {
            match stack.last_mut() {
                None => return Ok(Report { schedules, complete: true }),
                Some(top) => {
                    if top.0 + 1 < top.1.len() {
                        top.0 += 1;
                        break;
                    }
                    stack.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared state for the lock models: a lock word, a "threads inside the
    /// critical section" census, and a plain (non-atomic-modeled) counter.
    struct LockState {
        locked: bool,
        in_cs: usize,
        counter: u64,
    }

    fn lock_state(_threads: usize) -> LockState {
        LockState { locked: false, in_cs: 0, counter: 0 }
    }

    /// A correct test-and-set lock thread (mirrors `SpinLock`: the CAS is a
    /// single atomic action): acquire → enter CS → increment → leave → Done.
    fn tas_thread(me: usize) -> ThreadFn<LockState> {
        let mut pc = 0;
        Box::new(move |s: &mut LockState| match pc {
            0 => {
                // compare_exchange(false, true): one atomic step.
                if s.locked {
                    return Step::Blocked;
                }
                s.locked = true;
                s.in_cs += 1;
                if s.in_cs > 1 {
                    return Step::Fail(format!("threads {me} and another both in CS"));
                }
                pc = 1;
                Step::Ready
            }
            1 => {
                s.counter += 1;
                pc = 2;
                Step::Ready
            }
            2 => {
                s.in_cs -= 1;
                s.locked = false;
                pc = 3;
                Step::Done
            }
            _ => Step::Done,
        })
    }

    /// A *broken* lock: the test and the set are two separate steps
    /// (load; store), i.e. a non-atomic test-and-set. The explorer must
    /// find the interleaving where both threads observe the lock free.
    fn broken_thread(me: usize) -> ThreadFn<LockState> {
        let mut pc = 0;
        Box::new(move |s: &mut LockState| match pc {
            0 => {
                if s.locked {
                    return Step::Blocked;
                }
                // The load observed the lock free; the matching store is a
                // *separate* step — that gap is the bug to find.
                pc = 1;
                Step::Ready
            }
            1 => {
                s.locked = true; // store — too late, not atomic with the load
                s.in_cs += 1;
                if s.in_cs > 1 {
                    return Step::Fail(format!("broken lock admitted thread {me} into CS"));
                }
                pc = 2;
                Step::Ready
            }
            2 => {
                s.in_cs -= 1;
                s.locked = false;
                pc = 3;
                Step::Done
            }
            _ => Step::Done,
        })
    }

    #[test]
    fn tas_lock_mutual_exclusion_all_interleavings() {
        let report = explore(
            &mut || (lock_state(3), (0..3).map(tas_thread).collect()),
            &|s: &LockState| {
                if s.counter == 3 {
                    Ok(())
                } else {
                    Err(format!("lost update: counter {} != 3", s.counter))
                }
            },
            1_000_000,
        )
        .expect("TAS lock must pass every interleaving");
        assert!(report.complete, "schedule space should be fully explored");
        assert!(report.schedules > 1, "more than one schedule must exist");
    }

    #[test]
    fn broken_lock_is_caught() {
        let err = explore(
            &mut || (lock_state(2), (0..2).map(broken_thread).collect()),
            &|_| Ok(()),
            1_000_000,
        )
        .expect_err("explorer must find the non-atomic TAS race");
        assert!(err.contains("broken lock admitted"), "unexpected failure: {err}");
    }

    #[test]
    fn deadlock_is_reported() {
        // Two locks, two threads, opposite order, blocking: classic AB/BA.
        struct S {
            a: bool,
            b: bool,
        }
        fn t(first_a: bool) -> ThreadFn<S> {
            let mut pc = 0;
            Box::new(move |s: &mut S| {
                let (first, second): (&mut bool, &mut bool) = if first_a {
                    let S { a, b } = s;
                    (a, b)
                } else {
                    let S { a, b } = s;
                    (b, a)
                };
                match pc {
                    0 => {
                        if *first {
                            return Step::Blocked;
                        }
                        *first = true;
                        pc = 1;
                        Step::Ready
                    }
                    1 => {
                        if *second {
                            return Step::Blocked;
                        }
                        *second = true;
                        pc = 2;
                        Step::Ready
                    }
                    _ => Step::Done,
                }
            })
        }
        let err = explore(
            &mut || (S { a: false, b: false }, vec![t(true), t(false)]),
            &|_| Ok(()),
            1_000_000,
        )
        .expect_err("AB/BA blocking order must deadlock in some schedule");
        assert!(err.contains("model deadlock"), "unexpected failure: {err}");
    }

    #[test]
    fn budget_truncates() {
        let report = explore(
            &mut || (lock_state(3), (0..3).map(tas_thread).collect()),
            &|_| Ok(()),
            5,
        )
        .unwrap();
        assert_eq!(report.schedules, 5);
        assert!(!report.complete);
    }
}
