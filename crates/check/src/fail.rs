//! Failpoint registry: seeded, budgeted fault plans for crosscut injection.
//!
//! `lo-core` (behind its `failpoints` cargo feature) calls [`fire`] at a
//! fixed catalog of named crosscut points — the sensitive windows of the
//! logical-ordering algorithms (after a linearization-point store but
//! before the physical unlink, mid successor relocation, between succ-lock
//! and tree-lock acquisition, inside rotation height updates, …). A test
//! or chaos run installs a [`FaultPlan`] via [`activate`]; each plan rule
//! decides *deterministically* — from the plan seed, the point identity and
//! the per-point occurrence counter — whether a given crossing injects a
//! seeded delay, a forced `try_lock` failure, or a panic.
//!
//! Design constraints:
//!
//! * **Always compiled, never hot.** This module has no cargo feature of
//!   its own; with no plan active, [`fire`] is a single relaxed atomic
//!   load. The zero-cost-when-off guarantee for production builds lives in
//!   `lo-core`, whose call sites compile to empty `#[inline(always)]`
//!   no-ops unless its `failpoints` feature is on.
//! * **Deterministic replay.** Firing decisions are pure functions of
//!   `(seed, point, occurrence#)` — no wall clock, no thread-local RNG —
//!   so a failing chaos seed replays exactly (modulo OS scheduling, which
//!   only changes *which thread* reaches an occurrence, not whether that
//!   occurrence fires).
//! * **No unsafe, no deps, Miri-clean** — like the rest of `lo-check`.

// The failpoint registry's plan storage is harness state behind plain std
// locks, not tree-protocol locks (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};

/// Named crosscut points in `lo-core`'s update paths.
///
/// The variant order is stable: `PoisonCause::Failpoint` codes and the
/// chaos harness's per-point budgets index by `as usize`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FailPoint {
    /// Insert/put: after the linearization point (`pred.succ := new`) and
    /// succ-unlock, before `insert_to_tree` links the node into the layout.
    InsertOrderingLinked,
    /// Remove: after `s.lock_succ()` succeeds, before tree-lock
    /// acquisition begins (the succ-lock/tree-lock window).
    RemoveSuccTreeWindow,
    /// Remove: after the mark store (linearization point) and the ordering
    /// splice + succ unlocks, before `remove_from_tree`.
    RemoveAfterMark,
    /// Remove, two-children case: after the successor is detached from its
    /// old layout position, before it is relinked in place of the victim.
    RemoveMidRelocation,
    /// Rotation: after child pointers are rewired, before the height
    /// stores that restore the AVL bookkeeping.
    RotateMid,
    /// Partially-external remove: after the mark store and succ unlocks,
    /// before the physical `update_child` splice.
    PeAfterMark,
    /// Tree-lock `try_lock`: force a failure (feeds the restart loops).
    TreeTryLock,
    /// Node allocation: simulate allocator exhaustion.
    ArenaAlloc,
    /// Optimistic write path (ISSUE 8): inside the short succ-lock window,
    /// after the under-lock version confirm succeeded and before the link
    /// flips — the only lock-held window the optimistic protocol retains.
    OptimisticWindowLocked,
}

impl FailPoint {
    /// Number of cataloged failpoints.
    pub const COUNT: usize = 9;

    /// Every failpoint, in `repr` order.
    pub const ALL: [FailPoint; Self::COUNT] = [
        FailPoint::InsertOrderingLinked,
        FailPoint::RemoveSuccTreeWindow,
        FailPoint::RemoveAfterMark,
        FailPoint::RemoveMidRelocation,
        FailPoint::RotateMid,
        FailPoint::PeAfterMark,
        FailPoint::TreeTryLock,
        FailPoint::ArenaAlloc,
        FailPoint::OptimisticWindowLocked,
    ];

    /// Stable kebab-case name (used in error messages and reports).
    pub const fn name(self) -> &'static str {
        match self {
            FailPoint::InsertOrderingLinked => "insert-ordering-linked",
            FailPoint::RemoveSuccTreeWindow => "remove-succ-tree-window",
            FailPoint::RemoveAfterMark => "remove-after-mark",
            FailPoint::RemoveMidRelocation => "remove-mid-relocation",
            FailPoint::RotateMid => "rotate-mid-heights",
            FailPoint::PeAfterMark => "pe-after-mark",
            FailPoint::TreeTryLock => "tree-try-lock",
            FailPoint::ArenaAlloc => "arena-alloc",
            FailPoint::OptimisticWindowLocked => "optimistic-window-locked",
        }
    }

    /// Index into [`FailPoint::ALL`].
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// What an armed failpoint does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Spin/yield for roughly the given number of backoff units, widening
    /// the race window without changing the outcome.
    Delay(u32),
    /// Force the operation at the point to fail (e.g. a `try_lock`
    /// returns `false`, an allocation returns `None`).
    Fail,
    /// Panic, simulating a thread dying inside the window.
    Panic,
}

/// A per-point rule: what to inject, how often, and how many times.
#[derive(Clone, Copy, Debug)]
pub struct FaultRule {
    /// The injected effect.
    pub action: FaultAction,
    /// Fire on (deterministically) one in `one_in` eligible occurrences.
    /// `1` means every eligible occurrence.
    pub one_in: u64,
    /// Skip the first `skip` occurrences unconditionally.
    pub skip: u64,
    /// Fire at most `budget` times; `u64::MAX` means unlimited.
    pub budget: u64,
}

impl FaultRule {
    /// Rule that fires on every occurrence, forever.
    pub const fn always(action: FaultAction) -> Self {
        FaultRule { action, one_in: 1, skip: 0, budget: u64::MAX }
    }

    /// Rule that fires exactly once, on the first occurrence.
    pub const fn once(action: FaultAction) -> Self {
        FaultRule { action, one_in: 1, skip: 0, budget: 1 }
    }

    /// Set the sampling rate (fire on ~one in `one_in` occurrences).
    pub const fn one_in(mut self, one_in: u64) -> Self {
        self.one_in = if one_in == 0 { 1 } else { one_in };
        self
    }

    /// Skip the first `skip` occurrences.
    pub const fn skip(mut self, skip: u64) -> Self {
        self.skip = skip;
        self
    }

    /// Cap the number of firings.
    pub const fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }
}

/// A seeded set of per-point rules, installable via [`activate`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed mixed into every sampling decision.
    pub seed: u64,
    rules: [Option<FaultRule>; FailPoint::COUNT],
}

impl FaultPlan {
    /// Empty plan (no point armed) under the given seed.
    pub const fn new(seed: u64) -> Self {
        FaultPlan { seed, rules: [None; FailPoint::COUNT] }
    }

    /// Arm `point` with `rule` (builder style).
    pub const fn with(mut self, point: FailPoint, rule: FaultRule) -> Self {
        self.rules[point.index()] = Some(rule);
        self
    }

    /// Arm a one-shot panic at `point`.
    pub const fn panic_at(self, point: FailPoint) -> Self {
        self.with(point, FaultRule::once(FaultAction::Panic))
    }

    /// Arm an unbounded seeded delay at `point`.
    pub const fn delay_at(self, point: FailPoint, units: u32, one_in: u64) -> Self {
        self.with(point, FaultRule::always(FaultAction::Delay(units)).one_in(one_in))
    }

    /// Arm a budgeted forced failure at `point`.
    pub const fn fail_at(self, point: FailPoint, budget: u64) -> Self {
        self.with(point, FaultRule::always(FaultAction::Fail).budget(budget))
    }

    /// The rule armed at `point`, if any.
    pub const fn rule(&self, point: FailPoint) -> Option<FaultRule> {
        self.rules[point.index()]
    }
}

/// Live plan state: the plan plus per-point occurrence/fired counters.
struct ActivePlan {
    plan: FaultPlan,
    seen: [AtomicU64; FailPoint::COUNT],
    fired: [AtomicU64; FailPoint::COUNT],
}

impl ActivePlan {
    fn new(plan: FaultPlan) -> Self {
        ActivePlan {
            plan,
            seen: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Fast-path gate: true iff a plan is installed.
static ACTIVE_ON: AtomicBool = AtomicBool::new(false);

fn active() -> &'static RwLock<Option<ActivePlan>> {
    static ACTIVE: OnceLock<RwLock<Option<ActivePlan>>> = OnceLock::new();
    ACTIVE.get_or_init(|| RwLock::new(None))
}

fn session_mutex() -> &'static Mutex<()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

/// RAII handle for an activated [`FaultPlan`].
///
/// Holding a `PlanSession` serializes all plan-activating tests in the
/// process (a global mutex), so concurrent `#[test]` functions cannot see
/// each other's faults. Dropping it deactivates the plan.
pub struct PlanSession {
    _serial: MutexGuard<'static, ()>,
}

impl PlanSession {
    /// Total number of injected faults across all points so far.
    pub fn fired(&self) -> u64 {
        self.fired_counts().iter().sum()
    }

    /// Per-point injected-fault counts, indexed like [`FailPoint::ALL`].
    pub fn fired_counts(&self) -> [u64; FailPoint::COUNT] {
        let guard = active().read().unwrap();
        match guard.as_ref() {
            Some(a) => std::array::from_fn(|i| a.fired[i].load(Ordering::Relaxed)),
            None => [0; FailPoint::COUNT],
        }
    }

    /// Per-point occurrence (crossing) counts, fired or not.
    pub fn seen_counts(&self) -> [u64; FailPoint::COUNT] {
        let guard = active().read().unwrap();
        match guard.as_ref() {
            Some(a) => std::array::from_fn(|i| a.seen[i].load(Ordering::Relaxed)),
            None => [0; FailPoint::COUNT],
        }
    }
}

impl Drop for PlanSession {
    fn drop(&mut self) {
        ACTIVE_ON.store(false, Ordering::Release);
        *active().write().unwrap() = None;
    }
}

/// Install `plan` process-wide and return the session handle.
///
/// Blocks until any other active session is dropped.
pub fn activate(plan: FaultPlan) -> PlanSession {
    let serial = match session_mutex().lock() {
        Ok(g) => g,
        // A previous session's *test* panicked while holding the guard;
        // the registry itself is still consistent.
        Err(poisoned) => poisoned.into_inner(),
    };
    *active().write().unwrap() = Some(ActivePlan::new(plan));
    ACTIVE_ON.store(true, Ordering::Release);
    PlanSession { _serial: serial }
}

/// SplitMix64 finalizer — decorrelates the (seed, point, occurrence) mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Evaluate the failpoint `point`. Returns the action to inject, if any.
///
/// With no plan active this is a single atomic load. Call sites in
/// `lo-core` are themselves feature-gated, so release builds never reach
/// even that.
pub fn fire(point: FailPoint) -> Option<FaultAction> {
    if !ACTIVE_ON.load(Ordering::Acquire) {
        return None;
    }
    let guard = active().read().unwrap();
    let a = guard.as_ref()?;
    let rule = a.plan.rule(point)?;
    let idx = point.index();
    // Occurrence number is claimed unconditionally so decisions stay a
    // pure function of (seed, point, occurrence#).
    let occ = a.seen[idx].fetch_add(1, Ordering::Relaxed);
    if occ < rule.skip {
        return None;
    }
    if rule.one_in > 1 {
        let h = mix(a.plan.seed ^ ((idx as u64) << 32) ^ occ.wrapping_mul(0x632b_e5ab));
        if !h.is_multiple_of(rule.one_in) {
            return None;
        }
    }
    // Claim a slot under the budget.
    let claimed = a.fired[idx]
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            if n < rule.budget {
                Some(n + 1)
            } else {
                None
            }
        })
        .is_ok();
    if claimed {
        Some(rule.action)
    } else {
        None
    }
}

thread_local! {
    /// Set by `lo-core` right before it raises an injected panic, so a
    /// harness's `catch_unwind` can tell injected faults from real bugs.
    static INJECTED: Cell<Option<FailPoint>> = const { Cell::new(None) };
}

/// Record (thread-locally) that the next unwind on this thread is an
/// injected fault at `point`. Called by `lo-core` only.
pub fn note_injected_panic(point: FailPoint) {
    INJECTED.with(|c| c.set(Some(point)));
}

/// Take the pending injected-fault marker for this thread, if any.
pub fn take_injected_panic() -> Option<FailPoint> {
    INJECTED.with(|c| c.take())
}

/// Panic-message suffix: the interrupted operation *had already
/// linearized* when the fault fired (its effect is visible).
pub const MARKER_EFFECTIVE: &str = "[lo-fault:op-linearized]";

/// Panic-message suffix: the interrupted operation had *not* linearized
/// (no effect is visible).
pub const MARKER_INEFFECTIVE: &str = "[lo-fault:op-not-linearized]";

/// Classify a panic message carrying one of the effect markers.
///
/// `Some(true)` = op linearized, `Some(false)` = op did not linearize,
/// `None` = no marker (not an injected fault, or an abort path that never
/// reached a linearization decision).
pub fn effect_in_message(msg: &str) -> Option<bool> {
    if msg.contains(MARKER_EFFECTIVE) {
        Some(true)
    } else if msg.contains(MARKER_INEFFECTIVE) {
        Some(false)
    } else {
        None
    }
}

/// Extract the string payload of a caught panic, if it has one.
pub fn panic_message(payload: &(dyn Any + Send)) -> Option<&str> {
    if let Some(s) = payload.downcast_ref::<String>() {
        Some(s)
    } else {
        payload.downcast_ref::<&'static str>().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_fires_nothing() {
        // No session: must not fire even if another test just dropped one.
        let _serial = session_mutex().lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(fire(FailPoint::RemoveAfterMark), None);
    }

    #[test]
    fn names_are_unique_and_kebab() {
        let mut seen = std::collections::HashSet::new();
        for p in FailPoint::ALL {
            let n = p.name();
            assert!(seen.insert(n), "duplicate failpoint name {n}");
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "non-kebab name {n}"
            );
            assert_eq!(FailPoint::ALL[p.index()], p);
        }
        assert_eq!(seen.len(), FailPoint::COUNT);
    }

    #[test]
    fn once_budget_and_skip() {
        let plan = FaultPlan::new(7)
            .with(FailPoint::RotateMid, FaultRule::once(FaultAction::Panic).skip(2));
        let session = activate(plan);
        assert_eq!(fire(FailPoint::RotateMid), None); // occ 0: skipped
        assert_eq!(fire(FailPoint::RotateMid), None); // occ 1: skipped
        assert_eq!(fire(FailPoint::RotateMid), Some(FaultAction::Panic)); // occ 2
        assert_eq!(fire(FailPoint::RotateMid), None); // budget exhausted
        assert_eq!(session.fired(), 1);
        assert_eq!(session.seen_counts()[FailPoint::RotateMid.index()], 4);
        // A point with no rule never fires.
        assert_eq!(fire(FailPoint::ArenaAlloc), None);
    }

    #[test]
    fn sampling_is_deterministic_by_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed)
                .with(FailPoint::TreeTryLock, FaultRule::always(FaultAction::Fail).one_in(3));
            let _session = activate(plan);
            (0..64).map(|_| fire(FailPoint::TreeTryLock).is_some()).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ");
        let hits = a.iter().filter(|&&x| x).count();
        assert!(hits > 5 && hits < 40, "one_in(3) over 64 occurrences hit {hits} times");
    }

    #[test]
    fn injected_panic_marker_roundtrip() {
        assert_eq!(take_injected_panic(), None);
        note_injected_panic(FailPoint::PeAfterMark);
        assert_eq!(take_injected_panic(), Some(FailPoint::PeAfterMark));
        assert_eq!(take_injected_panic(), None);
    }

    #[test]
    fn effect_markers_classify() {
        let eff = format!("boom at remove-after-mark {MARKER_EFFECTIVE}");
        let ineff = format!("boom at insert-ordering-linked {MARKER_INEFFECTIVE}");
        assert_eq!(effect_in_message(&eff), Some(true));
        assert_eq!(effect_in_message(&ineff), Some(false));
        assert_eq!(effect_in_message("ordinary panic"), None);
    }

    #[test]
    fn panic_message_downcasts() {
        let s: Box<dyn Any + Send> = Box::new(String::from("owned"));
        let r: Box<dyn Any + Send> = Box::new("static");
        let n: Box<dyn Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(s.as_ref()), Some("owned"));
        assert_eq!(panic_message(r.as_ref()), Some("static"));
        assert_eq!(panic_message(n.as_ref()), None);
    }

    #[test]
    fn session_drop_deactivates() {
        {
            let _s = activate(FaultPlan::new(1).panic_at(FailPoint::RemoveAfterMark));
            assert!(ACTIVE_ON.load(Ordering::Acquire));
        }
        let _serial = session_mutex().lock().unwrap_or_else(|p| p.into_inner());
        assert!(!ACTIVE_ON.load(Ordering::Acquire));
        assert_eq!(fire(FailPoint::RemoveAfterMark), None);
    }
}
