//! Shared harness for the reproduction binaries and benches: an algorithm
//! registry, scale presets, and panel runners regenerating the paper's
//! Tables 1 and 2.
//!
//! Scale: the defaults finish on a small container; set `LO_FULL=1` for the
//! paper-scale protocol (5-second trials, 8 repetitions, threads 1..256,
//! key ranges 2·10⁴/2·10⁵/2·10⁶).

#![warn(missing_docs)]

use std::time::Duration;

use lo_baselines::{
    BccoTreeMap, CfTreeMap, ChromaticTreeMap, CoarseAvlMap, EfrbTreeMap, NmTreeMap, SkipListMap,
};
use lo_core::{LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap};
use lo_workload::{
    run_experiment_full, run_experiment_full_ordered, Mix, MetricsEntry, MetricsPanel, Panel,
    Summary, TrialResult, TrialSpec,
};

/// Every benchmarkable algorithm in the suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's relaxed-balance AVL with logical ordering.
    LoAvl,
    /// The paper's partially-external ("logical removing") AVL variant.
    LoPeAvl,
    /// The paper's unbalanced BST with logical ordering.
    LoBst,
    /// Unbalanced partially-external variant.
    LoPeBst,
    /// Bronson et al. relaxed AVL (lock-based, partially external).
    Bcco,
    /// Crain et al. contention-friendly tree (maintenance thread).
    Cf,
    /// Brown et al. chromatic tree (lock-based substitution).
    Chromatic,
    /// Lock-free skip list (Fraser/Harris design).
    Skiplist,
    /// Ellen et al. non-blocking external BST.
    Efrb,
    /// Natarajan–Mittal lock-free external BST (extension).
    Nm,
    /// Coarse `RwLock` reference.
    Coarse,
}

impl Algo {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::LoAvl => "lo-avl",
            Algo::LoPeAvl => "lo-avl-pe",
            Algo::LoBst => "lo-bst",
            Algo::LoPeBst => "lo-bst-pe",
            Algo::Bcco => "bcco",
            Algo::Cf => "cf",
            Algo::Chromatic => "chromatic",
            Algo::Skiplist => "skiplist",
            Algo::Efrb => "efrb",
            Algo::Nm => "nm",
            Algo::Coarse => "coarse",
        }
    }

    /// The balanced-tree lineup of Table 1.
    pub fn table1() -> Vec<Algo> {
        vec![Algo::LoAvl, Algo::LoPeAvl, Algo::Bcco, Algo::Cf, Algo::Chromatic, Algo::Skiplist]
    }

    /// The unbalanced lineup of Table 2 (plus the NM extension).
    pub fn table2() -> Vec<Algo> {
        vec![Algo::LoBst, Algo::LoPeBst, Algo::Efrb, Algo::Nm]
    }

    /// The range-scan lineup: every structure with *concurrent* ordered
    /// reads ([`lo_api::OrderedRead`]) — the logical-ordering trees via the
    /// succ-chain cursor, the skip list via its sorted bottom level. The
    /// external-tree baselines are excluded by the type system: they only
    /// implement `QuiescentOrdered`.
    pub fn range_scan_lineup() -> Vec<Algo> {
        vec![Algo::LoBst, Algo::LoAvl, Algo::LoPeAvl, Algo::Skiplist]
    }

    /// Whether this algorithm supports concurrent ordered reads (and thus
    /// [`Algo::run_full_ordered`]).
    pub fn supports_ordered(self) -> bool {
        matches!(
            self,
            Algo::LoAvl | Algo::LoPeAvl | Algo::LoBst | Algo::LoPeBst | Algo::Skiplist
        )
    }

    /// Runs `reps` prefilled timed trials; returns the full per-rep
    /// [`TrialResult`]s (throughput, per-thread distribution, telemetry).
    pub fn run_full(self, spec: &TrialSpec, reps: usize) -> Vec<TrialResult> {
        match self {
            Algo::LoAvl => run_experiment_full(LoAvlMap::<i64, u64>::new, spec, reps),
            Algo::LoPeAvl => run_experiment_full(LoPeAvlMap::<i64, u64>::new, spec, reps),
            Algo::LoBst => run_experiment_full(LoBstMap::<i64, u64>::new, spec, reps),
            Algo::LoPeBst => run_experiment_full(LoPeBstMap::<i64, u64>::new, spec, reps),
            Algo::Bcco => run_experiment_full(BccoTreeMap::<i64, u64>::new, spec, reps),
            Algo::Cf => run_experiment_full(CfTreeMap::<i64, u64>::new, spec, reps),
            Algo::Chromatic => run_experiment_full(ChromaticTreeMap::<i64, u64>::new, spec, reps),
            Algo::Skiplist => run_experiment_full(SkipListMap::<i64, u64>::new, spec, reps),
            Algo::Efrb => run_experiment_full(EfrbTreeMap::<i64, u64>::new, spec, reps),
            Algo::Nm => run_experiment_full(NmTreeMap::<i64, u64>::new, spec, reps),
            Algo::Coarse => run_experiment_full(CoarseAvlMap::<i64, u64>::new, spec, reps),
        }
    }

    /// Runs `reps` prefilled timed trials; returns per-rep Mops/s.
    pub fn run(self, spec: &TrialSpec, reps: usize) -> Vec<f64> {
        self.run_full(spec, reps).iter().map(TrialResult::mops).collect()
    }

    /// [`Algo::run_full`] for mixes containing range scans, driven through
    /// the ordered runner. Panics for algorithms without concurrent ordered
    /// reads (see [`Algo::supports_ordered`]).
    pub fn run_full_ordered(self, spec: &TrialSpec, reps: usize) -> Vec<TrialResult> {
        match self {
            Algo::LoAvl => run_experiment_full_ordered(LoAvlMap::<i64, u64>::new, spec, reps),
            Algo::LoPeAvl => run_experiment_full_ordered(LoPeAvlMap::<i64, u64>::new, spec, reps),
            Algo::LoBst => run_experiment_full_ordered(LoBstMap::<i64, u64>::new, spec, reps),
            Algo::LoPeBst => run_experiment_full_ordered(LoPeBstMap::<i64, u64>::new, spec, reps),
            Algo::Skiplist => run_experiment_full_ordered(SkipListMap::<i64, u64>::new, spec, reps),
            other => panic!(
                "{} only supports quiescent ordered access (QuiescentOrdered), \
                 not concurrent range scans",
                other.label()
            ),
        }
    }
}

/// Sweep parameters for a table reproduction.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Trial duration.
    pub trial: Duration,
    /// Repetitions per cell (arithmetic mean reported).
    pub reps: usize,
    /// Thread counts (the paper: 2^0..2^8).
    pub threads: Vec<usize>,
    /// Key ranges (the paper: 2·10⁴, 2·10⁵, 2·10⁶).
    pub ranges: Vec<u64>,
}

impl Scale {
    /// The paper's protocol.
    pub fn paper() -> Self {
        Self {
            trial: Duration::from_secs(5),
            reps: 8,
            threads: (0..=8).map(|i| 1usize << i).collect(),
            ranges: vec![20_000, 200_000, 2_000_000],
        }
    }

    /// A container-friendly smoke scale (minutes, not hours).
    pub fn smoke() -> Self {
        Self {
            trial: Duration::from_millis(300),
            reps: 2,
            threads: vec![1, 2, 4],
            ranges: vec![20_000, 200_000],
        }
    }

    /// `LO_FULL=1` selects the paper scale; anything else the smoke scale.
    /// `LO_TRIAL_MS`, `LO_REPS`, `LO_MAX_THREADS` override individual knobs;
    /// `LO_RANGES` (comma-separated key ranges, e.g. `20000,200000`) replaces
    /// the range sweep outright — handy for CI smoke runs.
    pub fn from_env() -> Self {
        let mut s = if std::env::var("LO_FULL").map(|v| v == "1").unwrap_or(false) {
            Self::paper()
        } else {
            Self::smoke()
        };
        if let Ok(Ok(ms)) = std::env::var("LO_TRIAL_MS").map(|v| v.parse::<u64>()) {
            s.trial = Duration::from_millis(ms);
        }
        if let Ok(Ok(r)) = std::env::var("LO_REPS").map(|v| v.parse::<usize>()) {
            s.reps = r.max(1);
        }
        if let Ok(Ok(t)) = std::env::var("LO_MAX_THREADS").map(|v| v.parse::<usize>()) {
            s.threads.retain(|&x| x <= t);
        }
        if let Ok(v) = std::env::var("LO_RANGES") {
            let ranges: Vec<u64> =
                v.split(',').filter_map(|x| x.trim().parse().ok()).collect();
            if !ranges.is_empty() {
                s.ranges = ranges;
            }
        }
        s
    }
}

/// Restricts an algorithm lineup via the `LO_ALGOS` environment variable
/// (comma-separated labels, e.g. `lo-avl,bcco`). Unknown labels are ignored;
/// an empty intersection falls back to the full lineup with a warning so a
/// typo cannot silently produce an empty table.
pub fn filter_algos(lineup: Vec<Algo>) -> Vec<Algo> {
    let Ok(v) = std::env::var("LO_ALGOS") else { return lineup };
    let want: Vec<&str> = v.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let filtered: Vec<Algo> =
        lineup.iter().copied().filter(|a| want.contains(&a.label())).collect();
    if filtered.is_empty() {
        eprintln!("warning: LO_ALGOS={v:?} matched no algorithm in this table; running all");
        lineup
    } else {
        filtered
    }
}

/// Runs one (mix, range) panel over `algos`, returning both the throughput
/// table and its event-telemetry companion. The telemetry panel carries, per
/// (algorithm, thread-count) cell, the counters summed over every measured
/// repetition — all zeros unless built with `--features metrics`.
pub fn run_panel_with_metrics(
    mix: Mix,
    range: u64,
    algos: &[Algo],
    scale: &Scale,
) -> (Panel, MetricsPanel) {
    run_panel_inner(mix, range, algos, scale, &|algo, spec, reps| algo.run_full(spec, reps))
}

/// [`run_panel_with_metrics`] for mixes containing range scans: every cell
/// runs through [`Algo::run_full_ordered`], so `algos` must all support
/// concurrent ordered reads.
pub fn run_panel_ordered(
    mix: Mix,
    range: u64,
    algos: &[Algo],
    scale: &Scale,
) -> (Panel, MetricsPanel) {
    run_panel_inner(mix, range, algos, scale, &|algo, spec, reps| {
        algo.run_full_ordered(spec, reps)
    })
}

fn run_panel_inner(
    mix: Mix,
    range: u64,
    algos: &[Algo],
    scale: &Scale,
    run: &dyn Fn(Algo, &TrialSpec, usize) -> Vec<TrialResult>,
) -> (Panel, MetricsPanel) {
    let title = format!("{}, key range {range}", mix.label());
    let mut panel = Panel::new(
        title.clone(),
        algos.iter().map(|a| a.label().to_string()).collect(),
        scale.threads.clone(),
    );
    let mut metrics = MetricsPanel::new(title);
    for (row, &threads) in scale.threads.iter().enumerate() {
        for (col, &algo) in algos.iter().enumerate() {
            let spec = TrialSpec::new(mix, range, threads, scale.trial);
            let trials = run(algo, &spec, scale.reps);
            let mops: Vec<f64> = trials.iter().map(TrialResult::mops).collect();
            let summary = Summary::of(&mops);
            panel.set(row, col, summary);
            let imbalance =
                trials.iter().map(|t| t.imbalance()).fold(f64::NAN, f64::max);
            let mut events = lo_metrics::Snapshot::zero();
            let mut total_ops = 0u64;
            for t in &trials {
                events.merge(&t.events);
                total_ops += t.total_ops;
            }
            metrics.push(MetricsEntry {
                algorithm: algo.label().to_string(),
                threads,
                total_ops,
                events,
                hists: Vec::new(),
            });
            eprintln!(
                "  [{}] threads={threads} {} -> {summary} imb={imbalance:.2}",
                panel.title,
                algo.label()
            );
        }
    }
    (panel, metrics)
}

/// Runs one (mix, range) panel over `algos` and returns the filled table.
pub fn run_panel(mix: Mix, range: u64, algos: &[Algo], scale: &Scale) -> Panel {
    run_panel_with_metrics(mix, range, algos, scale).0
}

/// Writes panels as text + CSV under `bench_results/`.
pub fn emit(panels: &[Panel], name: &str) {
    let dir = std::path::Path::new("bench_results");
    let _ = std::fs::create_dir_all(dir);
    let mut text = String::new();
    let mut csv = String::new();
    for p in panels {
        text.push_str(&p.render());
        text.push('\n');
        csv.push_str(&p.to_csv());
    }
    println!("{text}");
    let _ = std::fs::write(dir.join(format!("{name}.txt")), &text);
    let _ = std::fs::write(dir.join(format!("{name}.csv")), &csv);
    eprintln!("(wrote bench_results/{name}.txt and .csv)");
}

/// Whether `--summary-json` was passed on the command line. When set, the
/// table runners additionally append a machine-readable throughput summary
/// to `BENCH_throughput.json` (see [`emit_summary_json`]).
pub fn summary_json_flag() -> bool {
    std::env::args().any(|a| a == "--summary-json")
}

/// `cells[row][col]` → flat summary rows. A panel title has the shape
/// `"<mix>, key range <range>"`; the row's `config` is
/// `"<mix>/r<range>/<algorithm>"` so one string keys a comparable series
/// across runs. Cells that were never measured (`n == 0`) are skipped.
fn summary_rows(panels: &[Panel]) -> String {
    let mut rows = String::new();
    for p in panels {
        let series = p.title.replace(", key range ", "/r");
        for (r, &threads) in p.threads.iter().enumerate() {
            for (c, algo) in p.algorithms.iter().enumerate() {
                let s = p.cells[r][c];
                if s.n == 0 {
                    continue;
                }
                if !rows.is_empty() {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "      {{\"config\": \"{series}/{algo}\", \"threads\": {threads}, \
                     \"ops_per_us_mean\": {:.6}, \"ops_per_us_sd\": {:.6}, \"reps\": {}}}",
                    s.mean, s.stddev, s.n
                ));
            }
        }
    }
    rows
}

/// One run object for the summary file (hand-rolled JSON: every field is
/// numeric or a label with no characters needing escapes beyond quotes).
/// Production emission goes through [`emit_summary_run`]; this composed
/// form is kept for the document round-trip tests.
#[cfg(test)]
fn summary_run_json(panels: &[Panel], table: &str, label: &str) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        "  {{\n    \"label\": \"{}\",\n    \"table\": \"{}\",\n    \"rows\": [\n{}\n    ]\n  }}",
        esc(label),
        esc(table),
        summary_rows(panels)
    )
}

/// Wraps a first run object in a fresh summary document.
fn summary_new_doc(run: &str) -> String {
    format!(
        "{{\n\"schema\": \"lo-bench-throughput-v1\",\n\"unit\": \"ops/us (= Mops/s)\",\n\
         \"runs\": [\n{run}\n]\n}}\n"
    )
}

/// Inserts `run` before the closing `]` of the document's `runs` array.
/// Returns `None` when the document does not look like one of ours (caller
/// then rewrites it from scratch). The runs array's `]` is the last bracket
/// in the file — only the object's `}` follows it — so `rfind` is exact.
fn summary_append_doc(existing: &str, run: &str) -> Option<String> {
    let close = existing.rfind(']')?;
    let before = existing[..close].trim_end();
    let sep = if before.ends_with('[') { "\n" } else { ",\n" };
    Some(format!("{before}{sep}{run}\n{}", &existing[close..]))
}

/// Appends one run (label × config × threads → ops/µs mean ± sd) to the
/// throughput-summary JSON at `LO_SUMMARY_PATH` (default
/// `BENCH_throughput.json` in the working directory — repo root when run via
/// `cargo run`). `LO_SUMMARY_LABEL` names the run (default `local`); commit
/// the file to track before/after numbers across changes.
pub fn emit_summary_json(panels: &[Panel], table: &str) {
    emit_summary_run(&summary_rows(panels), table);
}

/// One flat throughput-summary row for [`emit_summary_rows`] — used by
/// benches whose config strings do not follow the panel convention
/// `<mix>/r<range>/<algo>` (e.g. the range-scan rows, keyed
/// `range-scan/<algo>/<len>`).
#[derive(Clone, Debug)]
pub struct SummaryRow {
    /// Series key, stable across runs (e.g. `range-scan/lo-avl/64`).
    pub config: String,
    /// Worker threads.
    pub threads: usize,
    /// Mean throughput in ops/µs (= Mops/s).
    pub mean: f64,
    /// Standard deviation over the repetitions.
    pub stddev: f64,
    /// Number of repetitions.
    pub reps: usize,
}

/// Appends one run built from explicit rows to the throughput-summary JSON
/// (same document and env knobs as [`emit_summary_json`]).
pub fn emit_summary_rows(rows: &[SummaryRow], table: &str) {
    let mut body = String::new();
    for r in rows {
        if !body.is_empty() {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "      {{\"config\": \"{}\", \"threads\": {}, \
             \"ops_per_us_mean\": {:.6}, \"ops_per_us_sd\": {:.6}, \"reps\": {}}}",
            r.config, r.threads, r.mean, r.stddev, r.reps
        ));
    }
    emit_summary_run(&body, table);
}

/// Shared tail of the summary emitters: wraps pre-rendered rows in a run
/// object and appends it to (or creates) the summary document.
fn emit_summary_run(rows: &str, table: &str) {
    let path = std::env::var("LO_SUMMARY_PATH")
        .unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    let label =
        std::env::var("LO_SUMMARY_LABEL").unwrap_or_else(|_| "local".to_string());
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let run = format!(
        "  {{\n    \"label\": \"{}\",\n    \"table\": \"{}\",\n    \"rows\": [\n{}\n    ]\n  }}",
        esc(&label),
        esc(table),
        rows
    );
    let doc = match std::fs::read_to_string(&path) {
        Ok(existing) => summary_append_doc(&existing, &run)
            .unwrap_or_else(|| summary_new_doc(&run)),
        Err(_) => summary_new_doc(&run),
    };
    match std::fs::write(&path, &doc) {
        Ok(()) => eprintln!("(appended run {label:?} for {table} to {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Writes event-telemetry panels as text + CSV + JSON under `bench_results/`.
pub fn emit_metrics(panels: &[MetricsPanel], name: &str) {
    let dir = std::path::Path::new("bench_results");
    let _ = std::fs::create_dir_all(dir);
    let mut text = String::new();
    let mut csv = String::new();
    let mut json = String::from("[");
    for (i, p) in panels.iter().enumerate() {
        text.push_str(&p.render());
        text.push('\n');
        if i == 0 {
            csv.push_str(&p.to_csv());
        } else {
            // Skip the repeated header when concatenating panels.
            let body = p.to_csv();
            csv.push_str(body.split_once('\n').map(|(_, b)| b).unwrap_or(""));
        }
        if i > 0 {
            json.push(',');
        }
        json.push_str(&p.to_json());
    }
    json.push(']');
    println!("{text}");
    let _ = std::fs::write(dir.join(format!("{name}.txt")), &text);
    let _ = std::fs::write(dir.join(format!("{name}.csv")), &csv);
    let _ = std::fs::write(dir.join(format!("{name}.json")), &json);
    eprintln!("(wrote bench_results/{name}.txt, .csv and .json)");
}

/// Whether `--trace` (or `--trace-out`) was passed on the command line.
/// When set, the binary enables flight recording
/// ([`lo_trace::set_recording`]) for its measured trials and writes the
/// trace artifacts on exit (see [`emit_trace`]). Warns when tracing is
/// requested from a build without the `trace` feature, where every probe is
/// compiled out and the trace would be empty.
pub fn trace_flag() -> bool {
    let want = std::env::args().any(|a| {
        a == "--trace" || a == "--trace-out" || a.starts_with("--trace-out=")
    });
    if want && !lo_trace::ENABLED {
        eprintln!(
            "warning: --trace requested but this binary was built without \
             the `trace` feature; spans are compiled out (rebuild with \
             `--features trace` for a real flight recording)"
        );
    }
    want
}

/// The `--trace-out PATH` (or `--trace-out=PATH`) argument: where
/// [`emit_trace`] writes the Chrome Trace Event JSON. Defaults to
/// `bench_results/trace.json` when only `--trace` was given.
pub fn trace_out() -> String {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            if let Some(p) = args.next() {
                return p;
            }
        } else if let Some(p) = a.strip_prefix("--trace-out=") {
            return p.to_string();
        }
    }
    "bench_results/trace.json".to_string()
}

/// Writes the accumulated flight recording as Chrome Trace Event JSON to
/// `path` (open it in Perfetto / `chrome://tracing`) and the Prometheus
/// text exposition — event counters plus per-phase duration histograms —
/// next to it with a `.prom` extension.
pub fn emit_trace(path: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let records = lo_trace::flight::merged_records();
    match std::fs::write(path, lo_trace::export::chrome_trace_json(&records)) {
        Ok(()) => eprintln!("(wrote {} flight records to {path})", records.len()),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    let snap = lo_trace::TraceSnapshot::take();
    let events = lo_metrics::Snapshot::take();
    let counters =
        lo_metrics::Event::ALL.iter().map(|&e| (e.name(), events.get(e)));
    let prom_path = std::path::Path::new(path).with_extension("prom");
    let text = lo_trace::export::prometheus_text(counters, &snap);
    match std::fs::write(&prom_path, text) {
        Ok(()) => eprintln!("(wrote Prometheus exposition to {})", prom_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", prom_path.display()),
    }
}

/// Renders the lock-wait / lock-hold evidence from a trace snapshot: one
/// line per phase with count, mean, and p50/p99/p999 — the succ-lock vs
/// tree-lock wait and hold histograms the tracing layer exists to surface.
/// Returns `"(no spans recorded)"` for an empty snapshot.
pub fn render_phase_table(snap: &lo_trace::TraceSnapshot) -> String {
    use std::fmt::Write as _;
    if snap.is_zero() {
        return "(no spans recorded)\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16}{:>12}{:>10}{:>10}{:>10}{:>10}",
        "phase", "spans", "mean", "p50", "p99", "p999"
    );
    for &p in &lo_trace::Phase::ALL {
        let h = snap.phase(p);
        if h.count() == 0 {
            continue;
        }
        let q = |q: f64| h.quantile(q).map(lo_workload::fmt_ns).unwrap_or_default();
        let mean = h.mean().map(|m| lo_workload::fmt_ns(m as u64)).unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<16}{:>12}{:>10}{:>10}{:>10}{:>10}",
            p.name(),
            h.count(),
            mean,
            q(0.50),
            q(0.99),
            q(0.999)
        );
    }
    out
}

/// Whether `--metrics` was passed on the command line. Warns (once) when
/// telemetry is requested from a build without the `metrics` feature, where
/// every counter is compiled out and the output would be all zeros.
pub fn metrics_flag() -> bool {
    let want = std::env::args().any(|a| a == "--metrics");
    if want && !lo_metrics::ENABLED {
        eprintln!(
            "warning: --metrics requested but this binary was built without \
             the `metrics` feature; counters are compiled out (rebuild with \
             `--features metrics` for real telemetry)"
        );
    }
    want
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let mut all = Algo::table1();
        all.extend(Algo::table2());
        all.push(Algo::Coarse);
        let mut labels: Vec<_> = all.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn scale_env_default_is_smoke() {
        let s = Scale::from_env();
        assert!(s.trial <= Duration::from_secs(5));
        assert!(!s.threads.is_empty());
    }

    fn summary_sample_panel() -> Panel {
        let mut p = Panel::new(
            "70c-20i-10r, key range 20000",
            vec!["lo-avl".into(), "bcco".into()],
            vec![1, 2],
        );
        p.set(0, 0, Summary { mean: 1.5, stddev: 0.1, n: 2 });
        p.set(1, 1, Summary { mean: 2.25, stddev: 0.05, n: 2 });
        // (0,1) and (1,0) stay unmeasured (n == 0) and must be skipped.
        p
    }

    #[test]
    fn summary_rows_shape() {
        let rows = summary_rows(&[summary_sample_panel()]);
        assert!(rows.contains("\"config\": \"70c-20i-10r/r20000/lo-avl\""));
        assert!(rows.contains("\"config\": \"70c-20i-10r/r20000/bcco\""));
        assert!(rows.contains("\"ops_per_us_mean\": 1.500000"));
        assert!(rows.contains("\"threads\": 2"));
        // Two measured cells, two unmeasured ones skipped.
        assert_eq!(rows.matches("\"config\"").count(), 2);
    }

    #[test]
    fn summary_doc_new_and_append() {
        let run1 = summary_run_json(&[summary_sample_panel()], "table1_balanced", "base");
        let doc1 = summary_new_doc(&run1);
        assert!(doc1.starts_with("{\n\"schema\": \"lo-bench-throughput-v1\""));
        assert!(doc1.contains("\"label\": \"base\""));
        let run2 = summary_run_json(&[summary_sample_panel()], "table1_balanced", "after");
        let doc2 = summary_append_doc(&doc1, &run2).expect("append into our own doc");
        assert_eq!(doc2.matches("\"label\"").count(), 2);
        assert!(doc2.contains("\"label\": \"after\""));
        // Still one runs array, properly comma-separated: appending again works.
        let doc3 = summary_append_doc(&doc2, &run2).expect("append twice");
        assert_eq!(doc3.matches("\"label\"").count(), 3);
        assert!(summary_append_doc("no brackets here", &run1).is_none());
    }

    #[test]
    fn filter_algos_without_env_is_identity() {
        // LO_ALGOS handling itself is env-dependent; only the default path is
        // test-stable (process env is shared across the test harness).
        if std::env::var("LO_ALGOS").is_err() {
            assert_eq!(filter_algos(Algo::table1()), Algo::table1());
        }
    }

    #[test]
    fn tiny_panel_runs() {
        let scale = Scale {
            trial: Duration::from_millis(30),
            reps: 1,
            threads: vec![1, 2],
            ranges: vec![256],
        };
        let (panel, metrics) =
            run_panel_with_metrics(Mix::C70_I20_R10, 256, &[Algo::LoBst, Algo::Efrb], &scale);
        assert_eq!(panel.threads, vec![1, 2]);
        for row in &panel.cells {
            for cell in row {
                assert!(cell.mean > 0.0, "throughput must be positive");
            }
        }
        // One telemetry entry per (thread count × algorithm) cell.
        assert_eq!(metrics.entries.len(), 2 * 2);
        for e in &metrics.entries {
            assert!(e.total_ops > 0);
            // With the feature on, the instrumented lo-bst must have counted
            // at least its tree descents; without it, counters stay zero.
            if lo_metrics::ENABLED && e.algorithm == "lo-bst" {
                assert!(
                    e.events.get(lo_metrics::Event::SearchDescent) > 0,
                    "instrumented tree recorded nothing"
                );
            }
            if !lo_metrics::ENABLED {
                assert!(e.events.is_zero());
            }
        }
    }
}
