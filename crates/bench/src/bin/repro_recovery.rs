//! Extension experiment: **online recovery latency** — how long does
//! `try_recover` take to bring a poisoned tree of `n` keys back to
//! `Health::Writable`?
//!
//! Each cell prefills a fresh logical-ordering map with `n` keys, kills a
//! remove inside its post-mark window with a one-shot failpoint panic
//! (poisoning the tree exactly as a real mid-write death would), then
//! times the full quarantine → audit → repair → verify → resume pipeline.
//! Two rows per (algorithm, n): the natural strategy the damage selects
//! (an in-place layout rebuild from the surviving ordering chain) and the
//! forced streaming rebuild into fresh nodes — the conservative path a
//! genuine panic takes.
//!
//! With `--summary-json`, rows land in `BENCH_throughput.json` keyed
//! `recovery/<algo>/<n>` (and `recovery/<algo>/<n>/streaming`). Like the
//! `latency/` rows, the value in `ops_per_us_mean` is a **latency in
//! nanoseconds**; the `recovery/` config prefix marks the unit switch.
//!
//! Usage: `cargo run -p lo-bench --release --features failpoints --bin
//! repro-recovery`. Without `lo-core/failpoints` the kill cannot fire;
//! the binary detects that and exits cleanly so no-op CI builds stay
//! green. `LO_RANGES`/`LO_REPS` rescale as usual.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use lo_bench::{emit_summary_rows, summary_json_flag, Scale, SummaryRow};
use lo_check::fail::{activate, panic_message, take_injected_panic, FailPoint, FaultPlan};
use lo_core::{FallibleMap, Health, LoAvlMap, LoBstMap, LoPeAvlMap, RecoveryReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The injected kill fires once per cell; keep its panic report out of the
/// table. Everything else still reaches the default hook.
fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if panic_message(info.payload()).is_some_and(|m| m.contains("[lo-fault:")) {
            return;
        }
        prev(info);
    }));
}

/// Poisons `map` (prefilled with `n` keys) via a one-shot panic in the
/// post-mark remove window (`RemoveAfterMark`, or its partially-external
/// flavor `PeAfterMark`). A PE removal of a two-children key only turns
/// the node zombie and crosses neither window, so the victim walks
/// forward until a remove takes the physical path. Returns false when
/// injection is compiled out.
fn poison<M: FallibleMap<i64, u64>>(map: &M, n: u64, seed: u64) -> bool {
    let session = activate(
        FaultPlan::new(seed)
            .panic_at(FailPoint::RemoveAfterMark)
            .panic_at(FailPoint::PeAfterMark),
    );
    let mut died = false;
    for k in 0..n.min(64) {
        let victim = ((n / 2 + k) % n) as i64;
        died = catch_unwind(AssertUnwindSafe(|| {
            let _ = map.try_remove(&victim);
        }))
        .is_err();
        if died || !matches!(map.health(), Health::Writable) {
            break;
        }
    }
    drop(session);
    let _ = take_injected_panic();
    died && matches!(map.health(), Health::Poisoned(_))
}

/// One (algorithm, n, strategy) cell: `reps` kill→recover cycles on fresh
/// maps, each timing `try_recover` alone. Returns (mean_ns, stddev_ns) and
/// the last report, or None when injection is compiled out.
fn cell<M, F>(make: F, n: u64, reps: usize, streaming: bool) -> Option<(f64, f64, RecoveryReport)>
where
    M: FallibleMap<i64, u64>,
    F: Fn() -> M,
{
    let mut samples = Vec::with_capacity(reps);
    let mut last = None;
    // Shuffled prefill: sequential keys would degenerate the unbalanced
    // BST variants into an O(n²) chain before the clock even starts.
    let mut keys: Vec<i64> = (0..n as i64).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(0x5EED ^ n));
    for rep in 0..reps {
        let map = make();
        for &k in &keys {
            map.try_insert(k, k as u64).expect("prefill on a healthy map");
        }
        if !poison(&map, n, 0xBE9C + rep as u64) {
            return None;
        }
        lo_core::force_streaming_rebuild(streaming);
        let t0 = Instant::now();
        let report = map.try_recover().expect("recovery of a freshly poisoned map");
        let dt = t0.elapsed();
        lo_core::force_streaming_rebuild(false);
        assert_eq!(map.health(), Health::Writable, "recovered map must be writable");
        samples.push(dt.as_nanos() as f64);
        last = Some(report);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var =
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    Some((mean, var.sqrt(), last.expect("reps >= 1")))
}

fn main() {
    silence_injected_panics();
    let scale = Scale::from_env();
    let want_summary = summary_json_flag();
    println!("### online recovery latency (try_recover to Health::Writable), reps {}", scale.reps);
    println!(
        "{:<12}{:>10}  {:<12}{:>14}{:>12}{:>10}",
        "algorithm", "n", "strategy", "mean", "sd", "salvaged"
    );

    let mut rows: Vec<SummaryRow> = Vec::new();
    for &n in &scale.ranges {
        // (label, runner) per map flavor; monomorphized through the closure.
        let mut run = |label: &str, out: Option<(f64, f64, RecoveryReport)>, streaming: bool| {
            let Some((mean, sd, report)) = out else {
                eprintln!("failpoints are compiled out (build with --features failpoints); \
                           nothing to measure");
                std::process::exit(0);
            };
            let strategy = format!("{:?}", report.strategy);
            println!(
                "{label:<12}{n:>10}  {strategy:<12}{:>12}ns{:>10}ns{:>10}",
                mean as u64, sd as u64, report.nodes_salvaged
            );
            let suffix = if streaming { "/streaming" } else { "" };
            rows.push(SummaryRow {
                config: format!("recovery/{label}/{n}{suffix}"),
                threads: 1,
                mean,
                stddev: sd,
                reps: scale.reps,
            });
        };
        for streaming in [false, true] {
            run("lo-avl", cell(LoAvlMap::new, n, scale.reps, streaming), streaming);
            run("lo-avl-pe", cell(LoPeAvlMap::new, n, scale.reps, streaming), streaming);
            run("lo-bst", cell(LoBstMap::new, n, scale.reps, streaming), streaming);
        }
    }

    if want_summary {
        emit_summary_rows(&rows, "recovery");
    }
}
