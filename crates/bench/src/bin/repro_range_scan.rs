//! Range-scan benchmark (extension): throughput of a mixed workload whose
//! scans stream through each structure's *concurrent* ordered-read path —
//! the logical-ordering trees via the epoch-pinned succ-chain cursor
//! (paper §4.7 generalized), the skip list via its sorted bottom level —
//! at scan lengths 8 / 64 / 512 under a 50c-20i-10r-20s update load.
//!
//! The external-tree baselines (BCCO, CF, chromatic, EFRB, NM) cannot
//! appear here: they have no ordering layer, so they only implement
//! `QuiescentOrdered` and the ordered runner rejects them at compile time.
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-range-scan`
//! (`--summary-json` appends `range-scan/<algo>/<len>` rows, labelled by
//! `LO_SUMMARY_LABEL`, to `BENCH_throughput.json`; `LO_SCAN_LENS`
//! (comma-separated) overrides the scan-length sweep; `LO_RANGES` and
//! `LO_ALGOS` narrow the sweep as usual. `--trace`/`--trace-out` record
//! and export the hot-path flight recorder — scan repins show up as
//! `scan-repin` spans — build with `--features trace`.)

use lo_bench::{
    emit, emit_metrics, emit_summary_rows, emit_trace, filter_algos, metrics_flag,
    render_phase_table, run_panel_ordered, summary_json_flag, trace_flag, trace_out, Algo, Scale,
    SummaryRow,
};
use lo_workload::Mix;

/// The paper-style update load around the scans: 50% contains, 20% insert,
/// 10% remove, 20% range scans of `len` keys.
fn scan_mix(len: u32) -> Mix {
    Mix::with_range(50, 20, 10, 20, len)
}

fn scan_lens() -> Vec<u32> {
    if let Ok(v) = std::env::var("LO_SCAN_LENS") {
        let lens: Vec<u32> = v.split(',').filter_map(|x| x.trim().parse().ok()).collect();
        if !lens.is_empty() {
            return lens;
        }
    }
    vec![8, 64, 512]
}

fn main() {
    let want_metrics = metrics_flag();
    let want_summary = summary_json_flag();
    let want_trace = trace_flag();
    if want_trace {
        lo_trace::set_recording(true);
    }
    let scale = Scale::from_env();
    let algos = filter_algos(Algo::range_scan_lineup());
    assert!(algos.iter().all(|a| a.supports_ordered()), "lineup must be OrderedRead-capable");
    let lens = scan_lens();
    eprintln!(
        "Range scans: lens {lens:?}, {:?} trials x{} reps, threads {:?}, ranges {:?}",
        scale.trial, scale.reps, scale.threads, scale.ranges
    );
    let mut panels = Vec::new();
    let mut metrics = Vec::new();
    let mut rows = Vec::new();
    for &len in &lens {
        for &range in &scale.ranges {
            let (panel, m) = run_panel_ordered(scan_mix(len), range, &algos, &scale);
            // Flat summary rows keyed `range-scan/<algo>/<len>`; with more
            // than one key range, the widest-sweep rows keep the short key
            // and narrower ranges are suffixed to stay distinguishable.
            for (r, &threads) in panel.threads.iter().enumerate() {
                for (c, algo) in panel.algorithms.iter().enumerate() {
                    let s = panel.cells[r][c];
                    if s.n == 0 {
                        continue;
                    }
                    let config = if range == scale.ranges[0] {
                        format!("range-scan/{algo}/{len}")
                    } else {
                        format!("range-scan/{algo}/{len}/r{range}")
                    };
                    rows.push(SummaryRow {
                        config,
                        threads,
                        mean: s.mean,
                        stddev: s.stddev,
                        reps: s.n,
                    });
                }
            }
            panels.push(panel);
            metrics.push(m);
        }
    }
    emit(&panels, "range_scan");
    if want_summary {
        emit_summary_rows(&rows, "range_scan");
    }
    if want_metrics {
        emit_metrics(&metrics, "range_scan_metrics");
    }
    if want_trace {
        lo_trace::set_recording(false);
        println!("### lock windows and hot-path phases (trace)");
        print!("{}", render_phase_table(&lo_trace::TraceSnapshot::take()));
        emit_trace(&trace_out());
    }
}
