//! Extension experiment (not in the paper): skew sensitivity.
//!
//! The paper draws keys uniformly; real workloads are often Zipf-skewed,
//! which concentrates contention on a few interval locks and stresses the
//! balanced trees' hot paths differently. This binary sweeps Zipf θ for the
//! balanced lineup at a fixed mix/range/thread count.
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-zipf`

use lo_bench::{emit, Algo, Scale};
use lo_workload::{KeyDist, Mix, Panel, Summary, TrialSpec};

fn main() {
    let scale = Scale::from_env();
    let full = std::env::var("LO_FULL").map(|v| v == "1").unwrap_or(false);
    let range: u64 = if full { 200_000 } else { 20_000 };
    let threads = *scale.threads.last().expect("non-empty thread list");
    let thetas = [0.0, 0.5, 0.9, 1.1];
    let algos = Algo::table1();

    let mut panel = Panel::new(
        format!("zipf sweep, 70c-20i-10r, range {range}, {threads} threads (rows = θ×100)"),
        algos.iter().map(|a| a.label().to_string()).collect(),
        thetas.iter().map(|t| (t * 100.0) as usize).collect(),
    );
    for (row, &theta) in thetas.iter().enumerate() {
        for (col, &algo) in algos.iter().enumerate() {
            let mut spec = TrialSpec::new(Mix::C70_I20_R10, range, threads, scale.trial);
            if theta > 0.0 {
                spec.dist = KeyDist::Zipf(theta);
            }
            let reps = algo.run(&spec, scale.reps);
            let summary = Summary::of(&reps);
            panel.set(row, col, summary);
            eprintln!("  theta={theta} {} -> {summary}", algo.label());
        }
    }
    emit(&[panel], "zipf_sweep");
}
