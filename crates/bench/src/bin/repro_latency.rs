//! Extension experiment: **per-operation latency** under the paper's
//! write-heavy mix.
//!
//! The paper's qualitative argument for lock-free `contains` is robustness:
//! a lookup can never wait for a rebalance, a lock, or a preempted lock
//! holder. Throughput tables hide this; tail latency shows it. Every worker
//! samples its own operation latencies into per-kind log₂ histograms
//! ([`TrialSpec::with_latency`]), so the table reports p50/p90/p99/p999 for
//! `contains`, `insert` and `remove` separately — the blocking coarse
//! RwLock reference is included as the extreme.
//!
//! With `--summary-json`, each (algorithm, op, percentile) cell is appended
//! to `BENCH_throughput.json` as a row keyed `latency/<algo>/<op>/<pXX>`.
//! Latency rows ride the same schema as throughput rows: the value lands in
//! `ops_per_us_mean` but is a **latency in nanoseconds** (sd = 0); the
//! `latency/` config prefix is what marks the unit switch.
//!
//! With `--trace` (build with `--features trace`), the run also prints the
//! lock-window evidence — succ-lock vs tree-lock wait and hold histograms —
//! and `--trace-out PATH` writes the merged flight recording as Chrome
//! Trace Event JSON (open in Perfetto).
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-latency`
//! (`LO_FULL=1` for longer trials; `LO_ALGOS` filters the lineup.)

use std::time::Duration;

use lo_bench::{
    emit_summary_rows, emit_trace, filter_algos, render_phase_table, summary_json_flag,
    trace_flag, trace_out, Algo, SummaryRow,
};
use lo_workload::{fmt_ns, Mix, OpKind, TrialSpec};

/// The reported percentiles, labelled for the summary-row config key.
const PERCENTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

fn main() {
    let want_summary = summary_json_flag();
    let want_trace = trace_flag();
    let full = std::env::var("LO_FULL").map(|v| v == "1").unwrap_or(false);
    let spec = TrialSpec::new(
        Mix::C50_I25_R25,
        if full { 200_000 } else { 20_000 },
        4,
        if full { Duration::from_secs(5) } else { Duration::from_millis(500) },
    )
    .with_latency();

    let algos = filter_algos(vec![
        Algo::LoAvl,
        Algo::LoPeAvl,
        Algo::Bcco,
        Algo::Cf,
        Algo::Skiplist,
        Algo::Coarse,
    ]);
    println!(
        "### per-op latency, {} mix, range {}, {} threads, {:?}",
        spec.mix.label(),
        spec.key_range,
        spec.threads,
        spec.duration
    );
    println!(
        "{:<12}{:<12}{:>12}{:>10}{:>10}{:>10}{:>10}",
        "algorithm", "op", "samples", "p50", "p90", "p99", "p999"
    );

    if want_trace {
        lo_trace::set_recording(true);
    }
    let trace_before = lo_trace::TraceSnapshot::take();

    let mut lines = String::new();
    let mut rows: Vec<SummaryRow> = Vec::new();
    for algo in algos {
        let trial = algo
            .run_full(&spec, 1)
            .into_iter()
            .next()
            .expect("one repetition");
        let latency = trial.latency.as_ref().expect("sampled trial carries latency");
        for kind in [OpKind::Contains, OpKind::Insert, OpKind::Remove] {
            let hist = latency.kind(kind);
            let cells: Vec<String> = PERCENTILES
                .iter()
                .map(|&(_, q)| hist.quantile(q).map(fmt_ns).unwrap_or_else(|| "-".into()))
                .collect();
            let line = format!(
                "{:<12}{:<12}{:>12}{:>10}{:>10}{:>10}{:>10}",
                algo.label(),
                kind.label(),
                hist.count(),
                cells[0],
                cells[1],
                cells[2],
                cells[3]
            );
            println!("{line}");
            lines.push_str(&line);
            lines.push('\n');
            for &(name, q) in &PERCENTILES {
                let Some(ns) = hist.quantile(q) else { continue };
                rows.push(SummaryRow {
                    config: format!("latency/{}/{}/{name}", algo.label(), kind.label()),
                    threads: spec.threads,
                    mean: ns as f64,
                    stddev: 0.0,
                    reps: 1,
                });
            }
        }
    }

    let _ = std::fs::create_dir_all("bench_results");
    let _ = std::fs::write("bench_results/latency.txt", &lines);
    eprintln!("(wrote bench_results/latency.txt)");

    if want_summary {
        emit_summary_rows(&rows, "latency_per_op");
    }
    if want_trace {
        lo_trace::set_recording(false);
        let snap = lo_trace::TraceSnapshot::take().since(&trace_before);
        println!("\n### lock windows and hot-path phases (trace)");
        print!("{}", render_phase_table(&snap));
        emit_trace(&trace_out());
    }
}
