//! Extension experiment: **lookup tail latency** under update load.
//!
//! The paper's qualitative argument for lock-free `contains` is robustness:
//! a lookup can never wait for a rebalance, a lock, or a preempted lock
//! holder. Throughput tables hide this; tail latency shows it. One reader
//! thread samples `contains` latency while writers churn; we report
//! p50/p99/p999 per algorithm (the coarse RwLock reference is included as
//! the blocking extreme).
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-latency`

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use lo_api::ConcurrentMap;
use lo_baselines::{BccoTreeMap, CfTreeMap, CoarseAvlMap, SkipListMap};
use lo_core::LoAvlMap;
use lo_workload::{prefill, LatencyHistogram, Mix, SplitMix64, TrialSpec, XorShift64Star};

fn measure<M: ConcurrentMap<i64, u64> + Sync>(map: M, spec: &TrialSpec) -> LatencyHistogram {
    prefill(&map, spec);
    let stop = AtomicBool::new(false);
    let mut seeder = SplitMix64::new(spec.seed);
    let writer_seeds: Vec<u64> = (0..spec.threads.saturating_sub(1)).map(|_| seeder.next_u64()).collect();
    let reader_seed = seeder.next_u64();

    std::thread::scope(|s| {
        let map = &map;
        let stop = &stop;
        // Writers: 50/50 insert/remove churn.
        for &seed in &writer_seeds {
            s.spawn(move || {
                let mut rng = XorShift64Star::new(seed);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.next_below(spec.key_range) as i64;
                    if rng.next_u64() & 1 == 0 {
                        map.insert(k, k as u64);
                    } else {
                        map.remove(&k);
                    }
                }
            });
        }
        // Reader: sample contains latency.
        let reader = s.spawn(move || {
            let mut rng = XorShift64Star::new(reader_seed);
            let mut hist = LatencyHistogram::new();
            while !stop.load(Ordering::Relaxed) {
                let k = rng.next_below(spec.key_range) as i64;
                hist.time(|| std::hint::black_box(map.contains(&k)));
            }
            hist
        });
        std::thread::sleep(spec.duration);
        stop.store(true, Ordering::Relaxed);
        reader.join().expect("reader")
    })
}

fn main() {
    let full = std::env::var("LO_FULL").map(|v| v == "1").unwrap_or(false);
    let spec = TrialSpec::new(
        Mix::C50_I25_R25, // prefill ratio source; churn is 50/50 anyway
        if full { 200_000 } else { 20_000 },
        4, // 1 reader + 3 writers
        if full { Duration::from_secs(5) } else { Duration::from_millis(700) },
    );
    println!(
        "### contains() latency under churn: range {}, 3 writers, {:?}",
        spec.key_range, spec.duration
    );
    println!("{:<16}{:>12}{}", "algorithm", "samples", "  latency");

    let mut lines = String::new();
    macro_rules! row {
        ($label:expr, $map:expr) => {{
            let hist = measure($map, &spec);
            let line = format!("{:<16}{:>12}  {}", $label, hist.count(), hist.summary());
            println!("{line}");
            lines.push_str(&line);
            lines.push('\n');
        }};
    }
    row!("lo-avl", LoAvlMap::<i64, u64>::new());
    row!("bcco", BccoTreeMap::<i64, u64>::new());
    row!("cf", CfTreeMap::<i64, u64>::new());
    row!("skiplist", SkipListMap::<i64, u64>::new());
    row!("coarse-rwlock", CoarseAvlMap::<i64, u64>::new());

    let _ = std::fs::create_dir_all("bench_results");
    let _ = std::fs::write("bench_results/latency.txt", lines);
}
