//! Reproduces **Table 2** of the paper: throughput of the *unbalanced*
//! dictionaries (LO-BST, its logical-removing variant, EFRB; plus the
//! Natarajan–Mittal tree as a cited extension) for the 70c-20i-10r and
//! 100c-0i-0r mixes. (The paper notes 50-25-25 produces similar results to
//! 70-20-10; pass `LO_TABLE2_ALL_MIXES=1` to include it anyway.)
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-table2`
//! (`--metrics` additionally emits per-trial event telemetry — build with
//! `--features metrics` so the counters are actually recorded.
//! `--summary-json` appends a machine-readable run, labelled by
//! `LO_SUMMARY_LABEL`, to `BENCH_throughput.json`; `LO_RANGES` and
//! `LO_ALGOS` narrow the sweep. `--trace`/`--trace-out` record and export
//! the hot-path flight recorder — build with `--features trace`.)

use lo_bench::{
    emit, emit_metrics, emit_summary_json, emit_trace, filter_algos, metrics_flag,
    render_phase_table, run_panel_with_metrics, summary_json_flag, trace_flag, trace_out, Algo,
    Scale,
};
use lo_workload::Mix;

fn main() {
    let want_metrics = metrics_flag();
    let want_summary = summary_json_flag();
    let want_trace = trace_flag();
    if want_trace {
        lo_trace::set_recording(true);
    }
    let scale = Scale::from_env();
    let algos = filter_algos(Algo::table2());
    let mut mixes = vec![Mix::C70_I20_R10, Mix::C100];
    if std::env::var("LO_TABLE2_ALL_MIXES").map(|v| v == "1").unwrap_or(false) {
        mixes.insert(0, Mix::C50_I25_R25);
    }
    eprintln!(
        "Table 2: {:?} trials x{} reps, threads {:?}, ranges {:?}",
        scale.trial, scale.reps, scale.threads, scale.ranges
    );
    let mut panels = Vec::new();
    let mut metrics = Vec::new();
    for mix in mixes {
        for &range in &scale.ranges {
            let (panel, m) = run_panel_with_metrics(mix, range, &algos, &scale);
            panels.push(panel);
            metrics.push(m);
        }
    }
    emit(&panels, "table2_unbalanced");
    if want_summary {
        emit_summary_json(&panels, "table2_unbalanced");
    }
    if want_metrics {
        emit_metrics(&metrics, "table2_unbalanced_metrics");
    }
    if want_trace {
        lo_trace::set_recording(false);
        println!("### lock windows and hot-path phases (trace)");
        print!("{}", render_phase_table(&lo_trace::TraceSnapshot::take()));
        emit_trace(&trace_out());
    }
}
