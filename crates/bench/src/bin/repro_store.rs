//! Service-tier throughput rows (ISSUE 10): the keyspace-sharded store
//! (`lo-store`) under the paper's trial protocol, as two ablations —
//!
//! * **1 vs N shards** — does splitting the keyspace into independent
//!   trees (each with its own lock windows *and* its own epoch domain) buy
//!   throughput under an update-heavy mix?
//! * **direct vs batched** — what does the flat-combining frontend cost or
//!   save relative to routing every op straight to its shard?
//!
//! Rows are keyed `store/<shards>/<frontend>/<mix>` in
//! `BENCH_throughput.json` (via `--summary-json`), so the 10c-60i-30r
//! N-shard vs single-shard comparison is one grep away.
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-store -- --summary-json`
//! (`LO_STORE_SHARDS` sets N, default 4; the usual `LO_TRIAL_MS`,
//! `LO_REPS`, `LO_MAX_THREADS` knobs apply. `--metrics` — with
//! `--features metrics` — adds the store's event telemetry including the
//! combiner batch-size log₂ histogram.)

use lo_bench::{
    emit, emit_metrics, emit_summary_rows, metrics_flag, summary_json_flag, Scale, SummaryRow,
};
use lo_store::{BatchedStore, ShardedStore};
use lo_workload::{
    run_experiment_full, MetricsEntry, MetricsPanel, Mix, Panel, Summary, TrialResult, TrialSpec,
};

/// The two frontends under measurement.
#[derive(Clone, Copy, PartialEq)]
enum Frontend {
    /// Every operation routed straight to its shard's tree.
    Direct,
    /// Writes funneled through the per-shard flat-combining lanes.
    Batched,
}

impl Frontend {
    fn label(self) -> &'static str {
        match self {
            Frontend::Direct => "direct",
            Frontend::Batched => "batched",
        }
    }
}

fn run(shards: usize, frontend: Frontend, spec: &TrialSpec, reps: usize) -> Vec<TrialResult> {
    match frontend {
        Frontend::Direct => {
            run_experiment_full(|| ShardedStore::<i64, u64>::hash_sharded(shards), spec, reps)
        }
        Frontend::Batched => {
            run_experiment_full(|| BatchedStore::<i64, u64>::hash_sharded(shards), spec, reps)
        }
    }
}

fn main() {
    let want_metrics = metrics_flag();
    let want_summary = summary_json_flag();
    let scale = Scale::from_env();
    let n_shards: usize = std::env::var("LO_STORE_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| (2..=lo_store::MAX_SHARDS).contains(&n))
        .unwrap_or(4);
    // One key range is enough for the tier ablation; sharding shifts
    // *contention*, not tree depth.
    let range = scale.ranges.first().copied().unwrap_or(20_000);
    eprintln!(
        "store tiers: {:?} trials x{} reps, threads {:?}, range {range}, N={n_shards}",
        scale.trial, scale.reps, scale.threads
    );

    // The update-heavy mix is the headline (shards shrink writer-lock and
    // grace-period domains); the read-heavy mix bounds the routing overhead.
    let mixes = [Mix::C10_I60_R30, Mix::C70_I20_R10];
    let variants: Vec<(usize, Frontend)> = vec![
        (1, Frontend::Direct),
        (n_shards, Frontend::Direct),
        (1, Frontend::Batched),
        (n_shards, Frontend::Batched),
    ];

    let mut panels = Vec::new();
    let mut metrics = Vec::new();
    let mut rows = Vec::new();
    for mix in mixes {
        let title = format!("store tiers, {}, key range {range}", mix.label());
        let mut panel = Panel::new(
            title.clone(),
            variants.iter().map(|&(s, f)| format!("{s}sh/{}", f.label())).collect(),
            scale.threads.clone(),
        );
        let mut mpanel = MetricsPanel::new(title);
        for (row, &threads) in scale.threads.iter().enumerate() {
            for (col, &(shards, frontend)) in variants.iter().enumerate() {
                let spec = TrialSpec::new(mix, range, threads, scale.trial);
                lo_metrics::reset_log2(lo_metrics::Event::StoreBatchLen);
                let trials = run(shards, frontend, &spec, scale.reps);
                let batch_hist = lo_metrics::log2_hist(lo_metrics::Event::StoreBatchLen);
                let mops: Vec<f64> = trials.iter().map(TrialResult::mops).collect();
                let summary = Summary::of(&mops);
                panel.set(row, col, summary);
                rows.push(SummaryRow {
                    config: format!("store/{shards}/{}/{}", frontend.label(), mix.label()),
                    threads,
                    mean: summary.mean,
                    stddev: summary.stddev,
                    reps: summary.n,
                });
                let mut events = lo_metrics::Snapshot::zero();
                let mut total_ops = 0u64;
                for t in &trials {
                    events.merge(&t.events);
                    total_ops += t.total_ops;
                }
                mpanel.push(MetricsEntry {
                    algorithm: format!("{shards}sh/{}", frontend.label()),
                    threads,
                    total_ops,
                    events,
                    hists: vec![(lo_metrics::Event::StoreBatchLen, batch_hist)],
                });
                eprintln!(
                    "  [{}] threads={threads} {shards}sh/{} -> {summary}",
                    mix.label(),
                    frontend.label()
                );
            }
        }
        panels.push(panel);
        metrics.push(mpanel);
    }

    emit(&panels, "store_tiers");

    // The headline comparison, spelled out: N shards vs one shard on the
    // update-heavy mix at every multi-threaded point.
    println!("### sharding ablation, {} (direct frontend)", Mix::C10_I60_R30.label());
    let lookup = |shards: usize, threads: usize| {
        rows.iter()
            .find(|r| {
                r.threads == threads
                    && r.config
                        == format!("store/{shards}/direct/{}", Mix::C10_I60_R30.label())
            })
            .map(|r| r.mean)
    };
    for &threads in scale.threads.iter().filter(|&&t| t >= 2) {
        if let (Some(one), Some(n)) = (lookup(1, threads), lookup(n_shards, threads)) {
            println!(
                "  threads={threads}: 1 shard {one:.3} Mops/s vs {n_shards} shards {n:.3} Mops/s ({:+.1}%)",
                (n / one - 1.0) * 100.0
            );
        }
    }

    if want_summary {
        emit_summary_rows(&rows, "store_tiers");
    }
    if want_metrics {
        emit_metrics(&metrics, "store_tiers_metrics");
    }
}
