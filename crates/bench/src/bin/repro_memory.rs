//! Reproduces the paper's §6 memory discussion: on-time deletion keeps the
//! physical tree at exactly the live-key count, while partially-external
//! designs accumulate logically-deleted "zombie"/routing nodes — the paper
//! notes the BCCO tree may hold up to ~50% zombies.
//!
//! Protocol: prefill to steady state, run the 70c-20i-10r mix, then stop and
//! report live keys vs. physically allocated nodes for LO-AVL (on-time),
//! LO-AVL-PE (logical removing), BCCO and CF.
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-memory`

use std::time::Duration;

use lo_baselines::{BccoTreeMap, CfTreeMap};
use lo_core::{LoAvlMap, LoPeAvlMap};
use lo_workload::{prefill, run_trial, Mix, TrialSpec};

struct Row {
    name: &'static str,
    live: usize,
    physical: usize,
    zombies: usize,
}

impl Row {
    fn overhead_pct(&self) -> f64 {
        if self.physical == 0 {
            0.0
        } else {
            100.0 * self.zombies as f64 / self.physical as f64
        }
    }
}

fn main() {
    let full = std::env::var("LO_FULL").map(|v| v == "1").unwrap_or(false);
    let range: u64 = if full { 200_000 } else { 20_000 };
    let trial = if full { Duration::from_secs(5) } else { Duration::from_millis(500) };
    let threads = if full { 8 } else { 4 };
    let spec = TrialSpec::new(Mix::C70_I20_R10, range, threads, trial);

    let mut rows = Vec::new();

    {
        let m = LoAvlMap::<i64, u64>::new();
        prefill(&m, &spec);
        let _ = run_trial(&m, &spec);
        rows.push(Row {
            name: "lo-avl (on-time deletion)",
            live: m.len(),
            physical: m.physical_node_count(),
            zombies: m.zombie_count(),
        });
    }
    {
        let m = LoPeAvlMap::<i64, u64>::new();
        prefill(&m, &spec);
        let _ = run_trial(&m, &spec);
        rows.push(Row {
            name: "lo-avl-pe (logical removing)",
            live: m.len(),
            physical: m.physical_node_count(),
            zombies: m.zombie_count(),
        });
    }
    {
        let m = BccoTreeMap::<i64, u64>::new();
        prefill(&m, &spec);
        let _ = run_trial(&m, &spec);
        let (physical, routing) = m.node_stats();
        rows.push(Row {
            name: "bcco (partially external)",
            live: physical - routing,
            physical,
            zombies: routing,
        });
    }
    {
        let m = CfTreeMap::<i64, u64>::new();
        prefill(&m, &spec);
        let _ = run_trial(&m, &spec);
        // Give the maintenance thread a moment to settle, as a real
        // deployment would between bursts.
        std::thread::sleep(Duration::from_millis(200));
        let (physical, deleted) = m.node_stats();
        rows.push(Row {
            name: "cf (maintenance thread)",
            live: physical - deleted,
            physical,
            zombies: deleted,
        });
    }

    println!("### Memory footprint after {} {:?} of 70c-20i-10r, range {range}", threads, trial);
    println!(
        "{:<32}{:>12}{:>12}{:>12}{:>12}",
        "algorithm", "live keys", "phys nodes", "zombies", "overhead%"
    );
    let mut text = String::new();
    for r in &rows {
        let line = format!(
            "{:<32}{:>12}{:>12}{:>12}{:>11.1}%",
            r.name,
            r.live,
            r.physical,
            r.zombies,
            r.overhead_pct()
        );
        println!("{line}");
        text.push_str(&line);
        text.push('\n');
    }
    let _ = std::fs::create_dir_all("bench_results");
    let _ = std::fs::write("bench_results/memory.txt", text);
}
