//! Reproduces **Table 1** of the paper: throughput of the *balanced*
//! concurrent dictionaries (LO-AVL, LO-AVL-PE "logical removing", BCCO, CF,
//! chromatic, skip list) under the three workload mixes and three key
//! ranges, swept over thread counts.
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-table1`
//! (`LO_FULL=1` for the paper-scale protocol; `LO_TRIAL_MS`, `LO_REPS`,
//! `LO_MAX_THREADS` to fine-tune.)

use lo_bench::{emit, run_panel, Algo, Scale};
use lo_workload::Mix;

fn main() {
    let scale = Scale::from_env();
    let algos = Algo::table1();
    eprintln!(
        "Table 1: {:?} trials x{} reps, threads {:?}, ranges {:?}",
        scale.trial, scale.reps, scale.threads, scale.ranges
    );
    let mut panels = Vec::new();
    for mix in [Mix::C50_I25_R25, Mix::C70_I20_R10, Mix::C100] {
        for &range in &scale.ranges {
            panels.push(run_panel(mix, range, &algos, &scale));
        }
    }
    emit(&panels, "table1_balanced");
}
