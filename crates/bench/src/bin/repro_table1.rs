//! Reproduces **Table 1** of the paper: throughput of the *balanced*
//! concurrent dictionaries (LO-AVL, LO-AVL-PE "logical removing", BCCO, CF,
//! chromatic, skip list) under the three workload mixes and three key
//! ranges, swept over thread counts.
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-table1`
//! (`LO_FULL=1` for the paper-scale protocol; `LO_TRIAL_MS`, `LO_REPS`,
//! `LO_MAX_THREADS`, `LO_RANGES`, `LO_ALGOS` to fine-tune. `--metrics`
//! additionally emits per-trial event telemetry — build with
//! `--features metrics` so the counters are actually recorded.
//! `--summary-json` appends a machine-readable run, labelled by
//! `LO_SUMMARY_LABEL`, to `BENCH_throughput.json`. `--trace` records the
//! hot-path flight recorder — build with `--features trace` — and
//! `--trace-out PATH` writes it as Perfetto-loadable Chrome Trace JSON.)

use lo_bench::{
    emit, emit_metrics, emit_summary_json, emit_trace, filter_algos, metrics_flag,
    render_phase_table, run_panel_with_metrics, summary_json_flag, trace_flag, trace_out, Algo,
    Scale,
};
use lo_workload::Mix;

fn main() {
    let want_metrics = metrics_flag();
    let want_summary = summary_json_flag();
    let want_trace = trace_flag();
    if want_trace {
        lo_trace::set_recording(true);
    }
    let scale = Scale::from_env();
    let algos = filter_algos(Algo::table1());
    eprintln!(
        "Table 1: {:?} trials x{} reps, threads {:?}, ranges {:?}",
        scale.trial, scale.reps, scale.threads, scale.ranges
    );
    let mut panels = Vec::new();
    let mut metrics = Vec::new();
    // 10c-60i-30r is the ISSUE 8 update-dominated extension: it stresses
    // the writers' lock windows, where the optimistic path earns its keep.
    for mix in [Mix::C10_I60_R30, Mix::C50_I25_R25, Mix::C70_I20_R10, Mix::C100] {
        for &range in &scale.ranges {
            let (panel, m) = run_panel_with_metrics(mix, range, &algos, &scale);
            panels.push(panel);
            metrics.push(m);
        }
    }
    emit(&panels, "table1_balanced");
    if want_summary {
        emit_summary_json(&panels, "table1_balanced");
    }
    if want_metrics {
        emit_metrics(&metrics, "table1_balanced_metrics");
    }
    if want_trace {
        lo_trace::set_recording(false);
        println!("### lock windows and hot-path phases (trace)");
        print!("{}", render_phase_table(&lo_trace::TraceSnapshot::take()));
        emit_trace(&trace_out());
    }
}
