//! Reproduces **Table 1** of the paper: throughput of the *balanced*
//! concurrent dictionaries (LO-AVL, LO-AVL-PE "logical removing", BCCO, CF,
//! chromatic, skip list) under the three workload mixes and three key
//! ranges, swept over thread counts.
//!
//! Usage: `cargo run -p lo-bench --release --bin repro-table1`
//! (`LO_FULL=1` for the paper-scale protocol; `LO_TRIAL_MS`, `LO_REPS`,
//! `LO_MAX_THREADS` to fine-tune. `--metrics` additionally emits per-trial
//! event telemetry — build with `--features metrics` so the counters are
//! actually recorded.)

use lo_bench::{emit, emit_metrics, metrics_flag, run_panel_with_metrics, Algo, Scale};
use lo_workload::Mix;

fn main() {
    let want_metrics = metrics_flag();
    let scale = Scale::from_env();
    let algos = Algo::table1();
    eprintln!(
        "Table 1: {:?} trials x{} reps, threads {:?}, ranges {:?}",
        scale.trial, scale.reps, scale.threads, scale.ranges
    );
    let mut panels = Vec::new();
    let mut metrics = Vec::new();
    for mix in [Mix::C50_I25_R25, Mix::C70_I20_R10, Mix::C100] {
        for &range in &scale.ranges {
            let (panel, m) = run_panel_with_metrics(mix, range, &algos, &scale);
            panels.push(panel);
            metrics.push(m);
        }
    }
    emit(&panels, "table1_balanced");
    if want_metrics {
        emit_metrics(&metrics, "table1_balanced_metrics");
    }
}
