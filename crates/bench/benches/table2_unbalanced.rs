//! `cargo bench` entry for Table 2 (unbalanced trees): reduced smoke sweep;
//! the `repro-table2` binary is the full-control version.

use lo_bench::{emit, run_panel, Algo, Scale};
use lo_workload::Mix;
use std::time::Duration;

fn main() {
    let scale = Scale {
        trial: Duration::from_millis(150),
        reps: 1,
        threads: vec![1, 2, 4],
        ranges: vec![20_000],
    };
    let algos = Algo::table2();
    let mut panels = Vec::new();
    for mix in [Mix::C70_I20_R10, Mix::C100] {
        for &range in &scale.ranges {
            panels.push(run_panel(mix, range, &algos, &scale));
        }
    }
    emit(&panels, "bench_table2_smoke");
}
