//! Ablation C (DESIGN.md): substrate costs.
//!
//! * Epoch reclamation: our from-scratch `lo-reclaim` vs `crossbeam-epoch`
//!   (pin cost, and pin+retire cost).
//! * Per-node lock: the parking-lot backed `NodeLock` vs the from-scratch
//!   TTAS `SpinLock` (uncontended lock/unlock).

use criterion::{criterion_group, criterion_main, Criterion};
use lo_core::sync::{NodeLock, SpinLock};
use std::time::Duration;

fn benches(c: &mut Criterion) {
    // --- epoch pin ---
    let collector = lo_reclaim::Collector::new();
    let handle = collector.register();
    c.bench_function("substrate/pin/lo-reclaim", |b| {
        b.iter(|| {
            let g = handle.pin();
            std::hint::black_box(&g);
        })
    });
    c.bench_function("substrate/pin/crossbeam-epoch", |b| {
        b.iter(|| {
            let g = crossbeam_epoch::pin();
            std::hint::black_box(&g);
        })
    });

    // --- pin + retire a box ---
    c.bench_function("substrate/retire/lo-reclaim", |b| {
        b.iter(|| {
            let g = handle.pin();
            let p = Box::into_raw(Box::new(42u64));
            // SAFETY: `p` came from Box::into_raw and is never freed again.
            unsafe { g.defer_destroy_box(p) };
        })
    });
    c.bench_function("substrate/retire/crossbeam-epoch", |b| {
        b.iter(|| {
            let g = crossbeam_epoch::pin();
            let p = crossbeam_epoch::Owned::new(42u64).into_shared(&g);
            // SAFETY: the allocation was never published; single retirer.
            unsafe { g.defer_destroy(p) };
        })
    });

    // --- locks (uncontended) ---
    let nl = NodeLock::new();
    c.bench_function("substrate/lock/parking-lot-nodelock", |b| {
        b.iter(|| {
            nl.lock();
            nl.unlock();
        })
    });
    let sl = SpinLock::new();
    c.bench_function("substrate/lock/ttas-spinlock", |b| {
        b.iter(|| {
            sl.lock();
            sl.unlock();
        })
    });
}

criterion_group! {
    name = ablation_substrate;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}
criterion_main!(ablation_substrate);
