//! Ablation C (DESIGN.md): substrate costs.
//!
//! * Epoch reclamation: our from-scratch `lo-reclaim` vs `crossbeam-epoch`
//!   (pin cost, and pin+retire cost).
//! * Per-node lock: the parking-lot backed `NodeLock` vs the from-scratch
//!   TTAS `SpinLock` (uncontended lock/unlock).
//! * Node allocation: global allocator `Box` vs the slab [`Arena`]
//!   (alloc + free of a node-sized payload). This benches the allocator
//!   primitives head-to-head in one binary; cargo feature unification makes
//!   a same-binary *tree-level* comparison impossible (`lo-workload` pulls
//!   in `lo-core` with its default `arena` feature), so the tree-level
//!   ablation is a rebuild with `--no-default-features` (see DESIGN.md §12).

use criterion::{criterion_group, criterion_main, Criterion};
use lo_core::arena::Arena;
use lo_core::sync::{NodeLock, SpinLock};
use std::time::Duration;

/// Same footprint class as a populated `Node<i64, u64>`: two cache lines.
type NodeSized = [u64; 16];

fn benches(c: &mut Criterion) {
    // --- epoch pin ---
    let collector = lo_reclaim::Collector::new();
    let handle = collector.register();
    c.bench_function("substrate/pin/lo-reclaim", |b| {
        b.iter(|| {
            let g = handle.pin();
            std::hint::black_box(&g);
        })
    });
    c.bench_function("substrate/pin/crossbeam-epoch", |b| {
        b.iter(|| {
            let g = crossbeam_epoch::pin();
            std::hint::black_box(&g);
        })
    });

    // --- pin + retire a box ---
    c.bench_function("substrate/retire/lo-reclaim", |b| {
        b.iter(|| {
            let g = handle.pin();
            let p = Box::into_raw(Box::new(42u64));
            // SAFETY: `p` came from Box::into_raw and is never freed again.
            unsafe { g.defer_destroy_box(p) };
        })
    });
    c.bench_function("substrate/retire/crossbeam-epoch", |b| {
        b.iter(|| {
            let g = crossbeam_epoch::pin();
            let p = crossbeam_epoch::Owned::new(42u64).into_shared(&g);
            // SAFETY: the allocation was never published; single retirer.
            unsafe { g.defer_destroy(p) };
        })
    });

    // --- locks (uncontended) ---
    let nl = NodeLock::new();
    c.bench_function("substrate/lock/parking-lot-nodelock", |b| {
        b.iter(|| {
            nl.lock();
            nl.unlock();
        })
    });
    let sl = SpinLock::new();
    c.bench_function("substrate/lock/ttas-spinlock", |b| {
        b.iter(|| {
            sl.lock();
            sl.unlock();
        })
    });

    // --- node allocation: Box (ablation baseline) vs slab arena ---
    c.bench_function("substrate/alloc/box", |b| {
        b.iter(|| {
            let p = Box::new(std::hint::black_box::<NodeSized>([1u64; 16]));
            std::hint::black_box(&p);
            drop(p);
        })
    });
    let arena: Arena<NodeSized> = Arena::new();
    c.bench_function("substrate/alloc/arena", |b| {
        b.iter(|| {
            let p = arena.alloc(std::hint::black_box::<NodeSized>([1u64; 16]));
            std::hint::black_box(p);
            // SAFETY: `p` was just returned by this arena's `alloc` and is
            // retired exactly once; no other reference exists.
            unsafe { arena.retire(p) };
        })
    });
    // Steady-state mix: a standing population so alloc/retire exercise the
    // nonfull-chunk list rather than a single hot slot.
    let standing: Vec<_> = (0..256).map(|i| arena.alloc([i as u64; 16])).collect();
    c.bench_function("substrate/alloc/arena-standing-256", |b| {
        b.iter(|| {
            let p = arena.alloc(std::hint::black_box::<NodeSized>([2u64; 16]));
            std::hint::black_box(p);
            // SAFETY: single owner; retired exactly once.
            unsafe { arena.retire(p) };
        })
    });
    for p in standing {
        // SAFETY: each pointer came from `arena.alloc` above, retired once.
        unsafe { arena.retire(p) };
    }
}

criterion_group! {
    name = ablation_substrate;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}
criterion_main!(ablation_substrate);
