//! Ablation A (DESIGN.md): what does explicitly maintaining the logical
//! ordering cost per operation?
//!
//! The paper trades "three pointers per node + ordering updates" for
//! synchronization-free lookups. We quantify the update-side overhead by
//! comparing single-threaded insert/remove/contains costs of the LO trees
//! against BCCO (an internal AVL with *no* ordering layer) and quantify the
//! lookup-side benefit structure by timing `contains` separately.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lo_api::ConcurrentMap;
use lo_baselines::BccoTreeMap;
use lo_core::{LoAvlMap, LoBstMap};
use std::time::Duration;

const N: i64 = 10_000;

fn prefilled<M: ConcurrentMap<i64, u64>>(m: M) -> M {
    // Pseudo-random permutation of 0..N via a multiplicative step.
    let mut k = 1i64;
    for _ in 0..N {
        k = (k * 48271) % (N * 4 + 1);
        m.insert(k, k as u64);
    }
    m
}

fn bench_update_cycle<M: ConcurrentMap<i64, u64>>(
    c: &mut Criterion,
    name: &str,
    make: impl Fn() -> M,
) {
    c.bench_function(&format!("ordering/update-cycle/{name}"), |b| {
        b.iter_batched(
            || prefilled(make()),
            |m| {
                // 256 insert+remove pairs of fresh keys.
                for k in 0..256i64 {
                    let key = N * 8 + k;
                    std::hint::black_box(m.insert(key, 0));
                    std::hint::black_box(m.remove(&key));
                }
                m
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_contains<M: ConcurrentMap<i64, u64>>(
    c: &mut Criterion,
    name: &str,
    make: impl Fn() -> M,
) {
    let m = prefilled(make());
    let mut k = 7i64;
    c.bench_function(&format!("ordering/contains/{name}"), |b| {
        b.iter(|| {
            k = (k * 48271) % (N * 4 + 1);
            std::hint::black_box(m.contains(&k))
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_update_cycle(c, "lo-avl", LoAvlMap::<i64, u64>::new);
    bench_update_cycle(c, "lo-bst", LoBstMap::<i64, u64>::new);
    bench_update_cycle(c, "bcco-no-ordering", BccoTreeMap::<i64, u64>::new);
    bench_contains(c, "lo-avl", LoAvlMap::<i64, u64>::new);
    bench_contains(c, "lo-bst", LoBstMap::<i64, u64>::new);
    bench_contains(c, "bcco-no-ordering", BccoTreeMap::<i64, u64>::new);
}

criterion_group! {
    name = ablation_ordering;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}
criterion_main!(ablation_ordering);
