//! Range-scan microbenchmarks: streaming-cursor scans over the
//! logical-ordering trees vs the skip list's bottom-level walk, at scan
//! lengths 8 / 64 / 512, both quiescent and under one background updater.
//!
//! The timed unit is one `scan_range` call over a window of the requested
//! length starting at a rotating offset (so successive iterations touch
//! different parts of the structure instead of rescanning hot cache).

use criterion::{criterion_group, criterion_main, Criterion};
use lo_api::{ConcurrentMap, OrderedRead};
use lo_baselines::SkipListMap;
use lo_core::{LoAvlMap, LoBstMap, LoPeAvlMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Keys 0..KEYS with every second key present: scans see a half-dense range.
const KEYS: i64 = 1 << 14;
const LENS: [i64; 3] = [8, 64, 512];

fn prefill<M: ConcurrentMap<i64, u64>>(map: &M) {
    for k in (0..KEYS).step_by(2) {
        assert!(map.insert(k, k as u64));
    }
}

fn bench_quiescent<M>(c: &mut Criterion, name: &str, map: &M)
where
    M: ConcurrentMap<i64, u64> + OrderedRead<i64>,
{
    prefill(map);
    for len in LENS {
        let mut start = 0i64;
        c.bench_function(&format!("range-scan/{name}/{len}/quiescent"), |b| {
            b.iter(|| {
                let mut n = 0u64;
                map.scan_range(start..=start + len - 1, &mut |k| {
                    std::hint::black_box(k);
                    n += 1;
                });
                start = (start + len) % KEYS;
                std::hint::black_box(n)
            })
        });
    }
}

fn bench_under_updates<M>(c: &mut Criterion, name: &str, map: &M)
where
    M: ConcurrentMap<i64, u64> + OrderedRead<i64> + Sync,
{
    prefill(map);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // One updater churns odd keys for the whole measurement so every
        // scan races real insertions/removals between its yields.
        s.spawn(|| {
            let mut x = 0x9E3779B97F4A7C15u64;
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let k = ((x % KEYS as u64) | 1) as i64;
                if x & 2 == 0 {
                    map.insert(k, 0);
                } else {
                    map.remove(&k);
                }
            }
        });
        for len in LENS {
            let mut start = 0i64;
            c.bench_function(&format!("range-scan/{name}/{len}/under-updates"), |b| {
                b.iter(|| {
                    let mut n = 0u64;
                    map.scan_range(start..=start + len - 1, &mut |k| {
                        std::hint::black_box(k);
                        n += 1;
                    });
                    start = (start + len) % KEYS;
                    std::hint::black_box(n)
                })
            });
        }
        stop.store(true, Ordering::Relaxed);
    });
}

fn benches(c: &mut Criterion) {
    bench_quiescent(c, "lo-bst", &LoBstMap::<i64, u64>::new());
    bench_quiescent(c, "lo-avl", &LoAvlMap::<i64, u64>::new());
    bench_quiescent(c, "lo-avl-pe", &LoPeAvlMap::<i64, u64>::new());
    bench_quiescent(c, "skiplist", &SkipListMap::<i64, u64>::new());
    bench_under_updates(c, "lo-avl", &LoAvlMap::<i64, u64>::new());
    bench_under_updates(c, "skiplist", &SkipListMap::<i64, u64>::new());
}

criterion_group! {
    name = range_scan;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}
criterion_main!(range_scan);
