//! `cargo bench` entry for Table 1 (balanced trees). Runs a reduced smoke
//! sweep by default so the whole bench suite terminates quickly; the
//! `repro-table1` binary is the full-control version (same code path).

use lo_bench::{emit, run_panel, Algo, Scale};
use lo_workload::Mix;
use std::time::Duration;

fn main() {
    let scale = Scale {
        trial: Duration::from_millis(150),
        reps: 1,
        threads: vec![1, 2, 4],
        ranges: vec![20_000],
    };
    let algos = Algo::table1();
    let mut panels = Vec::new();
    for mix in [Mix::C50_I25_R25, Mix::C70_I20_R10, Mix::C100] {
        for &range in &scale.ranges {
            panels.push(run_panel(mix, range, &algos, &scale));
        }
    }
    emit(&panels, "bench_table1_smoke");
}
