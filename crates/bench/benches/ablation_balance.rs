//! Ablation B (DESIGN.md / paper §2): the value of balancing, and of keeping
//! *two subtree heights* per node instead of one balance factor.
//!
//! Measures lookup cost on an adversarial (sorted-insert) key sequence —
//! where the unbalanced BST degenerates to a list and the relaxed AVL stays
//! logarithmic — and on a uniform sequence where both are shallow.

use criterion::{criterion_group, criterion_main, Criterion};
use lo_core::{LoAvlMap, LoBstMap};
use std::time::Duration;

const SORTED_N: i64 = 4_000;
const UNIFORM_N: i64 = 4_000;

fn benches(c: &mut Criterion) {
    // Sorted prefill: worst case for the unbalanced tree.
    let avl_sorted = LoAvlMap::<i64, u64>::new();
    let bst_sorted = LoBstMap::<i64, u64>::new();
    for k in 0..SORTED_N {
        avl_sorted.insert(k, 0);
        bst_sorted.insert(k, 0);
    }
    // Uniform prefill.
    let avl_uniform = LoAvlMap::<i64, u64>::new();
    let bst_uniform = LoBstMap::<i64, u64>::new();
    let mut k = 1i64;
    for _ in 0..UNIFORM_N {
        k = (k * 48271) % (UNIFORM_N * 16 + 1);
        avl_uniform.insert(k, 0);
        bst_uniform.insert(k, 0);
    }

    let mut probe = 3i64;
    c.bench_function("balance/lookup/sorted-prefill/lo-avl", |b| {
        b.iter(|| {
            probe = (probe + 1237) % SORTED_N;
            std::hint::black_box(avl_sorted.contains(&probe))
        })
    });
    c.bench_function("balance/lookup/sorted-prefill/lo-bst", |b| {
        b.iter(|| {
            probe = (probe + 1237) % SORTED_N;
            std::hint::black_box(bst_sorted.contains(&probe))
        })
    });
    c.bench_function("balance/lookup/uniform-prefill/lo-avl", |b| {
        b.iter(|| {
            probe = (probe * 48271) % (UNIFORM_N * 16 + 1);
            std::hint::black_box(avl_uniform.contains(&probe))
        })
    });
    c.bench_function("balance/lookup/uniform-prefill/lo-bst", |b| {
        b.iter(|| {
            probe = (probe * 48271) % (UNIFORM_N * 16 + 1);
            std::hint::black_box(bst_uniform.contains(&probe))
        })
    });
    // Update cost of maintaining balance on the adversarial sequence.
    c.bench_function("balance/sorted-insert-drain/lo-avl", |b| {
        b.iter(|| {
            let m = LoAvlMap::<i64, u64>::new();
            for k in 0..512i64 {
                m.insert(k, 0);
            }
            for k in 0..512i64 {
                m.remove(&k);
            }
        })
    });
    c.bench_function("balance/sorted-insert-drain/lo-bst", |b| {
        b.iter(|| {
            let m = LoBstMap::<i64, u64>::new();
            for k in 0..512i64 {
                m.insert(k, 0);
            }
            for k in 0..512i64 {
                m.remove(&k);
            }
        })
    });
}

criterion_group! {
    name = ablation_balance;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}
criterion_main!(ablation_balance);
