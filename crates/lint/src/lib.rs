//! lo-lint: a workspace static analyzer that proves the logical-ordering
//! concurrency protocol at the source level.
//!
//! The paper's correctness argument rests on a fixed discipline — three
//! lock-order rules, a per-field atomic-ordering protocol, locks acquired
//! only through the sync.rs enforcement point — all of which the workspace
//! previously enforced *dynamically* (lockdep ledger, TSan, chaos runs).
//! lo-lint enforces the same discipline statically, from a checked-in
//! machine-readable manifest (`ordering_policy.toml`), so a violating edit
//! fails CI even when no test exercises the interleaving. See DESIGN.md §16
//! for the rule families and how lockdep/TSan/lo-lint divide the labor.
//!
//! The analyzer is deliberately dependency-free: a purpose-built token
//! scanner (`lexer`), a TOML-subset reader (`minitoml`), and six rule
//! families over token patterns. It is not a general Rust front-end — the
//! protocol it checks is local and syntactic by design (that is what makes
//! the discipline reviewable in the first place).

pub mod baseline;
pub mod findings;
pub mod lexer;
pub mod minitoml;
pub mod policy;
pub mod rules;

use findings::{Finding, Report, Rule};
use policy::Policy;
use std::path::{Path, PathBuf};

/// Analyzer configuration (CLI flags map 1:1).
pub struct Config {
    /// Workspace root (the directory holding `ordering_policy.toml`).
    pub root: PathBuf,
    /// Manifest path (default `<root>/ordering_policy.toml`).
    pub manifest: Option<PathBuf>,
    /// Baseline path (default `<root>/lint_baseline.toml`; optional file).
    pub baseline: Option<PathBuf>,
}

/// Directory names never scanned: build outputs, VCS, test-support trees
/// (unit tests inside sources are handled via `#[cfg(test)]` spans instead),
/// and lo-lint's own seeded-violation fixtures.
const SKIP_DIRS: [&str; 6] = ["target", ".git", "tests", "benches", "examples", "fixtures"];

/// Recursively collects workspace-relative paths of `.rs` files under
/// `root/<sub>`, sorted for deterministic reports.
fn walk(root: &Path, sub: &str, out: &mut Vec<String>) {
    let dir = root.join(sub);
    let Ok(entries) = std::fs::read_dir(&dir) else { return };
    let mut names: Vec<_> = entries.flatten().map(|e| e.file_name()).collect();
    names.sort();
    for name in names {
        let Some(name) = name.to_str() else { continue };
        let rel = if sub.is_empty() { name.to_string() } else { format!("{sub}/{name}") };
        let path = root.join(&rel);
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(root, &rel, out);
            }
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
}

/// Runs the full lint pass. `Err` is an operational failure (unreadable
/// manifest, bad schema) as opposed to findings.
pub fn run_lint(cfg: &Config) -> Result<Report, String> {
    let manifest_path = cfg
        .manifest
        .clone()
        .unwrap_or_else(|| cfg.root.join("ordering_policy.toml"));
    let manifest = minitoml::parse_file(&manifest_path)?;
    let policy = Policy::from_table(&manifest)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;

    let mut rel_paths = Vec::new();
    for root in &policy.scope.workspace_roots {
        walk(&cfg.root, root, &mut rel_paths);
    }
    rel_paths.sort();
    rel_paths.dedup();

    let mut files = Vec::new();
    for rel in &rel_paths {
        if let Some(f) = lexer::lex_file(&cfg.root.join(rel), rel) {
            files.push(f);
        }
    }

    let design_doc = std::fs::read_to_string(cfg.root.join(&policy.scope.design_doc)).ok();

    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    let mut found: Vec<Finding> = Vec::new();
    rules::atomics::check(&files, &policy, &mut found);
    rules::locks::check(&files, &policy, &mut found, &mut report.lock_graph);
    rules::unsafety::check(&files, &policy, design_doc.as_deref(), &mut found);
    rules::coverage::check(&files, &policy, &mut found);
    rules::docsync::check(&files, &policy, &mut found);
    rules::version::check(&files, &policy, &mut found);
    rules::recovery::check(&files, &policy, &mut found);

    let baseline_path = cfg
        .baseline
        .clone()
        .unwrap_or_else(|| cfg.root.join("lint_baseline.toml"));
    let found = if baseline_path.exists() {
        let table = minitoml::parse_file(&baseline_path)?;
        let bl = baseline::Baseline::from_table(&table)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        bl.apply(found, &mut report)
    } else {
        found
    };

    report.findings = found;
    report.sort();
    report.lock_graph.sort_by(|a, b| {
        (a.held.as_str(), a.acquired.as_str(), a.mode.as_str())
            .cmp(&(b.held.as_str(), b.acquired.as_str(), b.mode.as_str()))
    });
    Ok(report)
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing `ordering_policy.toml` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("ordering_policy.toml").is_file() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Whether the report contains real findings (manifest staleness included —
/// a lying manifest is a finding, not a warning).
pub fn is_dirty(report: &Report) -> bool {
    !report.findings.is_empty()
}

/// Convenience for tests: lint `root` with default manifest/baseline paths.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    run_lint(&Config { root: root.to_path_buf(), manifest: None, baseline: None })
}

// Re-export for fixture tests.
pub use findings::Rule as LintRule;

/// Stable mapping from rule name to enum, for golden tests.
pub fn rule_by_name(name: &str) -> Option<Rule> {
    [
        Rule::AtomicPolicy,
        Rule::SeqCstBan,
        Rule::RawLock,
        Rule::LockOrder,
        Rule::UnsafeHygiene,
        Rule::Coverage,
        Rule::VersionBump,
        Rule::Recovery,
        Rule::Manifest,
    ]
    .into_iter()
    .find(|r| r.name() == name)
}
