//! A small Rust *token* scanner — not a full parser.
//!
//! lo-lint's rules operate on token patterns (`.mark.load(Ordering::…)`,
//! `unsafe {`, `FailPoint::X`), so all it needs from the front end is a
//! stream of identifiers and punctuation with line numbers, with comments
//! and string literals correctly skipped (but comments *kept aside* for the
//! SAFETY-hygiene rule). The scanner handles the lexical constructs that
//! would otherwise produce false tokens: line and (nested) block comments,
//! string/char/byte literals, raw strings, and lifetimes vs char literals.
//!
//! It deliberately does **not** build an AST: the protocol rules this crate
//! enforces are local token patterns plus brace-matched spans (function
//! bodies, `#[cfg(test)]` items), which the [`SourceFile`] helpers recover.

/// Token kind. Punctuation is one token per character (`::` is two `:`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `fn`, `unsafe`, `impl`, …).
    Ident,
    /// Numeric literal (opaque to every rule).
    Num,
    /// A single punctuation character.
    Punct,
    /// String literal (text is the *content*, quotes stripped, escapes raw).
    Str,
}

/// One lexical token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
    /// The content of a string-literal token, if this is one.
    pub fn as_str_lit(&self) -> Option<&str> {
        (self.kind == TokKind::Str).then_some(self.text.as_str())
    }
}

/// A lexed source file plus the side tables the rules need.
pub struct SourceFile {
    /// Workspace-relative path (as given to [`lex_file`]).
    pub path: String,
    pub tokens: Vec<Token>,
    /// `(line, text)` of every `//`-style comment (doc comments included;
    /// the leading slashes are stripped, block comments contribute one entry
    /// per comment with embedded newlines).
    pub comments: Vec<(u32, String)>,
    /// Raw source lines (1-based access via [`SourceFile::line`]).
    pub lines: Vec<String>,
    /// Line spans (inclusive) of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// The raw text of 1-based `line` (empty for out-of-range).
    pub fn line(&self, line: u32) -> &str {
        self.lines.get(line as usize - 1).map_or("", String::as_str)
    }

    /// Whether `line` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// All comment text attached to the lines `[from, to]` joined together.
    pub fn comments_in(&self, from: u32, to: u32) -> String {
        let mut out = String::new();
        for (l, t) in &self.comments {
            if *l >= from && *l <= to {
                out.push_str(t);
                out.push('\n');
            }
        }
        out
    }
}

/// Lexes `src`, recording `path` for diagnostics.
pub fn lex(path: &str, src: &str) -> SourceFile {
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let text = text.trim_start_matches('/').trim_start_matches('!').to_string();
                comments.push((line, text));
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text: String = chars[start..i.min(n)].iter().collect();
                comments.push((start_line, text));
            }
            '"' => {
                let start_line = line;
                let start = i + 1;
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => break,
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: chars[start..i.min(n)].iter().collect(),
                    line: start_line,
                });
                i = (i + 1).min(n);
            }
            // Raw (and raw byte) strings: r"…", r#"…"#, br##"…"##, …
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                let mut j = i;
                if chars[j] == 'b' {
                    j += 1;
                }
                j += 1; // past 'r'
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // past the opening quote
                let content_start = j;
                let start_line = line;
                let mut content_end = j;
                // Scan for `"` followed by `hashes` hash marks.
                loop {
                    if j >= n {
                        break;
                    }
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                        continue;
                    }
                    if chars[j] == '"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while k < n && seen < hashes && chars[k] == '#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            content_end = j;
                            j = k;
                            break;
                        }
                    }
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: chars[content_start..content_end.min(n)].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            '\'' => {
                // Lifetime (`'g`) vs char literal (`'a'`, `'\n'`).
                if i + 2 < n
                    && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                    && chars[i + 2] != '\''
                {
                    // Lifetime: consume the ident, emit nothing.
                    i += 2;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    // Char literal.
                    i += 1;
                    while i < n {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // A `b"…"`/`r"…"` prefix never reaches here (handled above).
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part — but never swallow a `..` range operator.
                if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c => {
                tokens.push(Token { kind: TokKind::Punct, text: c.to_string(), line });
                i += 1;
            }
        }
    }

    let lines = src.lines().map(str::to_string).collect();
    let test_spans = find_test_spans(&tokens);
    SourceFile { path: path.to_string(), tokens, comments, lines, test_spans }
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j >= n || chars[j] != 'r' {
            // Plain b"…" byte string: lex `b` as an ident, then the '"' arm
            // picks up the literal on the next round.
            return false;
        }
    }
    if j >= n || chars[j] != 'r' {
        return false;
    }
    j += 1;
    while j < n && chars[j] == '#' {
        j += 1;
    }
    j < n && chars[j] == '"'
}

/// Finds line spans of items annotated `#[cfg(test)]` (and `#[test]`,
/// `#[cfg(all(test, …))]`): the attribute plus the next brace-balanced block.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct('[')
        {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_test_attr = false;
            let mut saw_cfg_or_bare_test = false;
            if j < tokens.len() && tokens[j].is_ident("test") {
                saw_cfg_or_bare_test = true; // #[test]
            }
            if j < tokens.len() && tokens[j].is_ident("cfg") {
                saw_cfg_or_bare_test = true; // #[cfg(…)] — check for `test` inside
            }
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if saw_cfg_or_bare_test && tokens[j].is_ident("test") {
                    is_test_attr = true;
                }
                j += 1;
            }
            if saw_cfg_or_bare_test && i + 2 < tokens.len() && tokens[i + 2].is_ident("test") {
                is_test_attr = true; // #[test] with nothing else
            }
            if is_test_attr {
                let start_line = tokens[i].line;
                // Find the item's body: the next `{` at depth 0 of parens
                // (a `fn` signature may contain parenthesized types), then
                // its matching `}`. Items without a body (e.g. `use`) end at
                // the first `;` before any `{`.
                let mut k = j;
                let mut end_line = start_line;
                while k < tokens.len() {
                    if tokens[k].is_punct(';') {
                        end_line = tokens[k].line;
                        break;
                    }
                    if tokens[k].is_punct('{') {
                        let mut bd = 1i32;
                        k += 1;
                        while k < tokens.len() && bd > 0 {
                            if tokens[k].is_punct('{') {
                                bd += 1;
                            } else if tokens[k].is_punct('}') {
                                bd -= 1;
                            }
                            k += 1;
                        }
                        end_line = tokens[k.saturating_sub(1).min(tokens.len() - 1)].line;
                        break;
                    }
                    k += 1;
                }
                spans.push((start_line, end_line));
                i = j;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Lexes a file from disk. Returns `None` if unreadable.
pub fn lex_file(path: &std::path::Path, rel: &str) -> Option<SourceFile> {
    let src = std::fs::read_to_string(path).ok()?;
    Some(lex(rel, &src))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_lifetimes() {
        let f = lex(
            "t.rs",
            "// SAFETY: top\nfn a<'g>(x: &'g str) { let c = 'x'; let s = \"no // here\"; }\n",
        );
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].1.contains("SAFETY"));
        assert!(f.tokens.iter().any(|t| t.is_ident("fn")));
        // Neither the char literal, the lifetime, nor the string content
        // produced identifier tokens.
        assert!(!f.tokens.iter().any(|t| t.is_ident("here")));
        assert!(!f.tokens.iter().any(|t| t.is_ident("g")));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let f = lex(
            "t.rs",
            "let a = r#\"SeqCst \"inner\" \"#; /* outer /* SeqCst */ still */ let b = 1;\n",
        );
        assert!(!f.tokens.iter().any(|t| t.is_ident("SeqCst")));
        assert!(f.tokens.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src = "fn live() { x.load(SeqCst); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.load(SeqCst); }\n}\nfn tail() {}\n";
        let f = lex("t.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let f = lex("t.rs", "let s = \"a\nb\nc\";\nfn after() {}\n");
        let after = f.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 4);
    }
}
