//! Findings, reports, and the (dependency-free) JSON emitter.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which rule family produced a finding. The string forms are stable: they
/// key baseline entries and the JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Per-field atomic-ordering policy (manifest `[atomics]`).
    AtomicPolicy,
    /// Workspace-wide sequentially-consistent-ordering ban (manifest
    /// `[[seqcst.allow]]`). Named `…Ban` so lo-lint's own sources do not
    /// carry the banned identifier.
    SeqCstBan,
    /// Raw lock primitives outside the `sync.rs` enforcement point.
    RawLock,
    /// Lock-nesting graph vs the paper's three lock-order rules.
    LockOrder,
    /// `unsafe` blocks without a SAFETY comment naming a DESIGN.md invariant.
    UnsafeHygiene,
    /// Failpoint / lo-trace probe coverage of the write windows.
    Coverage,
    /// Succ-window seqlock discipline (manifest `[version]`): the version
    /// word is written only by the lock-coupled wrappers and the registered
    /// relink-bump helper, and every pinned relink site still bumps.
    VersionBump,
    /// Online-recovery gate discipline (manifest `[recovery]`): the
    /// active-writer gate's state-changing methods stay confined to the
    /// poison/recover modules, and the recovery entry points cite the
    /// recovery invariants they uphold.
    Recovery,
    /// Manifest/baseline self-consistency (stale entries, bad schema).
    Manifest,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::AtomicPolicy => "atomic-policy",
            Rule::SeqCstBan => "seqcst",
            Rule::RawLock => "raw-lock",
            Rule::LockOrder => "lock-order",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::Coverage => "coverage",
            Rule::VersionBump => "version-bump",
            Rule::Recovery => "recovery",
            Rule::Manifest => "manifest",
        }
    }
}

/// One finding at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 = whole-file / whole-workspace finding).
    pub line: u32,
    /// Stable content fingerprint for baseline matching: independent of the
    /// line number so entries survive unrelated edits above the site.
    pub fingerprint: String,
    pub message: String,
}

impl Finding {
    pub fn new(
        rule: Rule,
        file: impl Into<String>,
        line: u32,
        fingerprint: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule,
            file: file.into(),
            line,
            fingerprint: fingerprint.into(),
            message: message.into(),
        }
    }

    /// The baseline key: `(rule, file, fingerprint)`.
    pub fn baseline_key(&self) -> (String, String, String) {
        (self.rule.name().to_string(), self.file.clone(), self.fingerprint.clone())
    }
}

/// Full lint report: findings plus rule-derived facts worth exporting
/// (currently the lock-nesting graph).
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Class-level lock-nesting edges `held -> acquired` with an example
    /// site each, exported into the JSON for external tooling.
    pub lock_graph: Vec<LockEdge>,
    /// Findings suppressed by the baseline (reported separately).
    pub suppressed: usize,
    /// Baseline entries that matched nothing (stale).
    pub stale_baseline: Vec<String>,
    /// Files scanned, for the summary line.
    pub files_scanned: usize,
}

/// One edge of the statically-extracted lock-nesting graph.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock class held (`Succ` or `Tree`).
    pub held: String,
    /// Lock class acquired while holding `held`.
    pub acquired: String,
    /// `blocking`, `try`, `upward`, or `pinned` (a blocking succ-in-succ
    /// acquisition sanctioned by a `[[locks.nested_succ]]` pin).
    pub mode: String,
    /// Example site `file:line`.
    pub example: String,
}

impl Report {
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }

    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
    }

    /// Human-readable text rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.line == 0 {
                let _ = writeln!(out, "{}: [{}] {}", f.file, f.rule.name(), f.message);
            } else {
                let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message);
            }
        }
        for s in &self.stale_baseline {
            let _ = writeln!(out, "warning: stale baseline entry: {s}");
        }
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *by_rule.entry(f.rule.name()).or_default() += 1;
        }
        let _ = writeln!(
            out,
            "lo-lint: {} finding(s) in {} file(s) scanned ({} suppressed by baseline)",
            self.findings.len(),
            self.files_scanned,
            self.suppressed
        );
        for (rule, n) in by_rule {
            let _ = writeln!(out, "  {rule}: {n}");
        }
        out
    }

    /// Deterministic JSON rendering (sorted findings, no timestamps — the
    /// golden tests compare this byte-for-byte).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"fingerprint\": {}, \"message\": {}",
                json_str(f.rule.name()),
                json_str(&f.file),
                f.line,
                json_str(&f.fingerprint),
                json_str(&f.message)
            );
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"lock_graph\": [");
        for (i, e) in self.lock_graph.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"held\": {}, \"acquired\": {}, \"mode\": {}, \"example\": {}",
                json_str(&e.held),
                json_str(&e.acquired),
                json_str(&e.mode),
                json_str(&e.example)
            );
            out.push('}');
        }
        if !self.lock_graph.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"stale_baseline\": [",
            self.files_scanned, self.suppressed
        );
        for (i, s) in self.stale_baseline.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(s));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string escape.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds a content fingerprint from the significant tokens of a site:
/// whitespace-insensitive, line-insensitive, stable across reformatting.
pub fn fingerprint(parts: &[&str]) -> String {
    parts.join(":")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts() {
        let mut r = Report::default();
        r.push(Finding::new(Rule::SeqCstBan, "b.rs", 2, "fp2", "msg \"quoted\""));
        r.push(Finding::new(Rule::SeqCstBan, "a.rs", 9, "fp1", "plain"));
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        let j = r.to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"files_scanned\": 0"));
    }

    #[test]
    fn text_summary_counts_by_rule() {
        let mut r = Report::default();
        r.push(Finding::new(Rule::RawLock, "x.rs", 1, "f", "m"));
        r.push(Finding::new(Rule::RawLock, "x.rs", 2, "g", "m"));
        let t = r.to_text();
        assert!(t.contains("raw-lock: 2"), "{t}");
    }
}
