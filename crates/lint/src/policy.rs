//! Typed view of `ordering_policy.toml` — the checked-in machine-readable
//! protocol manifest that the rules enforce and the doc-sync test pins
//! against the node.rs per-field table.

use crate::minitoml::Table;
use std::collections::BTreeMap;

/// Allowed orderings for one protected field, mirroring the three columns
/// of the node.rs table plus the RMW column implied by `value`.
#[derive(Debug, Clone, Default)]
pub struct FieldPolicy {
    /// Allowed orderings for `store`.
    pub store: Vec<String>,
    /// Allowed orderings for lock-free loads.
    pub load_lockfree: Vec<String>,
    /// Allowed orderings for loads under the guarding lock.
    pub load_locked: Vec<String>,
    /// Allowed orderings for `swap`/`compare_exchange`/`fetch_*`.
    pub rmw: Vec<String>,
}

impl FieldPolicy {
    /// The static checker cannot tell a locked load from a lock-free one,
    /// so a `load` is accepted with any ordering from either column.
    pub fn load_union(&self) -> Vec<String> {
        let mut v = self.load_lockfree.clone();
        for o in &self.load_locked {
            if !v.contains(o) {
                v.push(o.clone());
            }
        }
        v
    }
}

/// A `[[atomics.allow]]` site exemption.
#[derive(Debug, Clone)]
pub struct AtomicAllow {
    pub file: String,
    pub field: String,
    pub op: String,
    pub ordering: String,
    pub reason: String,
}

/// A `[[seqcst.allow]]` file exemption.
#[derive(Debug, Clone)]
pub struct SeqCstAllow {
    pub file: String,
    pub reason: String,
}

/// A `[[locks.raw_allow]]` file exemption from the raw-lock ban.
#[derive(Debug, Clone)]
pub struct RawLockAllow {
    pub file: String,
    pub reason: String,
}

/// A `[[locks.nested_succ]]` pin: the one place a blocking succ-lock may be
/// taken while another succ lock is held (R2 ascending order).
#[derive(Debug, Clone)]
pub struct NestedSuccPin {
    pub file: String,
    pub function: String,
    pub held: String,
    pub acquired: String,
    pub reason: String,
}

/// A `[[version.bump_sites]]` pin: one relink site that rewires node links
/// without the node's succ lock and must therefore bump its seqlock word.
#[derive(Debug, Clone)]
pub struct VersionBumpSite {
    pub file: String,
    pub function: String,
    pub reason: String,
}

/// The `[version]` table: the succ-window seqlock discipline (optimistic
/// write path). Absent from manifests that predate the versioned protocol —
/// the rule is inert then.
#[derive(Debug, Clone)]
pub struct VersionPolicy {
    /// The per-node seqlock field name (`version`).
    pub field: String,
    /// The parity-preserving relink-bump helper (`bump_version`); the only
    /// sanctioned version RMW outside the enforcement files.
    pub helper: String,
    /// The versioned lock wrappers that must exist in the enforcement files
    /// and couple the lock to the field (the odd/even bumps).
    pub wrappers: Vec<String>,
    /// Reviewed relink sites that must call the helper.
    pub bump_sites: Vec<VersionBumpSite>,
}

/// The `[recovery]` table: the online-recovery gate discipline. The
/// active-writer gate is the single word recovery's quarantine correctness
/// hangs on, so its state-changing methods must stay confined to the
/// poison/recover modules, and the recovery entry points must cite the
/// recovery invariants they uphold. Absent from manifests that predate
/// online recovery — the rule is inert then.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// The gate field name (`gate`).
    pub gate: String,
    /// State-changing gate methods (enter/exit/poison/begin_recovery/
    /// finish_recovery) callable only from `files`.
    pub methods: Vec<String>,
    /// Files allowed to change gate state.
    pub files: Vec<String>,
    /// Files holding the recovery entry points; each must cite every tag
    /// in `entry_tags` in a comment.
    pub entry_points: Vec<String>,
    /// Registered invariant tags (sans the `inv:` prefix) the entry points
    /// must cite.
    pub entry_tags: Vec<String>,
}

/// A `[coverage.windows.<name>]` entry: one named write window.
#[derive(Debug, Clone)]
pub struct Window {
    pub name: String,
    /// File that must contain the `FailPoint::<variant>` use site.
    pub file: String,
    /// lo-trace `Phase` whose span instruments this window.
    pub trace_phase: String,
}

/// File-set and path configuration, overridable so fixture workspaces can
/// point the analyzer at miniature trees.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Directory whose sources the atomics + lock rules cover.
    pub core_src: String,
    /// Directories covered by the raw-lock ban. Defaults to `[core_src]`
    /// when the manifest omits the key, so pre-existing manifests keep
    /// their exact meaning; the grown workspace extends it to crates that
    /// host their own lock-bearing protocol code (the lo-store combiner).
    pub lock_scopes: Vec<String>,
    /// Roots scanned by workspace-wide rules (SeqCst ban, unsafe hygiene).
    pub workspace_roots: Vec<String>,
    /// Files allowed to use raw lock primitives (the enforcement point).
    pub enforcement_files: Vec<String>,
    /// Files whose lock-nesting graph is extracted.
    pub graph_files: Vec<String>,
    /// The failpoint catalog (declares `FailPoint::ALL`).
    pub fail_catalog: String,
    /// The lo-trace library (declares the `phases!` list).
    pub trace_lib: String,
    /// File holding the `wait_phase` LockClass→Phase map.
    pub wait_map_file: String,
    /// File holding the `hold_phase` LockClass→Phase map.
    pub hold_map_file: String,
    /// DESIGN.md (invariant-tag registry for unsafe hygiene).
    pub design_doc: String,
    /// The file whose module docs carry the per-field ordering table
    /// (doc-sync target).
    pub node_doc: String,
    /// Crate roots where SAFETY comments must carry an `[inv:…]` tag.
    pub tag_roots: Vec<String>,
}

/// The whole manifest.
#[derive(Debug)]
pub struct Policy {
    pub scope: Scope,
    pub fields: BTreeMap<String, FieldPolicy>,
    pub atomic_allows: Vec<AtomicAllow>,
    pub seqcst_allows: Vec<SeqCstAllow>,
    pub raw_lock_allows: Vec<RawLockAllow>,
    pub nested_succ: Vec<NestedSuccPin>,
    pub windows: Vec<Window>,
    /// Registered invariant tags (`[unsafe] tags = […]`).
    pub unsafe_tags: Vec<String>,
    /// Succ-window seqlock discipline (`[version]`), when the manifest
    /// declares one.
    pub version: Option<VersionPolicy>,
    /// Online-recovery gate discipline (`[recovery]`), when the manifest
    /// declares one.
    pub recovery: Option<RecoveryPolicy>,
}

fn strs(t: &Table, key: &str) -> Vec<String> {
    t.get_str_array(key).map(<[String]>::to_vec).unwrap_or_default()
}

fn req_str(t: &Table, key: &str, ctx: &str) -> Result<String, String> {
    t.get_str(key)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

impl Policy {
    /// Loads and validates a parsed manifest.
    pub fn from_table(t: &Table) -> Result<Policy, String> {
        let scope_t = t.table("scope").ok_or("missing [scope] table")?;
        let core_src = req_str(scope_t, "core_src", "[scope]")?;
        let mut lock_scopes = strs(scope_t, "lock_scopes");
        if lock_scopes.is_empty() {
            lock_scopes = vec![core_src.clone()];
        }
        let scope = Scope {
            core_src,
            lock_scopes,
            workspace_roots: strs(scope_t, "workspace_roots"),
            enforcement_files: strs(scope_t, "enforcement_files"),
            graph_files: strs(scope_t, "graph_files"),
            fail_catalog: req_str(scope_t, "fail_catalog", "[scope]")?,
            trace_lib: req_str(scope_t, "trace_lib", "[scope]")?,
            wait_map_file: req_str(scope_t, "wait_map_file", "[scope]")?,
            hold_map_file: req_str(scope_t, "hold_map_file", "[scope]")?,
            design_doc: req_str(scope_t, "design_doc", "[scope]")?,
            node_doc: req_str(scope_t, "node_doc", "[scope]")?,
            tag_roots: strs(scope_t, "tag_roots"),
        };
        if scope.workspace_roots.is_empty() {
            return Err("[scope] workspace_roots must not be empty".into());
        }

        let mut fields = BTreeMap::new();
        if let Some(ft) = t.table("atomics.fields") {
            for (name, sub) in &ft.children {
                fields.insert(
                    name.clone(),
                    FieldPolicy {
                        store: strs(sub, "store"),
                        load_lockfree: strs(sub, "load_lockfree"),
                        load_locked: strs(sub, "load_locked"),
                        rmw: strs(sub, "rmw"),
                    },
                );
            }
        }
        if fields.is_empty() {
            return Err("no [atomics.fields.*] tables in manifest".into());
        }

        let mut atomic_allows = Vec::new();
        for (i, a) in t.array("atomics.allow").iter().enumerate() {
            let ctx = format!("[[atomics.allow]] #{}", i + 1);
            atomic_allows.push(AtomicAllow {
                file: req_str(a, "file", &ctx)?,
                field: req_str(a, "field", &ctx)?,
                op: req_str(a, "op", &ctx)?,
                ordering: req_str(a, "ordering", &ctx)?,
                reason: req_str(a, "reason", &ctx)?,
            });
        }

        let mut seqcst_allows = Vec::new();
        for (i, a) in t.array("seqcst.allow").iter().enumerate() {
            let ctx = format!("[[seqcst.allow]] #{}", i + 1);
            seqcst_allows.push(SeqCstAllow {
                file: req_str(a, "file", &ctx)?,
                reason: req_str(a, "reason", &ctx)?,
            });
        }

        let mut raw_lock_allows = Vec::new();
        for (i, a) in t.array("locks.raw_allow").iter().enumerate() {
            let ctx = format!("[[locks.raw_allow]] #{}", i + 1);
            raw_lock_allows.push(RawLockAllow {
                file: req_str(a, "file", &ctx)?,
                reason: req_str(a, "reason", &ctx)?,
            });
        }

        let mut nested_succ = Vec::new();
        for (i, a) in t.array("locks.nested_succ").iter().enumerate() {
            let ctx = format!("[[locks.nested_succ]] #{}", i + 1);
            nested_succ.push(NestedSuccPin {
                file: req_str(a, "file", &ctx)?,
                function: req_str(a, "function", &ctx)?,
                held: req_str(a, "held", &ctx)?,
                acquired: req_str(a, "acquired", &ctx)?,
                reason: req_str(a, "reason", &ctx)?,
            });
        }

        let mut windows = Vec::new();
        if let Some(wt) = t.table("coverage.windows") {
            for (name, sub) in &wt.children {
                let ctx = format!("[coverage.windows.{name}]");
                windows.push(Window {
                    name: name.clone(),
                    file: req_str(sub, "file", &ctx)?,
                    trace_phase: req_str(sub, "trace_phase", &ctx)?,
                });
            }
        }

        let unsafe_tags = t.table("unsafe").map(|u| strs(u, "tags")).unwrap_or_default();
        if unsafe_tags.is_empty() {
            return Err("[unsafe] tags must not be empty".into());
        }

        // [[version.bump_sites]] alone creates a `version` child table, so
        // the discipline is declared iff `field` is present.
        let version = match t.table("version").filter(|vt| vt.get_str("field").is_some()) {
            Some(vt) => {
                let mut bump_sites = Vec::new();
                for (i, a) in t.array("version.bump_sites").iter().enumerate() {
                    let ctx = format!("[[version.bump_sites]] #{}", i + 1);
                    bump_sites.push(VersionBumpSite {
                        file: req_str(a, "file", &ctx)?,
                        function: req_str(a, "function", &ctx)?,
                        reason: req_str(a, "reason", &ctx)?,
                    });
                }
                Some(VersionPolicy {
                    field: req_str(vt, "field", "[version]")?,
                    helper: req_str(vt, "helper", "[version]")?,
                    wrappers: strs(vt, "wrappers"),
                    bump_sites,
                })
            }
            None => {
                if !t.array("version.bump_sites").is_empty() {
                    return Err(
                        "[[version.bump_sites]] requires a [version] table with `field`/`helper`"
                            .into(),
                    );
                }
                None
            }
        };

        let recovery = match t.table("recovery") {
            Some(rt) => {
                let rp = RecoveryPolicy {
                    gate: req_str(rt, "gate", "[recovery]")?,
                    methods: strs(rt, "methods"),
                    files: strs(rt, "files"),
                    entry_points: strs(rt, "entry_points"),
                    entry_tags: strs(rt, "entry_tags"),
                };
                if rp.methods.is_empty() || rp.files.is_empty() {
                    return Err("[recovery] methods and files must not be empty".into());
                }
                Some(rp)
            }
            None => None,
        };

        Ok(Policy {
            scope,
            fields,
            atomic_allows,
            seqcst_allows,
            raw_lock_allows,
            nested_succ,
            windows,
            unsafe_tags,
            version,
            recovery,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::minitoml;

    pub(crate) const MINIMAL: &str = r#"
[scope]
core_src = "crates/core/src"
workspace_roots = ["crates"]
enforcement_files = ["crates/core/src/sync.rs"]
graph_files = ["crates/core/src/update.rs"]
fail_catalog = "crates/check/src/fail.rs"
trace_lib = "crates/trace/src/lib.rs"
wait_map_file = "crates/core/src/sync.rs"
hold_map_file = "crates/core/src/poison.rs"
design_doc = "DESIGN.md"
node_doc = "crates/core/src/node.rs"
tag_roots = ["crates/core/src"]

[atomics.fields.mark]
store = ["Release"]
load_lockfree = ["Acquire"]
load_locked = ["Relaxed"]
rmw = []

[unsafe]
tags = ["lock-exclusion"]

[coverage.windows.rotate-mid-heights]
file = "crates/core/src/balance.rs"
trace_phase = "Rotation"
"#;

    #[test]
    fn minimal_manifest_loads() {
        let t = minitoml::parse(MINIMAL).unwrap();
        let p = Policy::from_table(&t).unwrap();
        assert_eq!(p.fields["mark"].load_union(), ["Acquire", "Relaxed"]);
        assert_eq!(p.windows.len(), 1);
        assert_eq!(p.windows[0].name, "rotate-mid-heights");
    }

    #[test]
    fn lock_scopes_default_to_core_src() {
        let t = minitoml::parse(MINIMAL).unwrap();
        let p = Policy::from_table(&t).unwrap();
        assert_eq!(
            p.scope.lock_scopes,
            ["crates/core/src"],
            "absent lock_scopes must fall back to [core_src]"
        );

        let with = MINIMAL.replace(
            "core_src = \"crates/core/src\"",
            "core_src = \"crates/core/src\"\nlock_scopes = [\"crates/core/src\", \"crates/store/src\"]",
        );
        let p = Policy::from_table(&minitoml::parse(&with).unwrap()).unwrap();
        assert_eq!(p.scope.lock_scopes, ["crates/core/src", "crates/store/src"]);
        assert_eq!(p.scope.core_src, "crates/core/src", "core_src is unchanged");
    }

    #[test]
    fn version_table_is_optional_and_parses() {
        let t = minitoml::parse(MINIMAL).unwrap();
        assert!(Policy::from_table(&t).unwrap().version.is_none());

        let with = format!(
            "{MINIMAL}\n[version]\nfield = \"version\"\nhelper = \"bump_version\"\n\
             wrappers = [\"lock_traced_versioned\"]\n\n[[version.bump_sites]]\n\
             file = \"crates/core/src/balance.rs\"\nfunction = \"rotate\"\nreason = \"r\"\n"
        );
        let p = Policy::from_table(&minitoml::parse(&with).unwrap()).unwrap();
        let v = p.version.expect("declared [version] must parse");
        assert_eq!(v.field, "version");
        assert_eq!(v.helper, "bump_version");
        assert_eq!(v.wrappers, ["lock_traced_versioned"]);
        assert_eq!(v.bump_sites.len(), 1);
        assert_eq!(v.bump_sites[0].function, "rotate");
    }

    #[test]
    fn recovery_table_is_optional_and_parses() {
        let t = minitoml::parse(MINIMAL).unwrap();
        assert!(Policy::from_table(&t).unwrap().recovery.is_none());

        let with = format!(
            "{MINIMAL}\n[recovery]\ngate = \"gate\"\n\
             methods = [\"enter\", \"poison\"]\nfiles = [\"crates/core/src/poison.rs\"]\n\
             entry_points = [\"crates/core/src/recover.rs\"]\n\
             entry_tags = [\"recovery-quarantine\"]\n"
        );
        let p = Policy::from_table(&minitoml::parse(&with).unwrap()).unwrap();
        let r = p.recovery.expect("declared [recovery] must parse");
        assert_eq!(r.gate, "gate");
        assert_eq!(r.methods, ["enter", "poison"]);
        assert_eq!(r.files, ["crates/core/src/poison.rs"]);
        assert_eq!(r.entry_points, ["crates/core/src/recover.rs"]);
        assert_eq!(r.entry_tags, ["recovery-quarantine"]);
    }

    #[test]
    fn recovery_without_methods_is_an_error() {
        let bad = format!("{MINIMAL}\n[recovery]\ngate = \"gate\"\n");
        assert!(Policy::from_table(&minitoml::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn bump_sites_without_version_table_is_an_error() {
        let orphan = format!(
            "{MINIMAL}\n[[version.bump_sites]]\nfile = \"f.rs\"\nfunction = \"g\"\nreason = \"r\"\n"
        );
        assert!(Policy::from_table(&minitoml::parse(&orphan).unwrap()).is_err());
    }

    #[test]
    fn missing_scope_is_an_error() {
        let t = minitoml::parse("[unsafe]\ntags=[\"x\"]\n").unwrap();
        assert!(Policy::from_table(&t).is_err());
    }
}
