//! A minimal TOML subset reader — just enough for `ordering_policy.toml`
//! and `lint_baseline.toml`, with zero dependencies.
//!
//! Supported: `[table.path]` headers, `[[array.of.tables]]` headers,
//! `key = "string"`, `key = 123`, `key = true/false`,
//! `key = ["a", "b"]` (string arrays, single- or multi-line), `#` comments,
//! blank lines. Unsupported constructs (inline tables, dotted keys,
//! multi-line strings) are a parse error, not a silent skip.

use std::collections::BTreeMap;

/// A TOML value in the supported subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrArray(Vec<String>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Value::StrArray(v) => Some(v),
            _ => None,
        }
    }
}

/// One table: key → value plus any nested child tables.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub values: BTreeMap<String, Value>,
    pub children: BTreeMap<String, Table>,
    /// Array-of-tables entries declared with `[[path]]` under this table.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

impl Table {
    /// Looks up a nested table by dotted path (`"coverage.windows"`).
    pub fn table(&self, path: &str) -> Option<&Table> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.children.get(seg)?;
        }
        Some(cur)
    }
    /// Looks up an array-of-tables by dotted path: last segment names the
    /// array, any prefix walks child tables.
    pub fn array(&self, path: &str) -> &[Table] {
        let (prefix, last) = match path.rfind('.') {
            Some(i) => (&path[..i], &path[i + 1..]),
            None => ("", path),
        };
        let parent = if prefix.is_empty() { Some(self) } else { self.table(prefix) };
        parent
            .and_then(|t| t.arrays.get(last))
            .map_or(&[], Vec::as_slice)
    }
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).and_then(Value::as_str)
    }
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.values.get(key).and_then(Value::as_int)
    }
    pub fn get_str_array(&self, key: &str) -> Option<&[String]> {
        self.values.get(key).and_then(Value::as_str_array)
    }
}

/// Parses the supported TOML subset. Errors carry a 1-based line number.
pub fn parse(src: &str) -> Result<Table, String> {
    let mut root = Table::default();
    // Path of the currently-open table; for `[[x]]` the cursor is the last
    // element of the array, addressed as (path, in_array).
    let mut cur_path: Vec<String> = Vec::new();
    let mut cur_is_array = false;

    let lines: Vec<&str> = src.lines().collect();
    let mut idx = 0usize;
    while idx < lines.len() {
        let lineno = idx + 1;
        let mut owned;
        let mut line = strip_comment(lines[idx]).trim();
        // Multi-line array: accumulate until the brackets balance.
        if line.contains('=')
            && line[line.find('=').unwrap() + 1..].trim().starts_with('[')
            && !array_closed(line)
        {
            owned = line.to_string();
            while idx + 1 < lines.len() && !array_closed(&owned) {
                idx += 1;
                owned.push(' ');
                owned.push_str(strip_comment(lines[idx]).trim());
            }
            if !array_closed(&owned) {
                return Err(format!("line {lineno}: unterminated array"));
            }
            line = &owned;
        }
        idx += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let path: Vec<String> = inner.split('.').map(|s| s.trim().to_string()).collect();
            if path.iter().any(String::is_empty) {
                return Err(format!("line {lineno}: empty segment in table path"));
            }
            // Ensure the parent chain exists, then push a new array entry.
            let (last, prefix) = path.split_last().unwrap();
            let mut t = &mut root;
            for seg in prefix {
                t = t.children.entry(seg.clone()).or_default();
            }
            t.arrays.entry(last.clone()).or_default().push(Table::default());
            cur_path = path;
            cur_is_array = true;
        } else if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let path: Vec<String> = inner.split('.').map(|s| s.trim().to_string()).collect();
            if path.iter().any(String::is_empty) {
                return Err(format!("line {lineno}: empty segment in table path"));
            }
            let mut t = &mut root;
            for seg in &path {
                t = t.children.entry(seg.clone()).or_default();
            }
            cur_path = path;
            cur_is_array = false;
        } else if let Some(eq) = find_eq(line) {
            let key = line[..eq].trim();
            let val = line[eq + 1..].trim();
            if key.is_empty() || key.contains('.') {
                return Err(format!("line {lineno}: unsupported key `{key}`"));
            }
            let value = parse_value(val).map_err(|e| format!("line {lineno}: {e}"))?;
            let t = cursor(&mut root, &cur_path, cur_is_array);
            t.values.insert(key.trim_matches('"').to_string(), value);
        } else {
            return Err(format!("line {lineno}: unsupported syntax `{line}`"));
        }
    }
    Ok(root)
}

/// Parses a TOML file from disk.
pub fn parse_file(path: &std::path::Path) -> Result<Table, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&src).map_err(|e| format!("{}: {e}", path.display()))
}

fn cursor<'a>(root: &'a mut Table, path: &[String], is_array: bool) -> &'a mut Table {
    if path.is_empty() {
        return root;
    }
    if is_array {
        let (last, prefix) = path.split_last().unwrap();
        let mut t = root;
        for seg in prefix {
            t = t.children.entry(seg.clone()).or_default();
        }
        t.arrays.entry(last.clone()).or_default().last_mut().unwrap()
    } else {
        let mut t = root;
        for seg in path {
            t = t.children.entry(seg.clone()).or_default();
        }
        t
    }
}

/// Finds the `=` separating key and value (not inside quotes — keys in this
/// subset are never quoted strings containing `=`).
fn find_eq(line: &str) -> Option<usize> {
    line.find('=')
}

/// Whether the brackets of an (array) value line are balanced outside
/// strings — i.e. the array literal is complete.
fn array_closed(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut esc = false;
    let mut seen = false;
    for c in s.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '[' if !in_str => {
                depth += 1;
                seen = true;
            }
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    seen && depth <= 0
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> Result<Value, String> {
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or("unterminated string")?;
        return Ok(Value::Str(unescape(inner)));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or("unterminated array")?.trim();
        if inner.is_empty() {
            return Ok(Value::StrArray(Vec::new()));
        }
        let mut out = Vec::new();
        for part in split_array(inner)? {
            let part = part.trim();
            let inner = part
                .strip_prefix('"')
                .and_then(|p| p.strip_suffix('"'))
                .ok_or_else(|| format!("array element `{part}` is not a string"))?;
            out.push(unescape(inner));
        }
        return Ok(Value::StrArray(out));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    Err(format!("unsupported value `{s}`"))
}

/// Splits an array body on commas outside quotes.
fn split_array(s: &str) -> Result<Vec<&str>, String> {
    let mut out = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string in array".into());
    }
    let tail = s[start..].trim();
    if !tail.is_empty() {
        out.push(&s[start..]);
    }
    Ok(out)
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_arrays_values() {
        let t = parse(
            r#"
top = "level"          # comment
[atomics.fields.mark]
store = ["Release"]
load_lockfree = ["Acquire"]
[[seqcst.allow]]
file = "crates/reclaim/src/lib.rs"
reason = "SC-fenced EBR"
[[seqcst.allow]]
file = "crates/check/src/lin.rs"
count = 1
ok = true
"#,
        )
        .unwrap();
        assert_eq!(t.get_str("top"), Some("level"));
        let mark = t.table("atomics.fields.mark").unwrap();
        assert_eq!(mark.get_str_array("store").unwrap(), ["Release".to_string()]);
        let allows = t.array("seqcst.allow");
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].get_str("file"), Some("crates/reclaim/src/lib.rs"));
        assert_eq!(allows[1].get_int("count"), Some(1));
        assert_eq!(allows[1].values.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let t = parse("k = \"a # b\"\n").unwrap();
        assert_eq!(t.get_str("k"), Some("a # b"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("good = 1\nbad line\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }

    #[test]
    fn multiline_arrays() {
        let t = parse("files = [\n  \"a.rs\",   # one\n  \"b.rs\",\n]\nnext = 1\n").unwrap();
        assert_eq!(t.get_str_array("files").unwrap(), ["a.rs".to_string(), "b.rs".to_string()]);
        assert_eq!(t.get_int("next"), Some(1));
    }

    #[test]
    fn empty_array_and_escapes() {
        let t = parse("a = []\nb = [\"x\\\"y\", \"z\"]\n").unwrap();
        assert_eq!(t.get_str_array("a").unwrap().len(), 0);
        assert_eq!(t.get_str_array("b").unwrap(), ["x\"y".to_string(), "z".to_string()]);
    }
}
