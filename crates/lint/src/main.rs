//! CLI: `cargo run -p lo-lint -- [flags]`
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings with
//! `--deny`, 2 operational error (bad manifest, unreadable workspace).

use lo_lint::{baseline, find_root, is_dirty, run_lint, Config};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
lo-lint — static analyzer for the logical-ordering concurrency protocol

USAGE:
    lo-lint [--root DIR] [--manifest PATH] [--baseline PATH]
            [--format text|json] [--out FILE] [--deny] [--write-baseline]

FLAGS:
    --root DIR         workspace root (default: walk up to ordering_policy.toml)
    --manifest PATH    policy manifest (default: <root>/ordering_policy.toml)
    --baseline PATH    suppression baseline (default: <root>/lint_baseline.toml)
    --format FMT       `text` (default) or `json`
    --out FILE         also write the report to FILE
    --deny             exit 1 if any finding survives the baseline
    --write-baseline   write a baseline suppressing all current findings, then exit
    -h, --help         this help
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut manifest: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut deny = false;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let r = match a.as_str() {
            "--root" => take("--root").map(|v| root = Some(PathBuf::from(v))),
            "--manifest" => take("--manifest").map(|v| manifest = Some(PathBuf::from(v))),
            "--baseline" => take("--baseline").map(|v| baseline_path = Some(PathBuf::from(v))),
            "--format" => take("--format").map(|v| format = v),
            "--out" => take("--out").map(|v| out_file = Some(PathBuf::from(v))),
            "--deny" => {
                deny = true;
                Ok(())
            }
            "--write-baseline" => {
                write_baseline = true;
                Ok(())
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(e) = r {
            eprintln!("lo-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    if format != "text" && format != "json" {
        eprintln!("lo-lint: --format must be `text` or `json`");
        return ExitCode::from(2);
    }

    let root = match root.or_else(|| {
        std::env::current_dir().ok().and_then(|d| find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "lo-lint: no ordering_policy.toml found walking up from the current \
                 directory; pass --root"
            );
            return ExitCode::from(2);
        }
    };

    let cfg = Config { root: root.clone(), manifest, baseline: baseline_path.clone() };
    let report = match run_lint(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lo-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let path = baseline_path.unwrap_or_else(|| root.join("lint_baseline.toml"));
        let text = baseline::render(&report.findings);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("lo-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "lo-lint: wrote {} suppressing {} finding(s)",
            path.display(),
            report.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let rendered = match format.as_str() {
        "json" => report.to_json(),
        _ => report.to_text(),
    };
    print!("{rendered}");
    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("lo-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if deny && is_dirty(&report) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
