//! Rule family 2: lock discipline.
//!
//! (a) **Enforcement point** — raw lock primitives (`.lock()`, `.try_lock()`,
//!     `.unlock()`, `Mutex`/`RwLock`/`RawMutex` types) may appear only in the
//!     manifest's `enforcement_files` (sync.rs and the poison-release path)
//!     or in a `[[locks.raw_allow]]` file. Everything else must go through
//!     the `NodeLock::*_traced` API.
//!
//! (b) **Lock-nesting graph** — the wrapper calls (`lock_succ`,
//!     `lock_tree`, `try_lock_tree`, `lock_tree_upward`, `lock_parent`, and
//!     their unlocks) in the manifest's `graph_files` are extracted per
//!     function and replayed through a linear held-set simulation against
//!     the paper's three lock-order rules:
//!
//! * **R1** succ locks are acquired before tree locks — a *blocking*
//!   succ acquisition while any tree lock is held is an error;
//! * **R2** succ locks nest only in ascending key order — a blocking
//!   succ acquisition while a succ lock is held must match a reviewed
//!   `[[locks.nested_succ]]` pin naming the (function, held, acquired)
//!   triple;
//! * **R3** tree locks are taken bottom-up — a blocking *plain*
//!   `lock_tree` while a tree lock is held is an error (descending
//!   acquisitions must use `try_lock_tree` + restart; upward ones must
//!   use `lock_tree_upward`/`lock_parent`, which lockdep rank-checks at
//!   runtime).
//!
//! The simulation is intra-procedural and *divergence-aware*: a brace block
//! whose own statement level contains `return`/`continue`/`break` (the
//! restart idiom: `if !try_lock { unlock everything; continue }`) is
//! simulated against a snapshot of the held-set and then discarded, so its
//! unlocks do not leak into the fall-through path. What it cannot see is a
//! lock held by a *caller* (e.g. `remove_pe` entering with the
//! predecessor's succ lock) — that remains the runtime lockdep ledger's
//! job. The value here is the converse: a *new* nesting in the write paths
//! fails review at compile time instead of depending on a test hitting the
//! interleaving.

use crate::findings::{fingerprint, Finding, LockEdge, Rule};
use crate::lexer::{SourceFile, TokKind, Token};
use crate::policy::Policy;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Succ,
    Tree,
}

impl Class {
    fn name(self) -> &'static str {
        match self {
            Class::Succ => "Succ",
            Class::Tree => "Tree",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Blocking,
    Try,
    Upward,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Blocking => "blocking",
            Mode::Try => "try",
            Mode::Upward => "upward",
        }
    }
}

pub fn check(
    files: &[SourceFile],
    policy: &Policy,
    out: &mut Vec<Finding>,
    graph: &mut Vec<LockEdge>,
) {
    raw_lock_ban(files, policy, out);
    nesting_graph(files, policy, out, graph);
}

// ---------------------------------------------------------------------------
// (a) raw-lock ban
// ---------------------------------------------------------------------------

fn raw_lock_ban(files: &[SourceFile], policy: &Policy, out: &mut Vec<Finding>) {
    // `lock_scopes` defaults to `[core_src]` (policy.rs), so manifests that
    // predate multi-scope coverage keep their exact file set.
    let prefixes: Vec<String> =
        policy.scope.lock_scopes.iter().map(|p| format!("{p}/")).collect();
    let mut allow_used = vec![false; policy.raw_lock_allows.len()];

    for f in files {
        if !prefixes.iter().any(|p| f.path.starts_with(p.as_str())) {
            continue;
        }
        if policy.scope.enforcement_files.contains(&f.path) {
            continue;
        }
        let allow_idx = policy.raw_lock_allows.iter().position(|a| a.file == f.path);
        let toks = &f.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || f.in_test_code(t.line) {
                continue;
            }
            let raw_call = matches!(t.text.as_str(), "lock" | "try_lock" | "unlock")
                && i > 0
                && toks[i - 1].is_punct('.')
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('(');
            let raw_type = matches!(t.text.as_str(), "Mutex" | "RwLock" | "RawMutex")
                && (i == 0 || !toks[i - 1].is_punct('.'));
            if !(raw_call || raw_type) {
                continue;
            }
            if let Some(k) = allow_idx {
                allow_used[k] = true;
                continue;
            }
            out.push(Finding::new(
                Rule::RawLock,
                &f.path,
                t.line,
                fingerprint(&["raw-lock", &t.text, f.line(t.line).trim()]),
                format!(
                    "raw lock primitive `{}` outside the sync.rs enforcement point; node \
                     locks must go through `NodeLock::{{lock,try_lock,unlock}}_traced` (or add \
                     a reviewed [[locks.raw_allow]] entry)",
                    t.text
                ),
            ));
        }
    }

    for (k, used) in allow_used.iter().enumerate() {
        if !used {
            let a = &policy.raw_lock_allows[k];
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["stale-raw-lock-allow", &a.file]),
                format!("stale [[locks.raw_allow]]: {} uses no raw lock primitives", a.file),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// (b) nesting graph
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Held {
    class: Class,
    recv: String,
}

#[derive(Debug)]
struct Acq {
    class: Class,
    mode: Mode,
    unlock: bool,
}

fn classify(name: &str) -> Option<Acq> {
    let (class, mode, unlock) = match name {
        "lock_succ" => (Class::Succ, Mode::Blocking, false),
        "try_lock_succ" => (Class::Succ, Mode::Try, false),
        "unlock_succ" => (Class::Succ, Mode::Blocking, true),
        "lock_tree" => (Class::Tree, Mode::Blocking, false),
        "lock_tree_upward" => (Class::Tree, Mode::Upward, false),
        "try_lock_tree" => (Class::Tree, Mode::Try, false),
        "unlock_tree" => (Class::Tree, Mode::Blocking, true),
        _ => return None,
    };
    Some(Acq { class, mode, unlock })
}

/// `(name, body_start_token, body_end_token)` for every `fn` in the file.
/// Shared with the version-bump rule, which pins bump sites by function.
pub(crate) fn fn_spans(toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
        {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            while j < toks.len() {
                if toks[j].is_punct(';') {
                    break; // bodyless declaration
                }
                if toks[j].is_punct('{') {
                    let start = j;
                    let mut depth = 1i32;
                    j += 1;
                    while j < toks.len() && depth > 0 {
                        if toks[j].is_punct('{') {
                            depth += 1;
                        } else if toks[j].is_punct('}') {
                            depth -= 1;
                        }
                        j += 1;
                    }
                    spans.push((name.clone(), start, j));
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    spans
}

/// Receiver of a method call: the tokens before the `.` at `dot`.
/// Handles `ident.`, `a.b.`, `nref(x).`, `nref(*x).`, `nref(a.b).`.
fn receiver(toks: &[Token], dot: usize) -> String {
    if dot == 0 {
        return format!("?@{}", toks[dot].line);
    }
    let prev = dot - 1;
    if toks[prev].is_punct(')') {
        // Walk back to the matching '(' and join what's inside.
        let mut depth = 1i32;
        let mut k = prev;
        while k > 0 && depth > 0 {
            k -= 1;
            if toks[k].is_punct(')') {
                depth += 1;
            } else if toks[k].is_punct('(') {
                depth -= 1;
            }
        }
        let inner: Vec<&str> = toks[k + 1..prev]
            .iter()
            .filter(|t| t.kind == TokKind::Ident || t.is_punct('.'))
            .map(|t| t.text.as_str())
            .collect();
        if inner.is_empty() {
            return format!("?@{}", toks[dot].line);
        }
        return inner.concat();
    }
    if toks[prev].kind == TokKind::Ident {
        // Compose one level of field access: `a.b`.
        if prev >= 2 && toks[prev - 1].is_punct('.') && toks[prev - 2].kind == TokKind::Ident {
            return format!("{}.{}", toks[prev - 2].text, toks[prev].text);
        }
        return toks[prev].text.clone();
    }
    format!("?@{}", toks[dot].line)
}

/// Assignment target for a `… = self.lock_parent(…)` call whose `self` token
/// is at `self_idx`: scans back within the statement for `<ident> =`.
fn assign_target(toks: &[Token], self_idx: usize) -> Option<String> {
    let mut k = self_idx;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_punct('=') {
            // `let name =` / `name =` / `let mut name =`
            if k > 0 && toks[k - 1].kind == TokKind::Ident {
                return Some(toks[k - 1].text.clone());
            }
            return None;
        }
    }
    None
}

fn nesting_graph(
    files: &[SourceFile],
    policy: &Policy,
    out: &mut Vec<Finding>,
    graph: &mut Vec<LockEdge>,
) {
    let mut pin_used = vec![false; policy.nested_succ.len()];

    for f in files {
        if !policy.scope.graph_files.contains(&f.path) {
            continue;
        }
        for (fn_name, start, end) in fn_spans(&f.tokens) {
            simulate_fn(f, &fn_name, start, end, policy, out, graph, &mut pin_used);
        }
    }

    for (k, used) in pin_used.iter().enumerate() {
        if !used {
            let p = &policy.nested_succ[k];
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["stale-nested-succ", &p.file, &p.function]),
                format!(
                    "stale [[locks.nested_succ]]: no blocking succ-in-succ acquisition \
                     ({} while holding {}) remains in {}::{}",
                    p.acquired, p.held, p.file, p.function
                ),
            ));
        }
    }

    // Class-level cycle check over *blocking, unpinned* edges. Try and
    // upward acquisitions are deadlock-free by construction (try restarts,
    // upward is rank-checked); pinned succ-succ edges are ordered by key.
    let blocking: Vec<(&str, &str)> = graph
        .iter()
        .filter(|e| e.mode == "blocking")
        .map(|e| (e.held.as_str(), e.acquired.as_str()))
        .collect();
    for class in ["Succ", "Tree"] {
        if has_cycle(&blocking, class) {
            out.push(Finding::new(
                Rule::LockOrder,
                "lock-nesting-graph",
                0,
                fingerprint(&["cycle", class]),
                format!(
                    "the statically-extracted lock-nesting graph has a blocking cycle \
                     through class {class}; the paper's order (succ locks, ascending; then \
                     tree locks, bottom-up) admits no blocking cycle"
                ),
            ));
        }
    }
}

fn has_cycle(edges: &[(&str, &str)], start: &str) -> bool {
    // Tiny DFS: does `start` reach itself?
    let mut stack = vec![start];
    let mut seen = Vec::new();
    while let Some(n) = stack.pop() {
        for (h, a) in edges {
            if *h == n {
                if *a == start {
                    return true;
                }
                if !seen.contains(a) {
                    seen.push(*a);
                    stack.push(a);
                }
            }
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn simulate_fn(
    f: &SourceFile,
    fn_name: &str,
    start: usize,
    end: usize,
    policy: &Policy,
    out: &mut Vec<Finding>,
    graph: &mut Vec<LockEdge>,
    pin_used: &mut [bool],
) {
    let mut held: Vec<Held> = Vec::new();
    // `start` is the body's `{`, `end` one past its `}`.
    let inner_end = end.saturating_sub(1).min(f.tokens.len());
    let mut ctx = SimCtx { f, fn_name, policy };
    sim_range(&mut ctx, start + 1, inner_end, &mut held, out, graph, pin_used);
}

struct SimCtx<'a> {
    f: &'a SourceFile,
    fn_name: &'a str,
    policy: &'a Policy,
}

/// Index of the `}` matching the `{` at `open` (or `end` if unterminated).
fn matching_brace(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 1i32;
    let mut i = open + 1;
    while i < end {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end
}

/// Whether the block `[start, end)` has a `return`/`continue`/`break` at its
/// own statement level (not inside a nested block).
fn block_diverges(toks: &[Token], start: usize, end: usize) -> bool {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
        } else if depth == 0
            && matches!(toks[i].text.as_str(), "return" | "continue" | "break")
            && toks[i].kind == TokKind::Ident
        {
            return true;
        }
        i += 1;
    }
    false
}

fn sim_range(
    ctx: &mut SimCtx,
    start: usize,
    end: usize,
    held: &mut Vec<Held>,
    out: &mut Vec<Finding>,
    graph: &mut Vec<LockEdge>,
    pin_used: &mut [bool],
) {
    let toks = &ctx.f.tokens;
    let mut i = start;
    while i < end && i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            let close = matching_brace(toks, i, end);
            if block_diverges(toks, i + 1, close) {
                // Early-exit branch: findings inside still count, but its
                // unlocks/locks do not reach the fall-through path.
                let mut snapshot = held.clone();
                sim_range(ctx, i + 1, close, &mut snapshot, out, graph, pin_used);
            } else {
                sim_range(ctx, i + 1, close, held, out, graph, pin_used);
            }
            i = close + 1;
            continue;
        }
        // `… .lock_parent(` — an upward tree acquisition whose "receiver"
        // is the binding the parent is returned into.
        if t.is_ident("lock_parent")
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            let recv = if i >= 2 { assign_target(toks, i - 2) } else { None }
                .unwrap_or_else(|| format!("ret@{}", t.line));
            acquire(
                ctx.f, ctx.fn_name, t.line, Class::Tree, Mode::Upward, &recv, ctx.policy,
                held, out, graph, pin_used,
            );
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            if let Some(acq) = classify(&t.text) {
                let recv = receiver(toks, i - 1);
                if acq.unlock {
                    // Pop the most recent matching hold; unmatched unlocks
                    // (caller-held locks, aliased bindings) are ignored.
                    if let Some(pos) = held
                        .iter()
                        .rposition(|h| h.class == acq.class && h.recv == recv)
                    {
                        held.remove(pos);
                    } else if recv.starts_with("?@") {
                        // Unrecognized receiver spelling: assume it releases
                        // the most recent hold of that class.
                        if let Some(pos) = held.iter().rposition(|h| h.class == acq.class) {
                            held.remove(pos);
                        }
                    }
                } else {
                    acquire(
                        ctx.f, ctx.fn_name, t.line, acq.class, acq.mode, &recv, ctx.policy,
                        held, out, graph, pin_used,
                    );
                }
            }
        }
        i += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn acquire(
    f: &SourceFile,
    fn_name: &str,
    line: u32,
    class: Class,
    mode: Mode,
    recv: &str,
    policy: &Policy,
    held: &mut Vec<Held>,
    out: &mut Vec<Finding>,
    graph: &mut Vec<LockEdge>,
    pin_used: &mut [bool],
) {
    // A blocking succ-in-succ acquisition matching a reviewed
    // [[locks.nested_succ]] pin is the paper's sanctioned ascending-key
    // nesting (R2); resolve it before recording edges so the Succ→Succ edge
    // is tagged `pinned` and the blocking-cycle check does not count the
    // paper's own order as a deadlock.
    let in_test = f.in_test_code(line);
    let pin = if mode == Mode::Blocking && class == Class::Succ && !in_test {
        held.iter().find(|h| h.class == Class::Succ).and_then(|h| {
            policy.nested_succ.iter().position(|p| {
                p.file == f.path
                    && p.function == fn_name
                    && p.held == h.recv
                    && p.acquired == recv
            })
        })
    } else {
        None
    };
    if let Some(k) = pin {
        pin_used[k] = true;
    }

    // Record class-level edges for every lock currently held.
    for h in held.iter() {
        let mn = if pin.is_some() && h.class == Class::Succ && class == Class::Succ {
            "pinned"
        } else {
            mode.name()
        };
        let (hn, an) = (h.class.name(), class.name());
        if !graph
            .iter()
            .any(|e| e.held == hn && e.acquired == an && e.mode == mn)
        {
            graph.push(LockEdge {
                held: hn.to_string(),
                acquired: an.to_string(),
                mode: mn.to_string(),
                example: format!("{}:{}", f.path, line),
            });
        }
    }

    if mode == Mode::Blocking && !in_test {
        let tree_held = held.iter().any(|h| h.class == Class::Tree);
        match class {
            Class::Succ if tree_held => {
                out.push(Finding::new(
                    Rule::LockOrder,
                    &f.path,
                    line,
                    fingerprint(&["r1", fn_name, recv]),
                    format!(
                        "R1 violation in `{fn_name}`: blocking succ-lock acquisition on `{recv}` \
                         while a tree lock is held — the paper acquires all succ locks before \
                         any tree lock"
                    ),
                ));
            }
            Class::Succ => {
                if let Some(h) = held.iter().find(|h| h.class == Class::Succ) {
                    if pin.is_none() {
                        out.push(Finding::new(
                            Rule::LockOrder,
                            &f.path,
                            line,
                            fingerprint(&["r2", fn_name, &h.recv, recv]),
                            format!(
                                "R2: blocking succ-lock on `{recv}` while holding succ-lock \
                                 on `{}` in `{fn_name}` has no [[locks.nested_succ]] pin — \
                                 nested succ acquisitions are legal only in ascending key \
                                 order and each site must be pinned and reviewed",
                                h.recv
                            ),
                        ));
                    }
                }
            }
            Class::Tree if tree_held => {
                out.push(Finding::new(
                    Rule::LockOrder,
                    &f.path,
                    line,
                    fingerprint(&["r3", fn_name, recv]),
                    format!(
                        "R3 violation in `{fn_name}`: blocking `lock_tree` on `{recv}` while a \
                         tree lock is held — descending tree acquisitions must use \
                         `try_lock_tree` + restart, upward ones `lock_tree_upward`/`lock_parent`"
                    ),
                ));
            }
            Class::Tree => {}
        }
    }

    held.push(Held { class, recv: recv.to_string() });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_spans_and_receivers() {
        let f = lex(
            "t.rs",
            "fn a(x: u32) { nref(p).lock_succ(); }\nimpl T { fn b(&self) -> bool { self.x } }\n",
        );
        let spans = fn_spans(&f.tokens);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "a");
        assert_eq!(spans[1].0, "b");
        let dot = f.tokens.iter().position(|t| t.is_punct('.')).unwrap();
        assert_eq!(receiver(&f.tokens, dot), "p");
    }

    #[test]
    fn raw_lock_ban_covers_extended_scopes() {
        use crate::minitoml;
        use crate::policy::Policy;
        let manifest = crate::policy::tests::MINIMAL.replace(
            "core_src = \"crates/core/src\"",
            "core_src = \"crates/core/src\"\n\
             lock_scopes = [\"crates/core/src\", \"crates/store/src\"]",
        );
        let manifest = format!(
            "{manifest}\n[[locks.raw_allow]]\nfile = \"crates/store/src/fc.rs\"\n\
             reason = \"combiner queues\"\n"
        );
        let policy = Policy::from_table(&minitoml::parse(&manifest).unwrap()).unwrap();
        let body = "fn f(m: &Mutex<u32>) { m.lock(); }";
        let in_scope = lex("crates/store/src/store.rs", body);
        let allowed = lex("crates/store/src/fc.rs", body);
        let outside = lex("crates/workload/src/runner.rs", body);
        let mut out = Vec::new();
        let mut graph = Vec::new();
        check(&[in_scope, allowed, outside], &policy, &mut out, &mut graph);
        let raw: Vec<_> = out.iter().filter(|f| f.rule == crate::findings::Rule::RawLock).collect();
        assert_eq!(raw.len(), 2, "Mutex type + .lock() call in the one in-scope file: {out:?}");
        assert!(raw.iter().all(|f| f.file == "crates/store/src/store.rs"));
    }

    #[test]
    fn receiver_shapes() {
        let f = lex("t.rs", "nref(*parent).unlock_tree(); zn.unlock_succ(); nref(locks.parent).unlock_tree();");
        let dots: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                t.is_punct('.')
                    && f.tokens.get(i + 1).is_some_and(|n| n.text.starts_with("unlock"))
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(receiver(&f.tokens, dots[0]), "parent");
        assert_eq!(receiver(&f.tokens, dots[1]), "zn");
        assert_eq!(receiver(&f.tokens, dots[2]), "locks.parent");
    }
}
