//! Rule family 1: the per-field atomic-ordering policy and the
//! workspace-wide `SeqCst` ban.

use crate::findings::{fingerprint, Finding, Rule};
use crate::lexer::{SourceFile, TokKind};
use crate::policy::Policy;
use std::collections::BTreeSet;

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic-access ops the policy classifies.
fn op_kind(name: &str) -> Option<&'static str> {
    match name {
        "load" => Some("load"),
        "store" => Some("store"),
        "swap" | "compare_exchange" | "compare_exchange_weak" => Some("rmw"),
        n if n.starts_with("fetch_") => Some("rmw"),
        _ => None,
    }
}

pub fn check(files: &[SourceFile], policy: &Policy, out: &mut Vec<Finding>) {
    field_policy(files, policy, out);
    seqcst_ban(files, policy, out);
}

/// Every `.{field}.{op}(… Ordering …)` in the core tree must use exactly
/// the orderings the manifest's field table allows.
fn field_policy(files: &[SourceFile], policy: &Policy, out: &mut Vec<Finding>) {
    let core_prefix = format!("{}/", policy.scope.core_src);
    let mut allow_used = vec![false; policy.atomic_allows.len()];

    for f in files {
        if !f.path.starts_with(&core_prefix) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            // Pattern: `.` field `.` op `(`
            if !toks[i].is_punct('.') || i + 4 >= toks.len() {
                continue;
            }
            let (field_t, dot2, op_t, paren) = (&toks[i + 1], &toks[i + 2], &toks[i + 3], &toks[i + 4]);
            if field_t.kind != TokKind::Ident || !dot2.is_punct('.') || op_t.kind != TokKind::Ident
            {
                continue;
            }
            let Some(fp) = policy.fields.get(&field_t.text) else { continue };
            let Some(kind) = op_kind(&op_t.text) else { continue };
            if !paren.is_punct('(') {
                continue;
            }
            let line = op_t.line;
            if f.in_test_code(line) {
                continue;
            }
            // Collect the orderings named inside the call's parens.
            let mut depth = 1i32;
            let mut j = i + 5;
            let mut found = Vec::new();
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Ident
                    && ORDERINGS.contains(&toks[j].text.as_str())
                {
                    found.push(toks[j].text.clone());
                }
                j += 1;
            }
            let allowed: Vec<String> = match kind {
                "load" => fp.load_union(),
                "store" => fp.store.clone(),
                _ => fp.rmw.clone(),
            };
            if found.is_empty() {
                out.push(Finding::new(
                    Rule::AtomicPolicy,
                    &f.path,
                    line,
                    fingerprint(&[&field_t.text, &op_t.text, "implicit"]),
                    format!(
                        "`.{}.{}()` has no explicit `Ordering` argument; the policy for `{}` requires one of [{}]",
                        field_t.text,
                        op_t.text,
                        field_t.text,
                        allowed.join(", ")
                    ),
                ));
                continue;
            }
            for ord in found {
                if allowed.contains(&ord) {
                    continue;
                }
                // Site-level manifest exemption?
                let hit = policy.atomic_allows.iter().position(|a| {
                    a.file == f.path
                        && a.field == field_t.text
                        && a.op == op_t.text
                        && a.ordering == ord
                });
                if let Some(k) = hit {
                    allow_used[k] = true;
                    continue;
                }
                out.push(Finding::new(
                    Rule::AtomicPolicy,
                    &f.path,
                    line,
                    fingerprint(&[&field_t.text, &op_t.text, &ord]),
                    format!(
                        "`.{}.{}(Ordering::{})` violates the field policy: `{}` {} must be one of [{}] (see ordering_policy.toml / node.rs table)",
                        field_t.text,
                        op_t.text,
                        ord,
                        field_t.text,
                        kind,
                        allowed.join(", ")
                    ),
                ));
            }
        }
    }

    for (k, used) in allow_used.iter().enumerate() {
        if !used {
            let a = &policy.atomic_allows[k];
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["stale-atomic-allow", &a.file, &a.field, &a.op, &a.ordering]),
                format!(
                    "stale [[atomics.allow]]: no `.{}.{}(Ordering::{})` site remains in {}",
                    a.field, a.op, a.ordering, a.file
                ),
            ));
        }
    }
}

/// `SeqCst` is banned workspace-wide outside the explicit file allowlist.
fn seqcst_ban(files: &[SourceFile], policy: &Policy, out: &mut Vec<Finding>) {
    let allowed: BTreeSet<&str> =
        policy.seqcst_allows.iter().map(|a| a.file.as_str()).collect();
    let mut file_has: BTreeSet<&str> = BTreeSet::new();

    for f in files {
        let is_allowed = allowed.contains(f.path.as_str());
        for t in &f.tokens {
            if t.kind == TokKind::Ident && t.text == "SeqCst" && !f.in_test_code(t.line) {
                if is_allowed {
                    file_has.insert(f.path.as_str());
                } else {
                    out.push(Finding::new(
                        Rule::SeqCstBan,
                        &f.path,
                        t.line,
                        fingerprint(&["seqcst", f.line(t.line).trim()]),
                        "`SeqCst` is banned workspace-wide (node.rs: the tree uses no SeqCst \
                         anywhere); use the per-field ordering from the policy table or add a \
                         justified [[seqcst.allow]] entry"
                            .to_string(),
                    ));
                }
            }
        }
    }

    for a in &policy.seqcst_allows {
        if !file_has.contains(a.file.as_str()) {
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["stale-seqcst-allow", &a.file]),
                format!("stale [[seqcst.allow]]: {} no longer contains SeqCst", a.file),
            ));
        }
    }
}
