//! Rule family 7: the online-recovery gate discipline (manifest
//! `[recovery]`).
//!
//! Online recovery (DESIGN.md §18) hangs off a single active-writer gate
//! word: writers enter/exit it, a dying writer poisons it, and recovery
//! walks it through `begin_recovery`/`finish_recovery`. The quarantine
//! argument — "no writer is inside the tree while repair rewrites layout
//! links" — is only as strong as the claim that *nothing else* moves the
//! gate. This rule proves two source-level facts:
//!
//! 1. **Gate state changes are confined.** Calls to the state-changing
//!    gate methods (`[recovery].methods`) appear in the core tree only
//!    inside the registered files (`[recovery].files`, the poison/recover
//!    modules). A `gate.poison(...)` from, say, a balance helper would be
//!    an unreviewed transition the recovery protocol never sees.
//! 2. **Entry points cite their invariants.** Each file in
//!    `[recovery].entry_points` must cite every `[recovery].entry_tags`
//!    invariant as `[inv:<tag>]` in a comment — the same registered tags
//!    the unsafe-hygiene rule ties to DESIGN.md. Losing the citation means
//!    the quarantine/chain-truth/publish reasoning was edited away.
//!
//! Manifests without a `[recovery]` table (workspaces predating online
//! recovery, fixture manifests for other rules) leave the rule inert.

use super::locks::fn_spans;
use crate::findings::{fingerprint, Finding, Rule};
use crate::lexer::{SourceFile, TokKind};
use crate::policy::{Policy, RecoveryPolicy};

pub fn check(files: &[SourceFile], policy: &Policy, out: &mut Vec<Finding>) {
    let Some(rp) = &policy.recovery else { return };
    check_inner(files, rp, &policy.scope.core_src, out);
}

fn check_inner(files: &[SourceFile], rp: &RecoveryPolicy, core_src: &str, out: &mut Vec<Finding>) {
    gate_confined(files, rp, core_src, out);
    methods_exist(files, rp, out);
    entry_tags_cited(files, rp, out);
}

/// Fact 1: `{gate}.{method}(` in the core tree only inside the registered
/// files. Matches both field access (`self.gate.poison(`) and a local or
/// parameter binding (`gate.enter(`): the token window is anchored on the
/// gate identifier itself.
fn gate_confined(files: &[SourceFile], rp: &RecoveryPolicy, core_src: &str, out: &mut Vec<Finding>) {
    let core_prefix = format!("{core_src}/");
    for f in files {
        if !f.path.starts_with(&core_prefix) || rp.files.contains(&f.path) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            // Pattern: gate `.` method `(`
            if !toks[i].is_ident(&rp.gate) || i + 3 >= toks.len() {
                continue;
            }
            let (dot, method_t, paren) = (&toks[i + 1], &toks[i + 2], &toks[i + 3]);
            if !dot.is_punct('.')
                || method_t.kind != TokKind::Ident
                || !rp.methods.iter().any(|m| method_t.is_ident(m))
                || !paren.is_punct('(')
            {
                continue;
            }
            let line = method_t.line;
            if f.in_test_code(line) {
                continue;
            }
            out.push(Finding::new(
                Rule::Recovery,
                &f.path,
                line,
                fingerprint(&["recovery-gate-escape", &rp.gate, &method_t.text]),
                format!(
                    "`{}.{}()` changes active-writer gate state outside the registered \
                     recovery files; quarantine soundness (DESIGN.md §18) requires every \
                     gate transition to go through them",
                    rp.gate, method_t.text
                ),
            ));
        }
    }
}

/// Every registered state-changing method must still be defined in one of
/// the registered files — a renamed method would silently hollow the rule.
fn methods_exist(files: &[SourceFile], rp: &RecoveryPolicy, out: &mut Vec<Finding>) {
    for method in &rp.methods {
        let found = files.iter().any(|f| {
            rp.files.contains(&f.path)
                && fn_spans(&f.tokens).iter().any(|(name, _, _)| name == method)
        });
        if !found {
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["missing-recovery-method", method]),
                format!(
                    "[recovery] method `{method}` is not defined in any registered recovery \
                     file; the manifest is stale or the gate API was renamed without review"
                ),
            ));
        }
    }
}

/// Fact 2: each entry-point file cites every registered recovery invariant
/// tag in a comment.
fn entry_tags_cited(files: &[SourceFile], rp: &RecoveryPolicy, out: &mut Vec<Finding>) {
    for entry in &rp.entry_points {
        let Some(f) = files.iter().find(|f| &f.path == entry) else {
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["stale-recovery-entry", entry]),
                format!("stale [recovery] entry_points: file {entry} not found in the scanned set"),
            ));
            continue;
        };
        for tag in &rp.entry_tags {
            let needle = format!("[inv:{tag}]");
            if !f.comments.iter().any(|(_, c)| c.contains(&needle)) {
                out.push(Finding::new(
                    Rule::Recovery,
                    &f.path,
                    0,
                    fingerprint(&["missing-recovery-tag", tag]),
                    format!(
                        "recovery entry point no longer cites `{needle}`; the invariant's \
                         proof obligation (DESIGN.md §16.2) must stay anchored in the code \
                         that discharges it"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rp() -> RecoveryPolicy {
        RecoveryPolicy {
            gate: "gate".into(),
            methods: vec!["enter".into(), "poison".into(), "begin_recovery".into()],
            files: vec!["core/src/poison.rs".into(), "core/src/recover.rs".into()],
            entry_points: vec!["core/src/recover.rs".into()],
            entry_tags: vec!["recovery-quarantine".into()],
        }
    }

    fn run(files: &[SourceFile]) -> Vec<Finding> {
        let mut out = Vec::new();
        check_inner(files, &rp(), "core/src", &mut out);
        out
    }

    const RECOVER_OK: &str = "// Drain: [inv:recovery-quarantine] holds here.\n\
         pub fn begin_recovery(&self) { self.gate.begin_recovery(0); }\n\
         pub fn enter(&self) {}\npub fn poison(&self) {}";

    #[test]
    fn clean_workspace_has_no_findings() {
        let files = [
            lex("core/src/recover.rs", RECOVER_OK),
            lex("core/src/update.rs", "fn write(&self) { let e = self.gate.error(); }"),
        ];
        let out = run(&files);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn gate_state_change_outside_registered_files_is_flagged() {
        let files = [
            lex("core/src/recover.rs", RECOVER_OK),
            lex("core/src/balance.rs", "fn rotate(&self) { self.gate.poison(1); }"),
        ];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::Recovery
                && f.fingerprint.starts_with("recovery-gate-escape")
                && f.file == "core/src/balance.rs"),
            "{out:?}"
        );
    }

    #[test]
    fn test_code_may_poison_the_gate() {
        let files = [
            lex("core/src/recover.rs", RECOVER_OK),
            lex(
                "core/src/maps.rs",
                "#[cfg(test)]\nmod tests {\n    fn kill(t: &T) { t.gate.poison(3); }\n}\n",
            ),
        ];
        let out = run(&files);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn read_only_gate_calls_are_free() {
        let files = [
            lex("core/src/recover.rs", RECOVER_OK),
            lex(
                "core/src/tree.rs",
                "fn health(&self) { let _ = self.gate.error(); let _ = self.gate.writers(); }",
            ),
        ];
        let out = run(&files);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_entry_tag_is_flagged() {
        let files = [lex(
            "core/src/recover.rs",
            "// recovery, but the quarantine citation is gone\n\
             pub fn begin_recovery(&self) {}\npub fn enter(&self) {}\npub fn poison(&self) {}",
        )];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::Recovery
                && f.fingerprint.starts_with("missing-recovery-tag")),
            "{out:?}"
        );
    }

    #[test]
    fn missing_entry_file_is_a_manifest_finding() {
        let files = [lex("core/src/poison.rs", "pub fn enter(&self) {}\npub fn poison(&self) {}\npub fn begin_recovery(&self) {}")];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::Manifest
                && f.fingerprint.starts_with("stale-recovery-entry")),
            "{out:?}"
        );
    }

    #[test]
    fn renamed_gate_method_is_a_manifest_finding() {
        let files = [lex(
            "core/src/recover.rs",
            "// [inv:recovery-quarantine]\npub fn enter(&self) {}\npub fn poison(&self) {}",
        )];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::Manifest
                && f.fingerprint.starts_with("missing-recovery-method")
                && f.message.contains("begin_recovery")),
            "{out:?}"
        );
    }
}
