//! Doc-sync: the manifest's `[atomics.fields]` tables and the per-field
//! memory-ordering table in the node.rs module docs must agree.
//!
//! The markdown table is the human-reviewed protocol statement (ISSUE 3);
//! `ordering_policy.toml` is its machine-readable twin that the atomics
//! rule enforces. If they drift, whichever one a reviewer reads is lying
//! about what the other allows — so drift is itself a lint error (and a
//! dedicated unit test, runnable without a full lint pass).

use crate::findings::{fingerprint, Finding, Rule};
use crate::lexer::SourceFile;
use crate::policy::{FieldPolicy, Policy};
use std::collections::BTreeMap;

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One parsed table row, expanded to one entry per field the row names.
#[derive(Debug, Clone, PartialEq)]
pub struct DocRow {
    pub store: Vec<String>,
    pub rmw: Vec<String>,
    pub load_lockfree: Vec<String>,
    pub load_locked: Vec<String>,
}

/// Parses the markdown ordering table out of a file's comments.
pub fn parse_doc_table(f: &SourceFile) -> BTreeMap<String, DocRow> {
    let mut out = BTreeMap::new();
    for (_, text) in &f.comments {
        let line = text.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // `| field | writes | lock-free reads | reads under lock |` splits
        // into ["", field, writes, lf, locked, ""].
        if cells.len() < 6 {
            continue;
        }
        let field_cell = cells[1];
        if field_cell.contains("field") || field_cell.contains("---") {
            continue; // header / separator
        }
        let fields = backticked(field_cell);
        if fields.is_empty() {
            continue;
        }
        let writes = orderings_in(cells[2]);
        let is_rmw = cells[2].contains("swap")
            || cells[2].contains("compare_exchange")
            || cells[2].contains("fetch");
        let row = DocRow {
            store: if is_rmw { Vec::new() } else { writes.clone() },
            rmw: if is_rmw { writes } else { Vec::new() },
            load_lockfree: orderings_in(cells[3]),
            load_locked: orderings_in(cells[4]),
        };
        for field in fields {
            out.insert(field, row.clone());
        }
    }
    out
}

/// Compares a parsed doc table against the manifest's field policies,
/// returning human-readable mismatch descriptions (empty = in sync).
pub fn diff(doc: &BTreeMap<String, DocRow>, fields: &BTreeMap<String, FieldPolicy>) -> Vec<String> {
    let mut errs = Vec::new();
    for (name, row) in doc {
        let Some(fp) = fields.get(name) else {
            errs.push(format!(
                "field `{name}` is in the node.rs table but has no [atomics.fields.{name}] \
                 manifest entry"
            ));
            continue;
        };
        let pairs = [
            ("store", &row.store, &fp.store),
            ("rmw", &row.rmw, &fp.rmw),
            ("load_lockfree", &row.load_lockfree, &fp.load_lockfree),
            ("load_locked", &row.load_locked, &fp.load_locked),
        ];
        for (what, doc_v, man_v) in pairs {
            let mut a = doc_v.clone();
            let mut b = man_v.clone();
            a.sort();
            b.sort();
            if a != b {
                errs.push(format!(
                    "field `{name}` {what}: node.rs table says [{}], manifest says [{}]",
                    a.join(", "),
                    b.join(", ")
                ));
            }
        }
    }
    for name in fields.keys() {
        if !doc.contains_key(name) {
            errs.push(format!(
                "field `{name}` is in the manifest but missing from the node.rs table"
            ));
        }
    }
    errs
}

pub fn check(files: &[SourceFile], policy: &Policy, out: &mut Vec<Finding>) {
    let Some(node) = files.iter().find(|f| f.path == policy.scope.node_doc) else {
        out.push(Finding::new(
            Rule::Manifest,
            &policy.scope.node_doc,
            0,
            "missing-node-doc",
            "doc-sync target file not found in the scanned workspace".to_string(),
        ));
        return;
    };
    let doc = parse_doc_table(node);
    if doc.is_empty() {
        out.push(Finding::new(
            Rule::Manifest,
            &policy.scope.node_doc,
            0,
            "no-doc-table",
            "no per-field ordering table found in the module docs".to_string(),
        ));
        return;
    }
    for err in diff(&doc, &policy.fields) {
        out.push(Finding::new(
            Rule::Manifest,
            &policy.scope.node_doc,
            0,
            fingerprint(&["doc-drift", &err]),
            format!("doc-sync: {err}"),
        ));
    }
}

fn backticked(cell: &str) -> Vec<String> {
    cell.split('`')
        .enumerate()
        .filter(|(i, s)| i % 2 == 1 && !s.is_empty() && !ORDERINGS.contains(s))
        .map(|(_, s)| s.to_string())
        .collect()
}

fn orderings_in(cell: &str) -> Vec<String> {
    ORDERINGS
        .iter()
        .filter(|o| cell.contains(**o))
        .map(|o| (*o).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_rows_and_diffs() {
        let f = lex(
            "node.rs",
            "//! | field | writes | lock-free reads | reads under the guarding lock |\n\
             //! |---|---|---|---|\n\
             //! | `mark`/`zombie` | `Release` | `Acquire` | `Relaxed` |\n\
             //! | `value` | `AcqRel` swap | `Acquire` | — |\n",
        );
        let doc = parse_doc_table(&f);
        assert_eq!(doc.len(), 3);
        assert_eq!(doc["mark"].store, ["Release"]);
        assert_eq!(doc["value"].rmw, ["AcqRel"]);
        assert!(doc["value"].store.is_empty());
        assert!(doc["value"].load_locked.is_empty());

        let mut fields = BTreeMap::new();
        fields.insert(
            "mark".to_string(),
            FieldPolicy {
                store: vec!["Release".into()],
                load_lockfree: vec!["Acquire".into()],
                load_locked: vec!["Relaxed".into()],
                rmw: vec![],
            },
        );
        // zombie + value missing from manifest, mark matches.
        let errs = diff(&doc, &fields);
        assert_eq!(errs.len(), 2, "{errs:?}");
    }
}
