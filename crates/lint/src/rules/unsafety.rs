//! Rule family 3: unsafe hygiene.
//!
//! The workspace lints already deny `clippy::undocumented_unsafe_blocks`,
//! so every `unsafe` block carries *a* `// SAFETY:` comment. This rule adds
//! the protocol link: inside the manifest's `tag_roots` (the core tree and
//! the reclamation crate — the code whose soundness rests on the paper's
//! invariants), the SAFETY comment must also carry an `[inv:<tag>]` marker
//! naming a registered invariant, and every registered tag must be defined
//! in DESIGN.md's invariant registry. A SAFETY comment that names its
//! invariant can be checked against the design argument in review; one that
//! just says "this is fine" cannot.

use crate::findings::{fingerprint, Finding, Rule};
use crate::lexer::SourceFile;
use crate::policy::Policy;

/// Lines scanned upward from an `unsafe` keyword for its SAFETY comment
/// (comments may sit above attributes and blank lines).
const WINDOW: u32 = 10;

pub fn check(
    files: &[SourceFile],
    policy: &Policy,
    design_doc: Option<&str>,
    out: &mut Vec<Finding>,
) {
    // Every registered tag must be defined in DESIGN.md's registry.
    if let Some(doc) = design_doc {
        for tag in &policy.unsafe_tags {
            if !doc.contains(&format!("inv:{tag}")) {
                out.push(Finding::new(
                    Rule::Manifest,
                    &policy.scope.design_doc,
                    0,
                    fingerprint(&["unregistered-tag", tag]),
                    format!(
                        "[unsafe] tag `{tag}` is not defined in {} (expected an `inv:{tag}` \
                         registry entry)",
                        policy.scope.design_doc
                    ),
                ));
            }
        }
    }

    for f in files {
        let needs_tag = policy
            .scope
            .tag_roots
            .iter()
            .any(|r| f.path.starts_with(&format!("{r}/")) || f.path == *r);
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("unsafe") {
                continue;
            }
            let line = toks[i].line;
            let next = toks.get(i + 1);
            let comments =
                f.comments_in(line.saturating_sub(WINDOW).max(1), line);
            match next {
                // `unsafe {` — the block form.
                Some(n) if n.is_punct('{') => {
                    let has_safety = comments.contains("SAFETY");
                    if !has_safety {
                        out.push(Finding::new(
                            Rule::UnsafeHygiene,
                            &f.path,
                            line,
                            fingerprint(&["no-safety", f.line(line).trim()]),
                            "`unsafe` block without an adjacent `// SAFETY:` comment".to_string(),
                        ));
                        continue;
                    }
                    if !needs_tag || f.in_test_code(line) {
                        continue;
                    }
                    let tags = extract_tags(&comments);
                    if tags.is_empty() {
                        out.push(Finding::new(
                            Rule::UnsafeHygiene,
                            &f.path,
                            line,
                            fingerprint(&["no-inv-tag", f.line(line).trim()]),
                            format!(
                                "SAFETY comment names no invariant: inside {} every unsafe \
                                 block's SAFETY comment must carry an `[inv:<tag>]` marker \
                                 from the DESIGN.md registry ({})",
                                policy
                                    .scope
                                    .tag_roots
                                    .join(", "),
                                policy.unsafe_tags.join(", ")
                            ),
                        ));
                    } else {
                        for tag in tags {
                            if !policy.unsafe_tags.contains(&tag) {
                                out.push(Finding::new(
                                    Rule::UnsafeHygiene,
                                    &f.path,
                                    line,
                                    fingerprint(&["unknown-inv-tag", &tag]),
                                    format!(
                                        "SAFETY comment names unregistered invariant \
                                         `[inv:{tag}]`; registered tags: {}",
                                        policy.unsafe_tags.join(", ")
                                    ),
                                ));
                            }
                        }
                    }
                }
                // `unsafe fn name(` — needs a `# Safety` doc section (or an
                // explicit SAFETY comment). `unsafe fn(` is a fn-pointer
                // type, not a declaration.
                Some(n) if n.is_ident("fn") => {
                    let is_decl = toks
                        .get(i + 2)
                        .is_some_and(|t| !t.is_punct('('));
                    if !is_decl {
                        continue;
                    }
                    let doc = f.comments_in(line.saturating_sub(30).max(1), line);
                    if !doc.contains("Safety") && !doc.contains("SAFETY") {
                        out.push(Finding::new(
                            Rule::UnsafeHygiene,
                            &f.path,
                            line,
                            fingerprint(&["unsafe-fn-no-doc", f.line(line).trim()]),
                            "`unsafe fn` without a `# Safety` doc section describing its \
                             contract"
                                .to_string(),
                        ));
                    }
                }
                // `unsafe impl Send/Sync` — needs a SAFETY comment too.
                Some(n) if n.is_ident("impl") && !comments.contains("SAFETY") => {
                    out.push(Finding::new(
                        Rule::UnsafeHygiene,
                        &f.path,
                        line,
                        fingerprint(&["unsafe-impl-no-safety", f.line(line).trim()]),
                        "`unsafe impl` without an adjacent `// SAFETY:` comment justifying \
                         the auto-trait claim"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Extracts `tag` from every `[inv:tag]` occurrence in `text`.
fn extract_tags(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("[inv:") {
        rest = &rest[pos + 5..];
        if let Some(end) = rest.find(']') {
            out.push(rest[..end].trim().to_string());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_extraction() {
        assert_eq!(
            extract_tags("SAFETY: holds because [inv:lock-exclusion] and [inv:arena-slot]."),
            vec!["lock-exclusion".to_string(), "arena-slot".to_string()]
        );
        assert!(extract_tags("SAFETY: trust me").is_empty());
    }
}
