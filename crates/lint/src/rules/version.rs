//! Rule family 6: the succ-window seqlock discipline (manifest `[version]`).
//!
//! The optimistic write path (DESIGN.md §17) validates pred/succ windows
//! against a per-node version word. Its soundness rests on two source-level
//! facts this rule proves:
//!
//! 1. **The version word is written only through sanctioned sites.** The
//!    lock-coupled odd/even bumps live in the enforcement files (the
//!    versioned wrappers named in `[version].wrappers`), and the only other
//!    write is the relink helper (`[version].helper`). Any other
//!    store/RMW on the field would desynchronize the seqlock from the
//!    succ lock and silently admit torn snapshots.
//! 2. **Every reviewed relink site still bumps.** Rotations and 2-children
//!    relocations rewire a node's physical links *without* its succ lock;
//!    each such site is pinned in `[[version.bump_sites]]` and must call
//!    the helper. A pin whose function no longer calls the helper is a
//!    protocol hole (an optimistic reader could validate across a relink);
//!    a helper call outside any pin is an unreviewed relink site.
//!
//! Manifests without a `[version]` table (pre-optimistic trees, fixture
//! workspaces for other rules) leave the rule inert.

use super::locks::fn_spans;
use crate::findings::{fingerprint, Finding, Rule};
use crate::lexer::{SourceFile, TokKind};
use crate::policy::{Policy, VersionPolicy};

pub fn check(files: &[SourceFile], policy: &Policy, out: &mut Vec<Finding>) {
    let Some(vp) = &policy.version else { return };
    check_inner(files, vp, &policy.scope.core_src, &policy.scope.enforcement_files, out);
}

fn check_inner(
    files: &[SourceFile],
    vp: &VersionPolicy,
    core_src: &str,
    enforcement_files: &[String],
    out: &mut Vec<Finding>,
) {
    writes_confined(files, vp, core_src, enforcement_files, out);
    wrappers_exist(files, vp, enforcement_files, out);
    bump_sites(files, vp, core_src, out);
}

/// Atomic ops that mutate the field (loads are free: that is the point of
/// the seqlock — readers validate instead of locking).
fn is_write_op(name: &str) -> bool {
    matches!(name, "store" | "swap" | "compare_exchange" | "compare_exchange_weak")
        || name.starts_with("fetch_")
}

/// Fact 1: `.{field}.{write-op}(` in the core tree only inside the
/// enforcement files or the helper's own body.
fn writes_confined(
    files: &[SourceFile],
    vp: &VersionPolicy,
    core_src: &str,
    enforcement_files: &[String],
    out: &mut Vec<Finding>,
) {
    let core_prefix = format!("{core_src}/");
    for f in files {
        if !f.path.starts_with(&core_prefix) || enforcement_files.contains(&f.path) {
            continue;
        }
        let toks = &f.tokens;
        let spans = fn_spans(toks);
        for i in 0..toks.len() {
            // Pattern: `.` field `.` op `(`
            if !toks[i].is_punct('.') || i + 4 >= toks.len() {
                continue;
            }
            let (field_t, dot2, op_t, paren) =
                (&toks[i + 1], &toks[i + 2], &toks[i + 3], &toks[i + 4]);
            if !field_t.is_ident(&vp.field)
                || !dot2.is_punct('.')
                || op_t.kind != TokKind::Ident
                || !is_write_op(&op_t.text)
                || !paren.is_punct('(')
            {
                continue;
            }
            let line = op_t.line;
            if f.in_test_code(line) {
                continue;
            }
            // Inside the helper's own definition? That is the one
            // sanctioned RMW outside the enforcement files.
            let in_helper = spans
                .iter()
                .any(|(name, start, end)| name == &vp.helper && *start <= i && i < *end);
            if in_helper {
                continue;
            }
            out.push(Finding::new(
                Rule::VersionBump,
                &f.path,
                line,
                fingerprint(&["unregistered-version-rmw", &vp.field, &op_t.text]),
                format!(
                    "`.{}.{}()` writes the seqlock word outside the versioned lock wrappers \
                     and `{}()`; every write must keep the odd/even protocol coupled to the \
                     succ lock (DESIGN.md §17)",
                    vp.field, op_t.text, vp.helper
                ),
            ));
        }
    }
}

/// The declared wrappers must exist in an enforcement file and actually
/// reference the field — a wrapper that stopped bumping would let lock
/// windows pass undetected under an in-flight snapshot.
fn wrappers_exist(
    files: &[SourceFile],
    vp: &VersionPolicy,
    enforcement_files: &[String],
    out: &mut Vec<Finding>,
) {
    for wrapper in &vp.wrappers {
        let found = files.iter().any(|f| {
            enforcement_files.contains(&f.path)
                && fn_spans(&f.tokens).iter().any(|(name, start, end)| {
                    name == wrapper
                        && f.tokens[*start..*end].iter().any(|t| t.is_ident(&vp.field))
                })
        });
        if !found {
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["missing-version-wrapper", wrapper]),
                format!(
                    "[version] wrapper `{wrapper}` does not exist in an enforcement file \
                     (or no longer touches `{}`); the lock/version coupling is broken or \
                     the manifest is stale",
                    vp.field
                ),
            ));
        }
    }
}

/// Fact 2: every pinned relink site calls the helper, and every helper call
/// in the core tree sits inside a pinned site.
fn bump_sites(files: &[SourceFile], vp: &VersionPolicy, core_src: &str, out: &mut Vec<Finding>) {
    // Pin side: each `[[version.bump_sites]]` entry must resolve to a
    // function that calls `.{helper}(`.
    for site in &vp.bump_sites {
        let Some(f) = files.iter().find(|f| f.path == site.file) else {
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["stale-version-pin", &site.file, &site.function]),
                format!(
                    "stale [[version.bump_sites]]: file {} not found in the scanned set",
                    site.file
                ),
            ));
            continue;
        };
        let spans = fn_spans(&f.tokens);
        let Some((_, start, end)) = spans.iter().find(|(name, _, _)| name == &site.function)
        else {
            out.push(Finding::new(
                Rule::Manifest,
                "ordering_policy.toml",
                0,
                fingerprint(&["stale-version-pin", &site.file, &site.function]),
                format!(
                    "stale [[version.bump_sites]]: no `fn {}` in {}",
                    site.function, site.file
                ),
            ));
            continue;
        };
        if !has_helper_call(&f.tokens[*start..*end], &vp.helper) {
            out.push(Finding::new(
                Rule::VersionBump,
                &f.path,
                f.tokens[*start].line,
                fingerprint(&["missing-version-bump", &site.function]),
                format!(
                    "`{}` is a pinned relink site ([[version.bump_sites]]: {}) but no longer \
                     calls `{}()`; optimistic snapshots could validate across the relink",
                    site.function, site.reason, vp.helper
                ),
            ));
        }
    }

    // Call side: `.{helper}(` outside every pinned function is an
    // unreviewed relink site (or a bump that should not exist).
    let core_prefix = format!("{core_src}/");
    for f in files {
        if !f.path.starts_with(&core_prefix) {
            continue;
        }
        let toks = &f.tokens;
        let spans = fn_spans(toks);
        let pinned: Vec<&(String, usize, usize)> = spans
            .iter()
            .filter(|(name, _, _)| {
                vp.bump_sites
                    .iter()
                    .any(|s| s.file == f.path && &s.function == name)
            })
            .collect();
        for i in 0..toks.len() {
            if !toks[i].is_punct('.')
                || i + 2 >= toks.len()
                || !toks[i + 1].is_ident(&vp.helper)
                || !toks[i + 2].is_punct('(')
            {
                continue;
            }
            let line = toks[i + 1].line;
            if f.in_test_code(line) {
                continue;
            }
            if pinned.iter().any(|(_, start, end)| *start <= i && i < *end) {
                continue;
            }
            out.push(Finding::new(
                Rule::VersionBump,
                &f.path,
                line,
                fingerprint(&["unregistered-version-bump", f.line(line).trim()]),
                format!(
                    "`.{}()` call outside every pinned [[version.bump_sites]] function; \
                     register the relink site (with its reason) or remove the bump",
                    vp.helper
                ),
            ));
        }
    }
}

/// Whether the token slice contains a `.{helper}(` method call.
fn has_helper_call(toks: &[crate::lexer::Token], helper: &str) -> bool {
    toks.windows(3).any(|w| {
        w[0].is_punct('.') && w[1].is_ident(helper) && w[2].is_punct('(')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn vp() -> VersionPolicy {
        VersionPolicy {
            field: "version".into(),
            helper: "bump_version".into(),
            wrappers: vec!["lock_traced_versioned".into()],
            bump_sites: vec![crate::policy::VersionBumpSite {
                file: "core/src/balance.rs".into(),
                function: "rotate".into(),
                reason: "relink without succ lock".into(),
            }],
        }
    }

    fn run(files: &[SourceFile]) -> Vec<Finding> {
        let mut out = Vec::new();
        check_inner(files, &vp(), "core/src", &["core/src/sync.rs".to_string()], &mut out);
        out
    }

    #[test]
    fn clean_workspace_has_no_findings() {
        let files = [
            lex(
                "core/src/sync.rs",
                "pub fn lock_traced_versioned(l: &RawLock, version: &AtomicU32) { \
                 l.lock(); version.fetch_add(1, Ordering::AcqRel); }",
            ),
            lex(
                "core/src/balance.rs",
                "fn rotate(&self) { self.relink(); nn.bump_version(); }",
            ),
        ];
        let out = run(&files);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn raw_write_outside_enforcement_is_flagged() {
        let files = [
            lex("core/src/sync.rs", "pub fn lock_traced_versioned(version: &AtomicU32) { version.fetch_add(1, Ordering::AcqRel); }"),
            lex(
                "core/src/balance.rs",
                "fn rotate(&self) { nn.bump_version(); }\n\
                 fn sneaky(&self) { self.version.store(0, Ordering::Release); }",
            ),
        ];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::VersionBump
                && f.fingerprint.starts_with("unregistered-version-rmw")),
            "{out:?}"
        );
    }

    #[test]
    fn helper_body_may_write_the_field() {
        let files = [
            lex("core/src/sync.rs", "pub fn lock_traced_versioned(version: &AtomicU32) { version.fetch_add(1, Ordering::AcqRel); }"),
            lex(
                "core/src/balance.rs",
                "fn bump_version(&self) { self.version.fetch_add(2, Ordering::Release); }\n\
                 fn rotate(&self) { nn.bump_version(); }",
            ),
        ];
        let out = run(&files);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn pinned_site_without_bump_is_flagged() {
        let files = [
            lex("core/src/sync.rs", "pub fn lock_traced_versioned(version: &AtomicU32) { version.fetch_add(1, Ordering::AcqRel); }"),
            lex("core/src/balance.rs", "fn rotate(&self) { self.relink(); }"),
        ];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::VersionBump
                && f.fingerprint.starts_with("missing-version-bump")),
            "{out:?}"
        );
    }

    #[test]
    fn unpinned_bump_call_is_flagged() {
        let files = [
            lex("core/src/sync.rs", "pub fn lock_traced_versioned(version: &AtomicU32) { version.fetch_add(1, Ordering::AcqRel); }"),
            lex(
                "core/src/balance.rs",
                "fn rotate(&self) { nn.bump_version(); }\n\
                 fn other(&self) { nn.bump_version(); }",
            ),
        ];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::VersionBump
                && f.fingerprint.starts_with("unregistered-version-bump")),
            "{out:?}"
        );
    }

    #[test]
    fn missing_wrapper_is_a_manifest_finding() {
        let files = [
            lex("core/src/sync.rs", "pub fn unrelated() {}"),
            lex("core/src/balance.rs", "fn rotate(&self) { nn.bump_version(); }"),
        ];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::Manifest
                && f.fingerprint.starts_with("missing-version-wrapper")),
            "{out:?}"
        );
    }

    #[test]
    fn stale_pin_is_a_manifest_finding() {
        let files = [
            lex(
                "core/src/sync.rs",
                "pub fn lock_traced_versioned(version: &AtomicU32) { version.fetch_add(1, Ordering::AcqRel); }",
            ),
            lex("core/src/balance.rs", "fn unrelated(&self) {}"),
        ];
        let out = run(&files);
        assert!(
            out.iter().any(|f| f.rule == Rule::Manifest
                && f.fingerprint.starts_with("stale-version-pin")),
            "{out:?}"
        );
    }
}
