//! Rule family 4: failpoint / trace-probe coverage.
//!
//! The chaos harness and the flight recorder are only as good as their
//! instrumentation: a write window that loses its failpoint or its lo-trace
//! probe silently drops out of fault-injection and latency evidence. This
//! rule pins the wiring:
//!
//! * the manifest's `[coverage.windows]` table must name exactly the
//!   catalog (`FailPoint::ALL` in fail.rs) — no orphan windows, no
//!   uncataloged failpoints;
//! * each window's declared file must actually reference its
//!   `FailPoint::<Variant>`;
//! * each window's `trace_phase` must be a real `Phase` (the `phases!`
//!   list in the trace crate) that the core tree references;
//! * every `*Wait` phase must have a `*Hold` counterpart, and the
//!   `wait_phase` (sync.rs) and `hold_phase` (poison.rs) LockClass maps
//!   must cover the same classes with matching Wait/Hold pairs — a
//!   `lock_traced` wait with no matching hold probe would make every
//!   lock-window histogram lie.

use crate::findings::{fingerprint, Finding, Rule};
use crate::lexer::{SourceFile, TokKind};
use crate::policy::Policy;
use std::collections::{BTreeMap, BTreeSet};

pub fn check(files: &[SourceFile], policy: &Policy, out: &mut Vec<Finding>) {
    let Some(fail) = files.iter().find(|f| f.path == policy.scope.fail_catalog) else {
        out.push(Finding::new(
            Rule::Coverage,
            &policy.scope.fail_catalog,
            0,
            "missing-fail-catalog",
            "failpoint catalog file not found in the scanned workspace".to_string(),
        ));
        return;
    };
    let Some(trace) = files.iter().find(|f| f.path == policy.scope.trace_lib) else {
        out.push(Finding::new(
            Rule::Coverage,
            &policy.scope.trace_lib,
            0,
            "missing-trace-lib",
            "trace library file not found in the scanned workspace".to_string(),
        ));
        return;
    };

    // --- parse the catalogs -------------------------------------------------
    let variants = failpoint_variants(fail);
    let names = failpoint_names(fail); // variant -> kebab name
    let phases = phase_list(trace); // variant names from phases! { … }

    if variants.is_empty() || names.is_empty() {
        out.push(Finding::new(
            Rule::Coverage,
            &fail.path,
            0,
            "unparsable-fail-catalog",
            "could not extract the FailPoint enum/name map from the catalog".to_string(),
        ));
        return;
    }
    for v in &variants {
        if !names.contains_key(v) {
            out.push(Finding::new(
                Rule::Coverage,
                &fail.path,
                0,
                fingerprint(&["unnamed-failpoint", v]),
                format!("FailPoint::{v} has no arm in `name()`"),
            ));
        }
    }

    // --- windows ↔ catalog --------------------------------------------------
    let window_names: BTreeSet<&str> =
        policy.windows.iter().map(|w| w.name.as_str()).collect();
    let catalog_names: BTreeSet<&str> =
        names.values().map(String::as_str).collect();
    for missing in catalog_names.difference(&window_names) {
        out.push(Finding::new(
            Rule::Coverage,
            "ordering_policy.toml",
            0,
            fingerprint(&["uncovered-failpoint", missing]),
            format!(
                "failpoint `{missing}` has no [coverage.windows.{missing}] entry — every \
                 cataloged write window must declare its site and trace phase"
            ),
        ));
    }
    for orphan in window_names.difference(&catalog_names) {
        out.push(Finding::new(
            Rule::Coverage,
            "ordering_policy.toml",
            0,
            fingerprint(&["orphan-window", orphan]),
            format!("[coverage.windows.{orphan}] names no cataloged failpoint"),
        ));
    }

    // --- per-window checks --------------------------------------------------
    let kebab_to_variant: BTreeMap<&str, &str> =
        names.iter().map(|(v, k)| (k.as_str(), v.as_str())).collect();
    let core_prefix = format!("{}/", policy.scope.core_src);
    for w in &policy.windows {
        let Some(variant) = kebab_to_variant.get(w.name.as_str()) else { continue };
        let Some(file) = files.iter().find(|f| f.path == w.file) else {
            out.push(Finding::new(
                Rule::Coverage,
                &w.file,
                0,
                fingerprint(&["window-file-missing", &w.name]),
                format!("[coverage.windows.{}] declares a file that was not scanned", w.name),
            ));
            continue;
        };
        if !references(file, "FailPoint", variant) {
            out.push(Finding::new(
                Rule::Coverage,
                &w.file,
                0,
                fingerprint(&["window-fp-missing", &w.name]),
                format!(
                    "write window `{}` lost its failpoint: {} no longer references \
                     FailPoint::{variant}",
                    w.name, w.file
                ),
            ));
        }
        if !phases.contains(&w.trace_phase) {
            out.push(Finding::new(
                Rule::Coverage,
                "ordering_policy.toml",
                0,
                fingerprint(&["bad-phase", &w.name, &w.trace_phase]),
                format!(
                    "[coverage.windows.{}] names trace phase `{}`, which is not in the \
                     trace crate's phases! list",
                    w.name, w.trace_phase
                ),
            ));
            continue;
        }
        let probed = files.iter().any(|f| {
            f.path.starts_with(&core_prefix) && references(f, "Phase", &w.trace_phase)
        });
        if !probed {
            out.push(Finding::new(
                Rule::Coverage,
                &w.file,
                0,
                fingerprint(&["window-probe-missing", &w.name, &w.trace_phase]),
                format!(
                    "write window `{}` has no lo-trace probe: Phase::{} is never referenced \
                     in {}",
                    w.name, w.trace_phase, policy.scope.core_src
                ),
            ));
        }
    }

    // --- every failpoint variant fires somewhere in core --------------------
    for v in &variants {
        let used = files.iter().any(|f| {
            f.path.starts_with(&core_prefix)
                && f.path != policy.scope.fail_catalog
                && references(f, "FailPoint", v)
        });
        if !used {
            out.push(Finding::new(
                Rule::Coverage,
                &fail.path,
                0,
                fingerprint(&["dead-failpoint", v]),
                format!(
                    "FailPoint::{v} is cataloged but never fired from {}",
                    policy.scope.core_src
                ),
            ));
        }
    }

    // --- wait/hold pairing --------------------------------------------------
    for p in &phases {
        if let Some(prefix) = p.strip_suffix("Wait") {
            let hold = format!("{prefix}Hold");
            if !phases.contains(&hold) {
                out.push(Finding::new(
                    Rule::Coverage,
                    &trace.path,
                    0,
                    fingerprint(&["unpaired-wait", p]),
                    format!("phase `{p}` has no `{hold}` counterpart — every traced lock \
                             wait needs a matching hold span"),
                ));
            }
        }
    }
    let wait_map = class_phase_map(files, &policy.scope.wait_map_file);
    let hold_map = class_phase_map(files, &policy.scope.hold_map_file);
    if wait_map.is_empty() {
        out.push(Finding::new(
            Rule::Coverage,
            &policy.scope.wait_map_file,
            0,
            "no-wait-map",
            "could not extract a LockClass -> Phase wait map".to_string(),
        ));
    }
    if hold_map.is_empty() {
        out.push(Finding::new(
            Rule::Coverage,
            &policy.scope.hold_map_file,
            0,
            "no-hold-map",
            "could not extract a LockClass -> Phase hold map".to_string(),
        ));
    }
    for (class, wait) in &wait_map {
        match hold_map.get(class) {
            None => out.push(Finding::new(
                Rule::Coverage,
                &policy.scope.hold_map_file,
                0,
                fingerprint(&["no-hold-for-class", class]),
                format!(
                    "LockClass::{class} has a wait phase (`{wait}`) but no hold phase — \
                     its lock_traced waits would never close into hold spans"
                ),
            )),
            Some(hold) => {
                let ok = wait.strip_suffix("Wait").is_some_and(|p| hold == &format!("{p}Hold"));
                if !ok {
                    out.push(Finding::new(
                        Rule::Coverage,
                        &policy.scope.hold_map_file,
                        0,
                        fingerprint(&["mismatched-pair", class]),
                        format!(
                            "LockClass::{class} maps to wait `{wait}` but hold `{hold}` — \
                             not a Wait/Hold pair of the same lock class"
                        ),
                    ));
                }
            }
        }
    }
    for class in hold_map.keys() {
        if !wait_map.contains_key(class) {
            out.push(Finding::new(
                Rule::Coverage,
                &policy.scope.wait_map_file,
                0,
                fingerprint(&["no-wait-for-class", class]),
                format!("LockClass::{class} has a hold phase but no wait phase"),
            ));
        }
    }
}

/// Variants of `enum FailPoint { … }`.
fn failpoint_variants(f: &SourceFile) -> Vec<String> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("enum")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("FailPoint"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let mut depth = 1i32;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && toks[j].kind == TokKind::Ident
                    && toks[j].text.starts_with(char::is_uppercase)
                    && toks.get(j + 1).is_some_and(|t| t.is_punct(',') || t.is_punct('}'))
                {
                    out.push(toks[j].text.clone());
                }
                j += 1;
            }
            break;
        }
    }
    out
}

/// `FailPoint::Variant => "kebab-name"` arms (the `name()` match).
fn failpoint_names(f: &SourceFile) -> BTreeMap<String, String> {
    let toks = &f.tokens;
    let mut out = BTreeMap::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("FailPoint")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 4).is_some_and(|t| t.is_punct('='))
            && toks.get(i + 5).is_some_and(|t| t.is_punct('>'))
        {
            if let Some(s) = toks.get(i + 6).and_then(|t| t.as_str_lit()) {
                out.insert(toks[i + 3].text.clone(), s.to_string());
            }
        }
    }
    out
}

/// Variant names from the `phases! { Variant => "name", … }` invocation.
fn phase_list(f: &SourceFile) -> Vec<String> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("phases")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let mut depth = 1i32;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && toks[j].kind == TokKind::Ident
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct('>'))
                {
                    out.push(toks[j].text.clone());
                }
                j += 1;
            }
            break;
        }
    }
    out
}

/// `LockClass::C => Some(…Phase::P)` arms anywhere in `path`.
fn class_phase_map(files: &[SourceFile], path: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let Some(f) = files.iter().find(|f| f.path == path) else {
        return out;
    };
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if toks[i].is_ident("LockClass")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 4).is_some_and(|t| t.is_punct('='))
            && toks.get(i + 5).is_some_and(|t| t.is_punct('>'))
        {
            // Scan a few tokens ahead for `Phase :: P`.
            let limit = (i + 16).min(toks.len());
            let mut j = i + 6;
            while j + 2 < limit {
                if toks[j].is_ident("Phase")
                    && toks[j + 1].is_punct(':')
                    && toks[j + 2].is_punct(':')
                {
                    if let Some(p) = toks.get(j + 3) {
                        if p.kind == TokKind::Ident {
                            out.insert(toks[i + 3].text.clone(), p.text.clone());
                        }
                    }
                    break;
                }
                j += 1;
            }
        }
    }
    out
}

/// Whether `f` contains the token sequence `base :: member`.
fn references(f: &SourceFile, base: &str, member: &str) -> bool {
    let toks = &f.tokens;
    (0..toks.len()).any(|i| {
        toks[i].is_ident(base)
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident(member))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_catalog_shapes() {
        let f = lex(
            "fail.rs",
            "pub enum FailPoint { A, B }\nimpl FailPoint { pub const fn name(self) -> &'static str { match self { FailPoint::A => \"a-a\", FailPoint::B => \"b-b\" } } }\n",
        );
        assert_eq!(failpoint_variants(&f), vec!["A", "B"]);
        let names = failpoint_names(&f);
        assert_eq!(names["A"], "a-a");
        assert_eq!(names["B"], "b-b");
    }

    #[test]
    fn parses_phases_and_class_maps() {
        let f = lex(
            "lib.rs",
            "phases! {\n /// doc\n AWait => \"a-wait\",\n AHold => \"a-hold\",\n}\n",
        );
        assert_eq!(phase_list(&f), vec!["AWait", "AHold"]);
        let m = lex(
            "sync.rs",
            "fn wait_phase(c: LockClass) -> Option<Phase> { match c { LockClass::Succ => Some(lo_trace::Phase::SuccLockWait), LockClass::Tree => Some(lo_trace::Phase::TreeLockWait) } }",
        );
        let map = class_phase_map(&[m], "sync.rs");
        assert_eq!(map["Succ"], "SuccLockWait");
        assert_eq!(map["Tree"], "TreeLockWait");
    }
}
