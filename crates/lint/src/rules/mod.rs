//! The rule families. Each takes the lexed workspace + policy and
//! appends findings; see the module docs of each for the rule statement.

pub mod atomics;
pub mod coverage;
pub mod docsync;
pub mod locks;
pub mod recovery;
pub mod unsafety;
pub mod version;
