//! The real workspace must lint clean, and the manifest must stay in sync
//! with the node.rs per-field ordering table. CI enforces the same via
//! `lo-lint --deny`; these tests make plain `cargo test` catch a violation
//! (or a protocol-table drift) without the extra job.

use lo_lint::rules::docsync;
use lo_lint::{lexer, lint_root, minitoml, policy::Policy};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn real_workspace_is_clean() {
    let report = lint_root(&workspace_root()).expect("lint must run");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; fix the finding or add a reviewed \
         manifest/baseline entry:\n{}",
        report.to_text()
    );
    assert!(report.stale_baseline.is_empty(), "{:?}", report.stale_baseline);
}

#[test]
fn manifest_matches_node_rs_ordering_table() {
    // Satellite of ISSUE 7: the doc-sync contract as a direct unit test —
    // parse the node.rs markdown table and diff it against the manifest's
    // [atomics.fields] tables, independent of the full lint pass.
    let root = workspace_root();
    let manifest = minitoml::parse_file(&root.join("ordering_policy.toml")).unwrap();
    let policy = Policy::from_table(&manifest).unwrap();

    let rel = "crates/core/src/node.rs";
    let node = lexer::lex_file(&root.join(rel), rel).expect("node.rs must lex");
    let doc = docsync::parse_doc_table(&node);
    assert!(!doc.is_empty(), "no ordering table found in node.rs module docs");

    let errs = docsync::diff(&doc, &policy.fields);
    assert!(
        errs.is_empty(),
        "ordering_policy.toml and the node.rs table drifted — change the \
         protocol in both, in one commit:\n  {}",
        errs.join("\n  ")
    );
}

#[test]
fn real_lock_graph_matches_the_paper() {
    // The extracted class-level nesting graph IS the paper's protocol:
    // succ-in-succ only via the reviewed pin, succ-before-tree blocking is
    // legal (R1's direction), tree-in-tree only via try or upward.
    let report = lint_root(&workspace_root()).expect("lint must run");
    for e in &report.lock_graph {
        match (e.held.as_str(), e.acquired.as_str()) {
            ("Succ", "Succ") => assert!(
                e.mode == "pinned" || e.mode == "try",
                "unsanctioned succ-in-succ edge: {e:?}"
            ),
            ("Tree", "Tree") => assert!(
                e.mode == "try" || e.mode == "upward",
                "blocking tree-in-tree edge: {e:?}"
            ),
            ("Succ", "Tree") => {}
            other => panic!("unexpected edge {other:?} ({e:?})"),
        }
    }
}
