//! Golden tests over the seeded-violation fixture workspace
//! (`tests/fixtures/ws`): every rule family must fire exactly the findings
//! pinned in `golden.json`, and the baseline machinery must suppress by
//! fingerprint and report stale entries.
//!
//! To update the golden after an intentional analyzer change: review the
//! printed diff, then re-run
//! `cargo run -p lo-lint -- --root crates/lint/tests/fixtures/ws --format json --out crates/lint/tests/fixtures/ws/golden.json`.

use lo_lint::{run_lint, Config};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn lint_fixture(baseline: Option<PathBuf>) -> lo_lint::findings::Report {
    run_lint(&Config { root: fixture_root(), manifest: None, baseline })
        .expect("fixture lint must not fail operationally")
}

#[test]
fn seeded_fixture_matches_golden_json() {
    let got = lint_fixture(None).to_json();
    let golden = fixture_root().join("golden.json");
    let want = std::fs::read_to_string(&golden).expect("golden.json must exist");
    if got != want {
        eprintln!("--- got ---\n{got}\n--- want ({}) ---\n{want}", golden.display());
        panic!("fixture findings drifted from golden.json (see diff above)");
    }
}

#[test]
fn every_rule_family_fires_on_the_fixture() {
    let report = lint_fixture(None);
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule.name()).collect();
    rules.sort_unstable();
    rules.dedup();
    for family in [
        "atomic-policy",
        "seqcst",
        "raw-lock",
        "lock-order",
        "unsafe-hygiene",
        "coverage",
        "version-bump",
        "manifest",
    ] {
        assert!(rules.contains(&family), "family `{family}` produced no finding: {rules:?}");
    }
}

#[test]
fn negative_sites_stay_clean() {
    // The fixture's sanctioned sites must NOT be flagged: the pinned
    // succ-in-succ nesting (`remove_ok`), the restart idiom (`restart_ok`),
    // the allowlisted SeqCst file, and the allowlisted raw-lock file.
    let report = lint_fixture(None);
    for f in &report.findings {
        assert!(
            !f.message.contains("remove_ok")
                && !f.message.contains("restart_ok")
                && !f.message.contains("rotate_ok"),
            "sanctioned site flagged: {}",
            f.message
        );
        assert!(f.file != "src/sc_ok.rs" && f.file != "src/arena_ok.rs", "{}", f.file);
    }
    // And the pinned edge must appear in the exported graph as `pinned`.
    assert!(
        report
            .lock_graph
            .iter()
            .any(|e| e.held == "Succ" && e.acquired == "Succ" && e.mode == "pinned"),
        "pinned succ-in-succ edge missing from the lock graph: {:?}",
        report.lock_graph
    );
}

#[test]
fn baseline_suppresses_by_fingerprint_and_reports_stale() {
    let plain = lint_fixture(None);
    let with_baseline = lint_fixture(Some(fixture_root().join("baseline_partial.toml")));

    assert_eq!(with_baseline.suppressed, 2, "both raw-lock entries must match");
    assert_eq!(
        with_baseline.findings.len(),
        plain.findings.len() - 2,
        "exactly the two suppressed findings must disappear"
    );
    assert!(
        with_baseline.findings.iter().all(|f| f.rule.name() != "raw-lock"),
        "no raw-lock finding may survive the baseline"
    );
    assert_eq!(with_baseline.stale_baseline.len(), 1, "{:?}", with_baseline.stale_baseline);
    assert!(with_baseline.stale_baseline[0].contains("never_existed"));
}

#[test]
fn golden_json_is_deterministic() {
    assert_eq!(lint_fixture(None).to_json(), lint_fixture(None).to_json());
}
