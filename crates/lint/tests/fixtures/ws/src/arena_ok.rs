//! Raw locks are allowlisted for this file via [[locks.raw_allow]].

pub struct A {
    m: Mutex<()>,
}

impl A {
    pub fn with(&self) {
        let _g = self.m.lock();
    }
}
