//! Fixture failpoint catalog. WinB is never fired (seeds dead-failpoint and
//! win-b's window-fp-missing); WinC has no window entry in the manifest.

pub enum FailPoint {
    WinA,
    WinB,
    WinC,
}

impl FailPoint {
    pub const fn name(self) -> &'static str {
        match self {
            FailPoint::WinA => "win-a",
            FailPoint::WinB => "win-b",
            FailPoint::WinC => "win-c",
        }
    }
}
