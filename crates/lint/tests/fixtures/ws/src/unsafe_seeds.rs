//! Seeded unsafe-hygiene violations, spaced so the 10-line comment windows
//! of adjacent sites never overlap.

pub struct W(u32);

impl W {
    // seed: an unjustified unsafe block (no adjacent comment at all)
    fn a(&self, p: *const u32) -> u32 {
        unsafe { *p }
    }

    fn pad_a1(&self) -> u32 {
        self.0
    }

    fn pad_a2(&self) -> u32 {
        self.0 + 1
    }

    // seed: justified but names no invariant
    fn b(&self, p: *const u32) -> u32 {
        // SAFETY: p is valid for reads.
        unsafe { *p }
    }

    fn pad_b1(&self) -> u32 {
        self.0
    }

    fn pad_b2(&self) -> u32 {
        self.0 + 2
    }

    // seed: names an invariant the registry does not contain
    fn c(&self, p: *const u32) -> u32 {
        // SAFETY: [inv:bogus] not a registered tag.
        unsafe { *p }
    }

    fn pad_c1(&self) -> u32 {
        self.0
    }

    fn pad_c2(&self) -> u32 {
        self.0 + 3
    }

    // ok: registered tag
    fn d(&self, p: *const u32) -> u32 {
        // SAFETY: [inv:epoch-liveness] the caller holds a live guard.
        unsafe { *p }
    }
}

pub fn pad_d01() -> u32 {
    1
}

pub fn pad_d02() -> u32 {
    2
}

pub fn pad_d03() -> u32 {
    3
}

pub fn pad_d04() -> u32 {
    4
}

pub fn pad_d05() -> u32 {
    5
}

pub fn pad_d06() -> u32 {
    6
}

pub fn pad_d07() -> u32 {
    7
}

pub fn pad_d08() -> u32 {
    8
}

// seed: an `unsafe fn` with no contract section in its docs
pub unsafe fn no_contract(p: *const u32) -> u32 {
    // SAFETY: [inv:epoch-liveness] the caller upholds the fn contract.
    unsafe { *p }
}

pub fn pad_e01() -> u32 {
    1
}

pub fn pad_e02() -> u32 {
    2
}

pub fn pad_e03() -> u32 {
    3
}

// seed: an `unsafe impl` with no justification comment
unsafe impl Send for W {}
