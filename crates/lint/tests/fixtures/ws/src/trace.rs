//! Fixture trace library. PeLockWait has no PeLockHold twin, seeding the
//! unpaired-wait finding.

phases! {
    Descent => "descent",
    SuccLockWait => "succ-lock-wait",
    SuccLockHold => "succ-lock-hold",
    TreeLockWait => "tree-lock-wait",
    TreeLockHold => "tree-lock-hold",
    PeLockWait => "pe-lock-wait",
}
