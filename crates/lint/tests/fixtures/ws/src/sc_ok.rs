//! SeqCst is allowlisted for this file in the fixture manifest.

pub fn fence() {
    std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
}
