//! Fixture doc-sync target. The locked-reads column deliberately disagrees
//! with the manifest (`Acquire` here, `Relaxed` there).
//!
//! | field  | writes          | lock-free reads | reads under the guarding lock |
//! |--------|-----------------|-----------------|-------------------------------|
//! | `mark` | `Release` store | `Acquire`       | `Acquire`                     |

pub struct N;
