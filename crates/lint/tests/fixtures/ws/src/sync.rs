//! Fixture enforcement point: raw lock primitives are sanctioned here, and
//! the wait-side LockClass -> Phase map lives here.

pub struct L {
    raw: RawMutex,
}

impl L {
    pub fn lock(&self) {
        self.raw.lock();
    }

    pub fn unlock(&self) {
        self.raw.unlock();
    }

    fn wait_phase(class: LockClass) -> Phase {
        match class {
            LockClass::Succ => Phase::SuccLockWait,
            LockClass::Tree => Phase::TreeLockWait,
        }
    }
}
