//! Fixture enforcement point: raw lock primitives are sanctioned here, and
//! the wait-side LockClass -> Phase map lives here.

pub struct L {
    raw: RawMutex,
}

impl L {
    pub fn lock(&self) {
        self.raw.lock();
    }

    pub fn unlock(&self) {
        self.raw.unlock();
    }

    // Versioned wrapper named by the fixture [version] table: couples the
    // raw lock to the seqlock word (odd on acquire).
    pub fn lock_versioned(&self, version: &AtomicU32) {
        self.raw.lock();
        version.fetch_add(1, Ordering::AcqRel);
    }

    fn wait_phase(class: LockClass) -> Phase {
        match class {
            LockClass::Succ => Phase::SuccLockWait,
            LockClass::Tree => Phase::TreeLockWait,
        }
    }
}
