//! Fixture hold-side map: LockClass::Tree is deliberately missing, seeding
//! the no-hold-for-class finding.

fn hold_phase(class: LockClass) -> Option<Phase> {
    match class {
        LockClass::Succ => Some(Phase::SuccLockHold),
        _ => None,
    }
}
