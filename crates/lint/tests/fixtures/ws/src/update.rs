//! Seeded lock/atomic violations. Never compiled — only lexed by lo-lint;
//! the numbered comments name the finding each site must produce.

use crate::fail::FailPoint;

pub struct U {
    // seed: raw-lock (Mutex type outside the enforcement point)
    state: Mutex<u32>,
}

impl U {
    // seed: atomic-policy + seqcst (mark stores must be Release)
    fn bad_store(&self, n: &N) {
        n.mark.store(true, Ordering::SeqCst);
    }

    // seed: atomic-policy (no RMW ordering is allowed for `mark`)
    fn bad_swap(&self, n: &N) -> bool {
        n.mark.swap(true, Ordering::AcqRel)
    }

    // ok: Acquire loads are in the policy
    fn good_load(&self, n: &N) -> bool {
        n.mark.load(Ordering::Acquire)
    }

    // seed: raw-lock (`.lock()` call outside the enforcement point)
    fn bad_raw(&self) -> u32 {
        *self.state.lock()
    }

    // seed: R1 (blocking succ acquisition while a tree lock is held)
    fn r1_bad(&self, t: &N, u: &N) {
        t.lock_tree();
        u.lock_succ();
        u.unlock_succ();
        t.unlock_tree();
    }

    // seed: R2 (succ-in-succ with no [[locks.nested_succ]] pin)
    fn r2_bad(&self, p: &N, q: &N) {
        p.lock_succ();
        q.lock_succ();
        q.unlock_succ();
        p.unlock_succ();
    }

    // ok: the same nesting, pinned by the manifest; also fires win-a's
    // failpoint and its SuccLockHold probe
    fn remove_ok(&self, p: &N, s: &N) {
        p.lock_succ();
        s.lock_succ();
        fp::fail_at(FailPoint::WinA);
        let _span = span(Phase::SuccLockHold);
        s.unlock_succ();
        p.unlock_succ();
    }

    // seed: R3 (blocking tree-in-tree; must try_lock_tree + restart)
    fn r3_bad(&self, a: &N, b: &N) {
        a.lock_tree();
        b.lock_tree();
        b.unlock_tree();
        a.unlock_tree();
    }

    // ok: pinned relink site that bumps the seqlock word
    fn rotate_ok(&self, n: &N) {
        n.relink();
        n.bump_version();
    }

    // seed: version-bump (pinned relink site that no longer bumps)
    fn rotate_bad(&self, n: &N) {
        n.relink();
    }

    // seed: version-bump (helper call outside every pinned site)
    fn sneaky_bump(&self, n: &N) {
        n.bump_version();
    }

    // seed: version-bump (raw write to the seqlock word outside the
    // enforcement point and the helper)
    fn raw_version_write(&self, n: &N) {
        n.version.store(0, Ordering::Relaxed);
    }

    // ok: the restart idiom — the diverging block's unlock must not leak
    // into the fall-through held-set (divergence-aware simulation)
    fn restart_ok(&self, p: &N, c: &N) {
        loop {
            p.lock_succ();
            if !c.try_lock_tree() {
                p.unlock_succ();
                continue;
            }
            fp::fail_at(FailPoint::WinC);
            c.unlock_tree();
            p.unlock_succ();
            break;
        }
    }
}
