//! Integration tests for the from-scratch EBR: build a small lock-free
//! Treiber stack on top of it and hammer it — the classic acid test for a
//! reclamation scheme (pop retires nodes that concurrent pops may still be
//! reading).

use lo_reclaim::Collector;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

struct StackNode {
    value: u64,
    next: *mut StackNode,
}

struct TreiberStack {
    head: AtomicPtr<StackNode>,
    collector: Collector,
}

// SAFETY: all mutation is CAS on `head`; nodes are freed through the epoch.
unsafe impl Send for TreiberStack {}
// SAFETY: as above — shared access only ever races on the atomic `head`.
unsafe impl Sync for TreiberStack {}

impl TreiberStack {
    fn new() -> Self {
        Self { head: AtomicPtr::new(std::ptr::null_mut()), collector: Collector::new() }
    }

    fn push(&self, handle: &lo_reclaim::Handle, value: u64) {
        let _guard = handle.pin();
        let node = Box::into_raw(Box::new(StackNode { value, next: std::ptr::null_mut() }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: node is unpublished; we own it.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    fn pop(&self, handle: &lo_reclaim::Handle) -> Option<u64> {
        let guard = handle.pin();
        loop {
            let head = self.head.load(Ordering::Acquire);
            if head.is_null() {
                return None;
            }
            // SAFETY: `head` was reachable under our pin; even if another
            // thread pops and retires it concurrently, the epoch keeps the
            // allocation alive for us.
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: still protected by our pin (see above).
                let value = unsafe { (*head).value };
                // SAFETY: unlinked by the successful CAS; single retirer.
                unsafe { guard.defer_destroy_box(head) };
                return Some(value);
            }
        }
    }
}

impl Drop for TreiberStack {
    fn drop(&mut self) {
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: &mut self — remaining nodes are uniquely owned.
            let boxed = unsafe { Box::from_raw(p) };
            p = boxed.next;
        }
    }
}

#[test]
fn treiber_stack_conserves_values() {
    const PER_THREAD: u64 = if cfg!(debug_assertions) { 20_000 } else { 60_000 };
    const THREADS: u64 = 4;
    let stack = Arc::new(TreiberStack::new());
    let popped_sum = Arc::new(AtomicU64::new(0));
    let popped_count = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stack = Arc::clone(&stack);
            let popped_sum = Arc::clone(&popped_sum);
            let popped_count = Arc::clone(&popped_count);
            s.spawn(move || {
                let handle = stack.collector.register();
                // Interleave pushes and pops.
                for i in 0..PER_THREAD {
                    stack.push(&handle, t * PER_THREAD + i + 1);
                    if i % 2 == 0 {
                        if let Some(v) = stack.pop(&handle) {
                            popped_sum.fetch_add(v, Ordering::Relaxed);
                            popped_count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                handle.flush();
            });
        }
    });

    // Drain the remainder single-threaded.
    let handle = stack.collector.register();
    while let Some(v) = stack.pop(&handle) {
        popped_sum.fetch_add(v, Ordering::Relaxed);
        popped_count.fetch_add(1, Ordering::Relaxed);
    }
    for _ in 0..4 {
        handle.flush();
    }

    let n = THREADS * PER_THREAD;
    assert_eq!(popped_count.load(Ordering::Relaxed), n, "every push popped exactly once");
    // Sum of t*PER_THREAD + i + 1 over all t, i.
    let expected: u64 = (0..THREADS)
        .map(|t| (0..PER_THREAD).map(|i| t * PER_THREAD + i + 1).sum::<u64>())
        .sum();
    assert_eq!(popped_sum.load(Ordering::Relaxed), expected, "values conserved");
}

#[test]
fn many_collectors_are_independent() {
    let a = Collector::new();
    let b = Collector::new();
    let ha = a.register();
    let _pinned_forever = ha.pin();
    // A pinned thread in collector `a` must not block `b`'s progress.
    let hb = b.register();
    let before = b.epoch();
    hb.flush();
    hb.flush();
    assert!(b.epoch() > before, "independent collectors must advance");
}
