//! # lo-reclaim: epoch-based memory reclamation, from scratch
//!
//! The paper's Java implementation leans on the JVM garbage collector: a
//! lock-free `contains` may hold references to nodes that were concurrently
//! unlinked, and the GC guarantees they stay alive while reachable. This
//! crate is the native-code equivalent of that guarantee, built from first
//! principles (the production trees use the battle-tested
//! `crossbeam-epoch`; this crate exists as the documented substrate study
//! and is benchmarked against it in `lo-bench`'s substrate ablation).
//!
//! ## The scheme
//! * A global epoch counter advances only when every currently *pinned*
//!   thread has observed the current epoch.
//! * Threads **pin** before touching shared pointers and unpin after.
//! * Retiring an object stamps it with the current epoch; it may be freed
//!   once the global epoch has advanced by **two** — at that point every
//!   thread has unpinned at least once since the retire, so no live
//!   reference can remain.
//!
//! ```
//! use lo_reclaim::Collector;
//!
//! let collector = Collector::new();
//! let handle = collector.register();
//! {
//!     let guard = handle.pin();
//!     let boxed = Box::new(42u64);
//!     let raw = Box::into_raw(boxed);
//!     // ... publish `raw`, later unlink it ...
//!     unsafe { guard.defer_destroy_box(raw) }; // freed two epochs later
//! }
//! handle.flush(); // encourage epoch advancement / collection
//! ```

#![warn(missing_docs)]
// The collector's participant/orphan registries are cold-path bookkeeping
// behind plain std mutexes, not tree-protocol locks (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::cell::{Cell, RefCell};
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use lo_metrics::{add, record, Event};

/// Default number of retires between automatic collection attempts (see
/// [`Collector::with_collect_every`] to tune per collector).
pub const DEFAULT_COLLECT_EVERY: usize = 64;

/// A deferred destruction: a type-erased `drop(Box::from_raw(ptr))`.
struct Deferred {
    call: unsafe fn(*mut ()),
    data: *mut (),
}

// SAFETY: the deferred call is executed by exactly one thread, after the
// grace period proves exclusive access; the raw pointer is only a carrier.
unsafe impl Send for Deferred {}

impl Deferred {
    fn destroy_box<T>(ptr: *mut T) -> Self {
        unsafe fn call<T>(p: *mut ()) {
            // SAFETY: [inv:unique-owner] constructed from Box::into_raw::<T> by
            // `destroy_box`; the raw pointer is the sole handle.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Self { call: call::<T>, data: ptr.cast() }
    }

    fn run(self) {
        // SAFETY: [inv:unique-owner] by construction `call` matches `data`'s real
        // type, and `self` owns the sole handle to the allocation.
        unsafe { (self.call)(self.data) }
    }
}

/// Per-thread participation record. The low bit of `state` is the pinned
/// flag; the upper bits hold the last observed epoch.
struct Participant {
    state: AtomicUsize,
}

impl Participant {
    const INACTIVE: usize = 0;

    fn encode(epoch: usize) -> usize {
        (epoch << 1) | 1
    }

    fn load(&self) -> (bool, usize) {
        let s = self.state.load(Ordering::SeqCst);
        (s & 1 == 1, s >> 1)
    }
}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    /// Garbage orphaned by dropped handles: (retire_epoch, deferred).
    orphans: Mutex<Vec<(usize, Deferred)>>,
    /// Retires between automatic collection attempts on each handle.
    collect_every: usize,
}

impl Global {
    /// Advances the global epoch if every pinned participant has observed
    /// it. Returns the (possibly new) global epoch.
    fn try_advance(&self) -> usize {
        let g = self.epoch.load(Ordering::SeqCst);
        {
            let parts = self.participants.lock().expect("participants poisoned");
            for p in parts.iter() {
                let (pinned, epoch) = p.load();
                if pinned && epoch != g {
                    return g; // someone lags behind; cannot advance
                }
            }
        }
        // Multiple threads may race; only one CAS wins, which is fine.
        if self.epoch.compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            record(Event::ReclaimAdvance);
        }
        self.epoch.load(Ordering::SeqCst)
    }

    /// Frees orphaned garbage that has passed its grace period.
    fn collect_orphans(&self, global_epoch: usize) {
        let ripe: Vec<Deferred> = {
            let mut orphans = self.orphans.lock().expect("orphans poisoned");
            let mut ripe = Vec::new();
            let mut i = 0;
            while i < orphans.len() {
                if orphans[i].0 + 2 <= global_epoch {
                    ripe.push(orphans.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            ripe
        };
        add(Event::ReclaimFree, ripe.len() as u64);
        for d in ripe {
            d.run();
        }
    }
}

/// The shared collector: owns the global epoch and the participant registry.
pub struct Collector {
    global: Arc<Global>,
}

impl Collector {
    /// Creates a fresh collector with the default collection threshold
    /// ([`DEFAULT_COLLECT_EVERY`]).
    pub fn new() -> Self {
        Self::with_collect_every(DEFAULT_COLLECT_EVERY)
    }

    /// Creates a collector whose handles attempt automatic collection every
    /// `collect_every` retires. Larger values batch frees (fewer epoch scans
    /// per retire, more unreclaimed garbage between collections); a manual
    /// [`Handle::flush`] always reclaims regardless of the threshold.
    /// `collect_every` is clamped to at least 1.
    pub fn with_collect_every(collect_every: usize) -> Self {
        Self {
            global: Arc::new(Global {
                epoch: AtomicUsize::new(0),
                participants: Mutex::new(Vec::new()),
                orphans: Mutex::new(Vec::new()),
                collect_every: collect_every.max(1),
            }),
        }
    }

    /// The configured automatic-collection threshold.
    pub fn collect_every(&self) -> usize {
        self.global.collect_every
    }

    /// Registers the calling thread and returns its handle. A handle must
    /// not be shared between threads (it is `!Sync` by construction).
    pub fn register(&self) -> Handle {
        let participant = Arc::new(Participant { state: AtomicUsize::new(Participant::INACTIVE) });
        self.global
            .participants
            .lock()
            .expect("participants poisoned")
            .push(Arc::clone(&participant));
        Handle {
            global: Arc::clone(&self.global),
            participant,
            guards: Cell::new(0),
            bag: RefCell::new(Vec::new()),
            retires_since_collect: Cell::new(0),
        }
    }

    /// The current global epoch (diagnostic).
    pub fn epoch(&self) -> usize {
        self.global.epoch.load(Ordering::SeqCst)
    }

    /// Whether `self` and `other` are handles onto the **same epoch
    /// domain** — the same global epoch, participant registry, and orphan
    /// queue. Domain identity is the shared `Global` allocation: every
    /// [`Collector::clone`] compares equal to its original, while two
    /// results of [`Collector::new`] never do.
    ///
    /// The sharded store (ISSUE 10) gives each shard its own domain and
    /// uses this check to assert, in debug builds, that a guard pinned for
    /// shard *i* never protects an operation executing against shard *j*:
    /// a cross-domain guard is a use-after-free waiting to happen, because
    /// shard *j*'s grace periods advance without ever consulting it.
    pub fn is_same_domain(&self, other: &Collector) -> bool {
        Arc::ptr_eq(&self.global, &other.global)
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

/// Cloning a collector yields another handle onto the **same** epoch
/// domain, not a new one: the clone shares the global epoch, the
/// participant registry, and the orphan queue, so guards registered
/// through either copy block each other's grace periods. To get an
/// *independent* domain (separate grace periods, as the sharded store
/// wants per shard), call [`Collector::new`] again instead. Verified by
/// [`Collector::is_same_domain`] and the clone-semantics tests.
impl Clone for Collector {
    fn clone(&self) -> Self {
        Self { global: Arc::clone(&self.global) }
    }
}

impl Drop for Global {
    fn drop(&mut self) {
        // No participants can exist (they hold Arcs to Global), so all
        // garbage is safe to free.
        for (_, d) in self.orphans.get_mut().expect("orphans poisoned").drain(..) {
            d.run();
        }
    }
}

/// A per-thread handle; create one per thread via [`Collector::register`].
pub struct Handle {
    global: Arc<Global>,
    participant: Arc<Participant>,
    /// Nested-guard counter.
    guards: Cell<usize>,
    /// Local garbage: (retire_epoch, deferred).
    bag: RefCell<Vec<(usize, Deferred)>>,
    retires_since_collect: Cell<usize>,
}

impl Handle {
    /// Pins the thread: while the returned [`Guard`] lives, no object retired
    /// *after* this call will be freed. Nested pins are cheap.
    pub fn pin(&self) -> Guard<'_> {
        let n = self.guards.get();
        self.guards.set(n + 1);
        if n == 0 {
            // Announce an epoch and re-check until the announcement matches
            // the global epoch (closes the read-then-announce race).
            let mut e = self.global.epoch.load(Ordering::SeqCst);
            loop {
                self.participant.state.store(Participant::encode(e), Ordering::SeqCst);
                #[allow(clippy::disallowed_methods)] // the one sanctioned fence
                fence(Ordering::SeqCst);
                let g = self.global.epoch.load(Ordering::SeqCst);
                if g == e {
                    break;
                }
                e = g;
            }
        }
        Guard { handle: self }
    }

    /// Attempts epoch advancement and frees every local object whose grace
    /// period has passed. Called automatically every few retires; callable
    /// manually (e.g. at quiescent points).
    pub fn flush(&self) {
        let g = self.global.try_advance();
        let ripe: Vec<Deferred> = {
            let mut bag = self.bag.borrow_mut();
            let mut ripe = Vec::new();
            let mut i = 0;
            while i < bag.len() {
                if bag[i].0 + 2 <= g {
                    ripe.push(bag.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            ripe
        };
        add(Event::ReclaimFree, ripe.len() as u64);
        for d in ripe {
            d.run();
        }
        self.global.collect_orphans(g);
    }

    /// Number of not-yet-freed local retires (diagnostic).
    pub fn pending(&self) -> usize {
        self.bag.borrow().len()
    }

    fn retire(&self, d: Deferred) {
        record(Event::ReclaimRetire);
        let e = self.global.epoch.load(Ordering::SeqCst);
        self.bag.borrow_mut().push((e, d));
        let n = self.retires_since_collect.get() + 1;
        if n >= self.global.collect_every {
            self.retires_since_collect.set(0);
            self.flush();
        } else {
            self.retires_since_collect.set(n);
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        assert_eq!(self.guards.get(), 0, "Handle dropped while a Guard is alive");
        // Orphan remaining garbage to the collector.
        let mut bag = self.bag.borrow_mut();
        if !bag.is_empty() {
            self.global.orphans.lock().expect("orphans poisoned").extend(bag.drain(..));
        }
        drop(bag);
        // Deregister.
        let mut parts = self.global.participants.lock().expect("participants poisoned");
        parts.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

/// An epoch pin. Dropping the last nested guard unpins the thread.
pub struct Guard<'a> {
    handle: &'a Handle,
}

impl Guard<'_> {
    /// Schedules `drop(Box::from_raw(ptr))` after the grace period.
    ///
    /// # Safety
    /// `ptr` must come from `Box::into_raw`, must be unlinked (no new
    /// references can be created), and must not be retired twice.
    pub unsafe fn defer_destroy_box<T>(&self, ptr: *mut T) {
        self.handle.retire(Deferred::destroy_box(ptr));
    }

    /// The epoch this guard pinned at (diagnostic).
    pub fn epoch(&self) -> usize {
        self.handle.participant.load().1
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let n = self.handle.guards.get();
        self.handle.guards.set(n - 1);
        if n == 1 {
            self.handle.participant.state.store(Participant::INACTIVE, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A payload that records its own drop.
    struct Tracked(Arc<AtomicBool>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn collect_after_grace_period() {
        let c = Collector::new();
        let h = c.register();
        let dropped = Arc::new(AtomicBool::new(false));
        {
            let g = h.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(&dropped))));
            // SAFETY: `p` came from Box::into_raw just above and is never
            // freed elsewhere.
            unsafe { g.defer_destroy_box(p) };
        }
        assert!(!dropped.load(Ordering::SeqCst), "must not drop immediately");
        h.flush(); // advance
        h.flush(); // advance again; grace period passed
        h.flush(); // collect
        assert!(dropped.load(Ordering::SeqCst), "must drop after two epochs");
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let c = Collector::new();
        let reader = c.register();
        let writer = c.register();
        let dropped = Arc::new(AtomicBool::new(false));

        let read_guard = reader.pin();
        {
            let g = writer.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(&dropped))));
            // SAFETY: `p` came from Box::into_raw just above and is never
            // freed elsewhere.
            unsafe { g.defer_destroy_box(p) };
        }
        // No amount of flushing may free it while the reader is pinned at
        // the retire epoch.
        for _ in 0..10 {
            writer.flush();
        }
        assert!(!dropped.load(Ordering::SeqCst), "freed under a live pin!");

        drop(read_guard);
        for _ in 0..3 {
            writer.flush();
        }
        assert!(dropped.load(Ordering::SeqCst), "not freed after unpin");
    }

    #[test]
    fn nested_guards() {
        let c = Collector::new();
        let h = c.register();
        let g1 = h.pin();
        let e1 = g1.epoch();
        let g2 = h.pin();
        assert_eq!(e1, g2.epoch(), "nested pin must not re-announce");
        drop(g2);
        // Still pinned.
        let (pinned, _) = h.participant.load();
        assert!(pinned);
        drop(g1);
        let (pinned, _) = h.participant.load();
        assert!(!pinned);
    }

    #[test]
    fn orphaned_garbage_freed_by_collector_drop() {
        let dropped = Arc::new(AtomicBool::new(false));
        let c = Collector::new();
        {
            let h = c.register();
            let g = h.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(&dropped))));
            // SAFETY: `p` came from Box::into_raw just above and is never
            // freed elsewhere.
            unsafe { g.defer_destroy_box(p) };
            drop(g);
            // Handle dropped with garbage still pending → orphaned.
        }
        drop(c);
        assert!(dropped.load(Ordering::SeqCst), "collector drop must free orphans");
    }

    #[test]
    fn collect_threshold_defers_and_flush_reclaims() {
        // Retire enough objects for several default-threshold collection
        // cycles, but fewer than the configured threshold: automatic
        // collection must never kick in, so every object stays pending;
        // an explicit flush cycle then frees them all.
        let n = 4 * DEFAULT_COLLECT_EVERY + 40;
        let c = Collector::with_collect_every(10 * DEFAULT_COLLECT_EVERY);
        assert_eq!(c.collect_every(), 10 * DEFAULT_COLLECT_EVERY);
        let h = c.register();
        let flags: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        for f in &flags {
            // Short pins so the epoch is free to advance between retires —
            // auto-collection *could* free here if its threshold allowed it.
            let g = h.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(f))));
            // SAFETY: `p` came from Box::into_raw just above and is never
            // freed elsewhere.
            unsafe { g.defer_destroy_box(p) };
        }
        assert_eq!(h.pending(), n, "threshold not reached: nothing may be freed");
        assert!(flags.iter().all(|f| !f.load(Ordering::SeqCst)));
        h.flush();
        h.flush();
        h.flush();
        assert_eq!(h.pending(), 0, "manual flush must reclaim everything");
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst)));

        // Control: identical retire pattern under the default threshold —
        // automatic collection fires along the way and frees the backlog.
        let c2 = Collector::new();
        assert_eq!(c2.collect_every(), DEFAULT_COLLECT_EVERY);
        let h2 = c2.register();
        for _ in 0..n {
            let g = h2.pin();
            let p = Box::into_raw(Box::new(0u64));
            // SAFETY: `p` came from Box::into_raw just above and is never
            // freed elsewhere.
            unsafe { g.defer_destroy_box(p) };
        }
        assert!(
            h2.pending() < n,
            "default threshold must have auto-collected some garbage"
        );
        h2.flush();
        h2.flush();
        h2.flush();
        assert_eq!(h2.pending(), 0);
    }

    #[test]
    fn epoch_advances_with_idle_participants() {
        let c = Collector::new();
        let _idle = c.register(); // registered but never pinned
        let h = c.register();
        let before = c.epoch();
        h.flush();
        assert!(c.epoch() > before, "idle (unpinned) participants must not block");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn telemetry_tracks_reclamation_pipeline() {
        use lo_metrics::Snapshot;
        let before = Snapshot::take();
        let c = Collector::new();
        let h = c.register();
        let dropped = Arc::new(AtomicBool::new(false));
        {
            let g = h.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(&dropped))));
            // SAFETY: `p` came from Box::into_raw just above and is never
            // freed elsewhere.
            unsafe { g.defer_destroy_box(p) };
        }
        h.flush();
        h.flush();
        h.flush();
        assert!(dropped.load(Ordering::SeqCst));
        let diff = Snapshot::take().since(&before);
        assert!(diff.get(Event::ReclaimRetire) >= 1, "retire not recorded");
        assert!(diff.get(Event::ReclaimAdvance) >= 2, "epoch advances not recorded");
        assert!(diff.get(Event::ReclaimFree) >= 1, "free not recorded");
    }

    #[test]
    fn cloned_collectors_share_the_epoch_domain() {
        // Satellite check (ISSUE 10): `Collector::clone` is another handle
        // onto the SAME domain, so a guard registered through the clone
        // blocks grace periods observed through the original.
        let a = Collector::new();
        let b = a.clone();
        assert!(a.is_same_domain(&b), "a clone must compare same-domain");
        assert!(b.is_same_domain(&a));
        assert!(a.is_same_domain(&a));

        let reader = b.register(); // handle via the clone
        let writer = a.register(); // handle via the original
        let dropped = Arc::new(AtomicBool::new(false));

        let read_guard = reader.pin();
        {
            let g = writer.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(&dropped))));
            // SAFETY: `p` came from Box::into_raw just above and is never
            // freed elsewhere.
            unsafe { g.defer_destroy_box(p) };
        }
        for _ in 0..10 {
            writer.flush();
        }
        assert!(
            !dropped.load(Ordering::SeqCst),
            "a pin through the CLONE must block the original's grace period"
        );
        drop(read_guard);
        for _ in 0..3 {
            writer.flush();
        }
        assert!(dropped.load(Ordering::SeqCst));
    }

    #[test]
    fn fresh_collectors_are_independent_domains() {
        // The per-shard story: two `Collector::new` results are distinct
        // domains — a pinned reader in domain A must NOT stall domain B's
        // reclamation, and `is_same_domain` tells them apart.
        let a = Collector::new();
        let b = Collector::new();
        assert!(!a.is_same_domain(&b), "two news must be distinct domains");

        let a_reader = a.register();
        let _a_pin = a_reader.pin(); // held across B's whole lifecycle

        let h = b.register();
        let dropped = Arc::new(AtomicBool::new(false));
        {
            let g = h.pin();
            let p = Box::into_raw(Box::new(Tracked(Arc::clone(&dropped))));
            // SAFETY: `p` came from Box::into_raw just above and is never
            // freed elsewhere.
            unsafe { g.defer_destroy_box(p) };
        }
        h.flush();
        h.flush();
        h.flush();
        assert!(
            dropped.load(Ordering::SeqCst),
            "domain B must reclaim while domain A holds a pin"
        );
    }

    #[test]
    fn concurrent_churn_is_sound() {
        // Threads continuously publish and retire boxes while readers pin
        // and dereference. ASan/Miri-style runs would catch use-after-free;
        // here we assert values stay plausible.
        use std::sync::atomic::AtomicPtr;
        const ITERS: usize = if cfg!(debug_assertions) { 20_000 } else { 100_000 };
        let c = Collector::new();
        let slot = AtomicPtr::new(Box::into_raw(Box::new(0u64)));
        let stop = AtomicBool::new(false);

        std::thread::scope(|scope| {
            let c = &c;
            let slot = &slot;
            let stop = &stop;
            // Writer: swaps in new values, retires old ones.
            scope.spawn(move || {
                let h = c.register();
                for i in 0..ITERS {
                    let g = h.pin();
                    let fresh = Box::into_raw(Box::new(i as u64));
                    let old = slot.swap(fresh, Ordering::AcqRel);
                    // SAFETY: the swap made this thread the unique retirer of
                    // `old`; readers are protected by their pins.
                    unsafe { g.defer_destroy_box(old) };
                }
                stop.store(true, Ordering::SeqCst);
            });
            // Readers: must always see a valid u64.
            for _ in 0..2 {
                scope.spawn(move || {
                    let h = c.register();
                    while !stop.load(Ordering::SeqCst) {
                        let g = h.pin();
                        let p = slot.load(Ordering::Acquire);
                        // SAFETY: protected by the epoch pin.
                        let v = unsafe { *p };
                        assert!((v as usize) < ITERS);
                        drop(g);
                    }
                });
            }
        });
        // Final cleanup of the last published box.
        let last = slot.load(Ordering::Acquire);
        // SAFETY: all threads have joined; `last` is the only live box.
        drop(unsafe { Box::from_raw(last) });
    }
}
