//! Flat-combining batched frontend over the sharded store.
//!
//! Under heavy write contention on one shard, every writer paying its own
//! epoch pin and its own walk through the tree's lock protocol wastes the
//! fact that they are all going to the same place. The flat-combining
//! frontend (Hendler, Incze, Shavit, Tzafrir, SPAA'10 — adapted here to
//! batch *tree* operations) turns that contention into cooperation:
//! writers publish their operation into the owning shard's **lane** (an
//! MPSC queue of per-op slots) and one of them — whoever wins the lane's
//! combiner-role try-lock — drains the queue and executes the whole batch
//! itself, under **one** epoch guard, while the others spin on their slot's
//! done flag. Results (and panics) travel back through the slot.
//!
//! Lock discipline (the `[[locks.raw_allow]]` entry for this file in
//! `ordering_policy.toml` is justified by exactly these rules):
//!
//! * the **queue lock** is held only to push one slot or to `mem::take`
//!   the queue — never across a tree operation, so it can never nest
//!   around a node lock;
//! * the **combiner-role lock** is strictly outermost: it is acquired by
//!   `try_lock` only (no blocking, no deadlock), only by threads holding
//!   no other lock, and every tree lock acquired while combining is
//!   released before the role is;
//! * a batched operation that **panics** (an injected failpoint, or a real
//!   bug) is caught by the combiner and the payload is ferried to the
//!   submitting thread, which re-raises it — so a dying operation poisons
//!   its shard and kills *its* caller, exactly as on the direct path, and
//!   never strands the other waiters or the combiner.
//!
//! Reads are **not** batched: `contains`/`get` and the ordered reads are
//! already lock-free, so the frontend forwards them straight to the store.

use crate::router::{HashPartitioner, Partitioner, RangePartitioner};
use crate::store::{ShardMap, ShardedStore};
use lo_api::{
    CheckInvariants, ConcurrentMap, FallibleMap, Health, Key, OrderedRead, QuiescentOrdered,
    RecoverError, RecoveryReport, TreeError, Value,
};
use lo_core::LoAvlMap;
use parking_lot::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A batched write operation, published by a submitter, consumed by the
/// combiner.
enum Op<K, V> {
    Insert(K, V),
    Remove(K),
}

/// What the combiner left in the slot.
enum Outcome {
    /// Combiner has not executed this op yet.
    Pending,
    /// The op ran to completion (including a clean `Err(Poisoned)`).
    Done(Result<bool, TreeError>),
    /// The op panicked inside the tree; the payload is re-raised on the
    /// submitting thread so poisoning semantics match the direct path.
    Panicked(Box<dyn Any + Send>),
}

/// One published operation: request in, outcome out, `done` as the
/// hand-off flag (Release by the combiner, Acquire by the submitter).
struct Slot<K, V> {
    op: Mutex<Option<Op<K, V>>>,
    outcome: Mutex<Outcome>,
    done: AtomicBool,
}

/// Per-shard combining lane.
struct Lane<K, V> {
    /// MPSC publication list; swapped out wholesale by the combiner.
    queue: Mutex<Vec<Arc<Slot<K, V>>>>,
    /// The combiner role. `try_lock` only — whoever holds it drains.
    combiner: Mutex<()>,
}

impl<K, V> Lane<K, V> {
    fn new() -> Self {
        Self { queue: Mutex::new(Vec::new()), combiner: Mutex::new(()) }
    }
}

/// The flat-combining frontend (module docs). Wraps a [`ShardedStore`] and
/// implements the same map traits; writes are batched per shard, reads
/// pass through.
pub struct BatchedStore<
    K: Key,
    V: Value,
    M: ShardMap<K, V> = LoAvlMap<K, V>,
    P: Partitioner<K> = HashPartitioner<K>,
> {
    store: ShardedStore<K, V, M, P>,
    lanes: Vec<Lane<K, V>>,
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> BatchedStore<K, V, M, P> {
    /// Wraps `store` with one combining lane per shard.
    pub fn new(store: ShardedStore<K, V, M, P>) -> Self {
        let lanes = (0..store.n_shards()).map(|_| Lane::new()).collect();
        Self { store, lanes }
    }

    /// Borrows the wrapped store (e.g. for per-shard health inspection).
    pub fn inner(&self) -> &ShardedStore<K, V, M, P> {
        &self.store
    }

    /// Unwraps back to the direct store. Safe at any quiescent point; any
    /// published-but-undrained op would require a `&self` submitter still
    /// blocked inside [`Self::try_insert`]/[`Self::try_remove`], which
    /// `self`-by-value rules out.
    pub fn into_inner(self) -> ShardedStore<K, V, M, P> {
        self.store
    }

    /// Number of shards (and combining lanes).
    pub fn n_shards(&self) -> usize {
        self.store.n_shards()
    }

    /// Publishes `op` on its shard's lane and waits for an outcome,
    /// combining if the role is free.
    fn submit(&self, shard: usize, op: Op<K, V>) -> Result<bool, TreeError> {
        let lane = &self.lanes[shard];
        let slot = Arc::new(Slot {
            op: Mutex::new(Some(op)),
            outcome: Mutex::new(Outcome::Pending),
            done: AtomicBool::new(false),
        });
        lane.queue.lock().push(Arc::clone(&slot));

        let mut waited = false;
        while !slot.done.load(Ordering::Acquire) {
            match lane.combiner.try_lock() {
                Some(_role) => {
                    // We are the combiner; `_role` is released when this
                    // arm ends, after the drain. A former waiter winning
                    // the role is the combiner hand-off the metric counts.
                    if waited {
                        lo_metrics::record(lo_metrics::Event::StoreCombinerHandoff);
                    }
                    self.drain(shard, lane);
                    debug_assert!(
                        slot.done.load(Ordering::Acquire),
                        "combiner finished draining without executing its own op"
                    );
                }
                None => {
                    // Another thread holds the role and will execute our
                    // op (or we will, next time round if it hands off
                    // before reaching us).
                    waited = true;
                    std::thread::yield_now();
                }
            }
        }

        let outcome = std::mem::replace(&mut *slot.outcome.lock(), Outcome::Pending);
        match outcome {
            Outcome::Done(result) => result,
            Outcome::Panicked(payload) => resume_unwind(payload),
            Outcome::Pending => unreachable!("done flag set with no outcome"),
        }
    }

    /// Drains the lane until its queue stays empty: swaps the queue out
    /// (releasing the queue lock *before* touching the tree) and executes
    /// the batch under a single epoch guard — every per-op pin inside the
    /// tree is then a reentrant counter bump on the same thread handle,
    /// which is the amortization this frontend exists for.
    fn drain(&self, shard: usize, lane: &Lane<K, V>) {
        let map = self.store.shard(shard);
        debug_assert!(
            map.domain().is_same_domain(self.store.domain_of(shard)),
            "lane {shard} would batch under a foreign epoch domain"
        );
        let _guard = self.store.domain_of(shard).pin();
        loop {
            let batch = std::mem::take(&mut *lane.queue.lock());
            if batch.is_empty() {
                break;
            }
            lo_metrics::record(lo_metrics::Event::StoreBatchDrained);
            lo_metrics::record_log2(lo_metrics::Event::StoreBatchLen, batch.len() as u64);
            for slot in batch {
                let op = slot.op.lock().take().expect("slot published without an op");
                let result = catch_unwind(AssertUnwindSafe(|| match op {
                    Op::Insert(key, value) => map.try_insert(key, value),
                    Op::Remove(key) => map.try_remove(&key),
                }));
                *slot.outcome.lock() = match result {
                    Ok(r) => Outcome::Done(r),
                    Err(payload) => Outcome::Panicked(payload),
                };
                slot.done.store(true, Ordering::Release);
            }
        }
    }

    /// Fallible batched insert (routed, combined; see module docs).
    pub fn try_insert(&self, key: K, value: V) -> Result<bool, TreeError> {
        let shard = self.store.shard_of(&key);
        self.submit(shard, Op::Insert(key, value))
    }

    /// Fallible batched remove.
    pub fn try_remove(&self, key: &K) -> Result<bool, TreeError> {
        self.submit(self.store.shard_of(key), Op::Remove(*key))
    }

    /// Infallible batched insert; panics if the owning shard is poisoned
    /// (mirrors the direct maps' infallible/fallible split).
    pub fn insert(&self, key: K, value: V) -> bool {
        self.try_insert(key, value)
            .unwrap_or_else(|e| panic!("batched insert on unwritable shard: {e}"))
    }

    /// Infallible batched remove; panics if the owning shard is poisoned.
    pub fn remove(&self, key: &K) -> bool {
        self.try_remove(key)
            .unwrap_or_else(|e| panic!("batched remove on unwritable shard: {e}"))
    }

    /// Lock-free pass-through membership test (not batched).
    pub fn contains(&self, key: &K) -> bool {
        self.store.contains(key)
    }

    /// Lock-free pass-through value clone (not batched).
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.store.get(key)
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> ConcurrentMap<K, V>
    for BatchedStore<K, V, M, P>
{
    fn insert(&self, key: K, value: V) -> bool {
        BatchedStore::insert(self, key, value)
    }
    fn remove(&self, key: &K) -> bool {
        BatchedStore::remove(self, key)
    }
    fn contains(&self, key: &K) -> bool {
        BatchedStore::contains(self, key)
    }
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        BatchedStore::get(self, key)
    }
    fn name(&self) -> &'static str {
        "lo-store-batched"
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> FallibleMap<K, V>
    for BatchedStore<K, V, M, P>
{
    fn try_insert(&self, key: K, value: V) -> Result<bool, TreeError> {
        BatchedStore::try_insert(self, key, value)
    }
    fn try_remove(&self, key: &K) -> Result<bool, TreeError> {
        BatchedStore::try_remove(self, key)
    }
    fn poisoned(&self) -> Option<TreeError> {
        self.store.poisoned()
    }
    fn health(&self) -> Health {
        self.store.health()
    }
    fn try_recover(&self) -> Result<RecoveryReport, RecoverError> {
        self.store.try_recover()
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> OrderedRead<K>
    for BatchedStore<K, V, M, P>
{
    fn min_key(&self) -> Option<K> {
        self.store.min_key()
    }
    fn max_key(&self) -> Option<K> {
        self.store.max_key()
    }
    fn ceiling_key(&self, key: &K) -> Option<K> {
        self.store.ceiling_key(key)
    }
    fn floor_key(&self, key: &K) -> Option<K> {
        self.store.floor_key(key)
    }
    fn scan_range(&self, range: std::ops::RangeInclusive<K>, f: &mut dyn FnMut(K)) {
        self.store.scan_range(range, |k| f(k))
    }
    fn range_count(&self, range: std::ops::RangeInclusive<K>) -> usize {
        self.store.range_count(range)
    }
    fn range_keys(&self, range: std::ops::RangeInclusive<K>) -> Vec<K> {
        self.store.range_keys(range)
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> QuiescentOrdered<K>
    for BatchedStore<K, V, M, P>
{
    fn keys_in_order(&self) -> Vec<K> {
        self.store.keys_in_order()
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> CheckInvariants
    for BatchedStore<K, V, M, P>
{
    fn check_invariants(&self) {
        for (i, lane) in self.lanes.iter().enumerate() {
            assert!(
                lane.queue.lock().is_empty(),
                "lane {i} holds undrained ops at quiescence"
            );
        }
        self.store.check_invariants();
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> std::fmt::Debug
    for BatchedStore<K, V, M, P>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedStore").field("store", &self.store).finish()
    }
}

impl<K: Key + std::hash::Hash, V: Value, M: ShardMap<K, V>>
    BatchedStore<K, V, M, HashPartitioner<K>>
{
    /// An `n`-way hash-routed batched store.
    pub fn hash_sharded(n: usize) -> Self {
        Self::new(ShardedStore::hash_sharded(n))
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>> BatchedStore<K, V, M, RangePartitioner<K>> {
    /// A range-routed batched store with `splits.len() + 1` shards.
    pub fn range_sharded(splits: Vec<K>) -> Self {
        Self::new(ShardedStore::range_sharded(splits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Batched = BatchedStore<i64, u64>;

    #[test]
    fn single_thread_ops_round_trip() {
        let b = Batched::hash_sharded(4);
        assert_eq!(b.n_shards(), 4);
        for k in 0i64..128 {
            assert!(b.insert(k, k as u64));
        }
        assert!(!b.insert(5, 99), "duplicate insert must fail");
        assert_eq!(b.get(&5), Some(5), "failed insert must not overwrite");
        assert!(b.remove(&5));
        assert!(!b.contains(&5));
        assert_eq!(b.try_remove(&5), Ok(false));
        assert_eq!(b.inner().len(), 127);
        b.check_invariants();
    }

    #[test]
    fn contended_batching_is_linearizable_per_key() {
        // 4 threads × disjoint key blocks through one 2-shard frontend:
        // every op's result must be exactly what a per-key sequential
        // history predicts, even though ops execute on combiner threads.
        let b = Batched::hash_sharded(2);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let b = &b;
                s.spawn(move || {
                    let base = t * 1_000;
                    for k in base..base + 200 {
                        assert!(b.insert(k, k as u64), "fresh insert of {k}");
                        assert!(!b.insert(k, 0), "duplicate insert of {k}");
                        assert!(b.remove(&k), "remove of present {k}");
                        assert!(!b.remove(&k), "remove of absent {k}");
                        assert!(b.insert(k, k as u64 + 1), "reinsert of {k}");
                    }
                });
            }
        });
        assert_eq!(b.inner().len(), 800);
        for t in 0..4i64 {
            for k in t * 1_000..t * 1_000 + 200 {
                assert_eq!(b.get(&k), Some(k as u64 + 1));
            }
        }
        b.check_invariants();
    }

    #[test]
    fn batched_and_direct_views_agree() {
        let b = BatchedStore::<i64, u64, LoAvlMap<i64, u64>, RangePartitioner<i64>>::range_sharded(
            vec![0],
        );
        for k in -20i64..20 {
            assert!(b.insert(k, 7));
        }
        assert_eq!(b.keys_in_order(), (-20i64..20).collect::<Vec<_>>());
        assert_eq!(b.range_keys(-5..=5), (-5i64..=5).collect::<Vec<_>>());
        assert_eq!(b.min_key(), Some(-20));
        assert_eq!(b.max_key(), Some(19));
        let inner = b.into_inner();
        assert_eq!(inner.len(), 40);
        inner.check_invariants();
    }

    #[test]
    fn trait_surface_names() {
        let b = Batched::hash_sharded(1);
        let m: &dyn ConcurrentMap<i64, u64> = &b;
        assert_eq!(m.name(), "lo-store-batched");
        assert_eq!(FallibleMap::health(&b), Health::Writable);
        assert_eq!(FallibleMap::try_recover(&b).err(), Some(RecoverError::NotPoisoned));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn batching_records_metrics() {
        use lo_metrics::Event;
        let before = lo_metrics::Snapshot::take();
        let b = Batched::hash_sharded(1);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let b = &b;
                s.spawn(move || {
                    for k in 0..100i64 {
                        b.insert(t * 1_000 + k, 0);
                    }
                });
            }
        });
        let delta = lo_metrics::Snapshot::take().since(&before);
        let drains = delta.get(Event::StoreBatchDrained);
        assert!(drains >= 1, "at least one batch must drain");
        let hist = lo_metrics::log2_hist(Event::StoreBatchLen);
        assert!(hist.iter().sum::<u64>() >= drains, "every drain records a length");
    }
}
