//! The sharded store: N logical-ordering trees behind one map surface.
//!
//! Each shard is a full tree born into its **own epoch domain**
//! ([`lo_core::EpochDomain`]), so a slow scan pinned on one shard delays
//! reclamation only there — grace periods never couple across shards. The
//! [`Partitioner`] fixes each key's home shard for the store's lifetime,
//! which is what makes the composition linearizable for point operations:
//! every operation on key *k* runs on exactly one tree, and that tree's own
//! linearization order is the store's order for *k*.
//!
//! Cross-shard range scans need **no global lock**: the per-shard scans are
//! already lock-free and strictly ascending, and keys never move between
//! shards, so stitching per-shard cursor streams (sequentially for
//! order-preserving routing, by merge for hash routing) yields one strictly
//! ascending stream with the same per-key liveness guarantee the single
//! tree gives — each yielded key was live at the instant its shard's cursor
//! observed it.

use crate::router::{HashPartitioner, Partitioner, RangePartitioner, ShardRouter, MAX_SHARDS};
use lo_api::{
    CheckInvariants, ConcurrentMap, FallibleMap, Health, Key, OrderedRead, QuiescentOrdered,
    RecoverError, RecoveryReport, RepairStrategy, TreeError, Value,
};
use lo_core::{EpochDomain, LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap};
use std::hash::Hash;
use std::marker::PhantomData;

/// What the store needs from a shard beyond the shared map traits: being
/// born into a caller-supplied epoch domain, and the quiescent census /
/// recovery accessors the store aggregates. Implemented by all four
/// `lo-core` map variants.
pub trait ShardMap<K: Key, V: Value>:
    ConcurrentMap<K, V>
    + FallibleMap<K, V>
    + OrderedRead<K>
    + QuiescentOrdered<K>
    + CheckInvariants
    + 'static
{
    /// Constructs an empty shard whose guards pin `domain`.
    fn new_in_domain(domain: EpochDomain) -> Self;

    /// The domain this shard pins (clones share the domain).
    fn domain(&self) -> EpochDomain;

    /// Monotone per-shard recovery generation (0 as constructed).
    fn recovery_generation(&self) -> u32;

    /// Nodes physically present in the layout (quiescent use).
    fn physical_node_count(&self) -> usize;

    /// Logically-deleted nodes still occupying the layout (quiescent use).
    fn zombie_count(&self) -> usize;

    /// Live key count (quiescent use).
    fn len(&self) -> usize;

    /// Whether the shard holds no live keys (quiescent use).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

macro_rules! impl_shard_map {
    ($($map:ident),+ $(,)?) => {$(
        impl<K: Key, V: Value> ShardMap<K, V> for $map<K, V> {
            fn new_in_domain(domain: EpochDomain) -> Self {
                $map::new_in(domain)
            }
            fn domain(&self) -> EpochDomain {
                self.epoch_domain()
            }
            fn recovery_generation(&self) -> u32 {
                $map::recovery_generation(self)
            }
            fn physical_node_count(&self) -> usize {
                $map::physical_node_count(self)
            }
            fn zombie_count(&self) -> usize {
                $map::zombie_count(self)
            }
            fn len(&self) -> usize {
                $map::len(self)
            }
        }
    )+};
}

impl_shard_map!(LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap);

/// N logical-ordering trees composed into one
/// [`ConcurrentMap`]/[`FallibleMap`]/[`OrderedRead`] instance (module docs
/// for the protocol). Defaults: AVL shards, hash routing.
pub struct ShardedStore<
    K: Key,
    V: Value,
    M: ShardMap<K, V> = LoAvlMap<K, V>,
    P: Partitioner<K> = HashPartitioner<K>,
> {
    router: ShardRouter<K, P>,
    shards: Vec<M>,
    /// The registered domain of each shard, kept alongside so the store
    /// (and the batched frontend) can debug-assert an operation executes
    /// under its own shard's epoch and not a neighbour's.
    domains: Vec<EpochDomain>,
    _v: PhantomData<fn(V)>,
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> ShardedStore<K, V, M, P> {
    /// Builds a store routed by `partitioner`, constructing one shard per
    /// partition, each born into a **fresh private epoch domain**.
    pub fn with_partitioner(partitioner: P) -> Self {
        let router = ShardRouter::new(partitioner);
        let n = router.n_shards();
        debug_assert!(n <= MAX_SHARDS);
        let mut shards = Vec::with_capacity(n);
        let mut domains = Vec::with_capacity(n);
        for _ in 0..n {
            let domain = EpochDomain::new();
            shards.push(M::new_in_domain(domain.clone()));
            domains.push(domain);
        }
        Self { router, shards, domains, _v: PhantomData }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        self.router.shard_of(key)
    }

    /// Borrows shard `i` (panics out of bounds).
    pub fn shard(&self, i: usize) -> &M {
        &self.shards[i]
    }

    /// The epoch domain shard `i` was born into.
    pub fn domain_of(&self, i: usize) -> &EpochDomain {
        &self.domains[i]
    }

    /// The routing front door.
    pub fn router(&self) -> &ShardRouter<K, P> {
        &self.router
    }

    /// Routes `key` to its shard, debug-asserting the shard still pins the
    /// domain it was registered with (catches cross-shard guard mix-ups).
    fn route(&self, key: &K) -> &M {
        let i = self.router.shard_of(key);
        let shard = &self.shards[i];
        debug_assert!(
            shard.domain().is_same_domain(&self.domains[i]),
            "shard {i} drifted off its registered epoch domain"
        );
        shard
    }

    /// Inserts `key -> value` if absent; `true` on success. Panics if the
    /// owning shard is poisoned (use [`Self::try_insert`] to get an error).
    pub fn insert(&self, key: K, value: V) -> bool {
        ConcurrentMap::insert(self.route(&key), key, value)
    }

    /// Removes `key`; `true` if present. Panics on a poisoned owning shard.
    pub fn remove(&self, key: &K) -> bool {
        ConcurrentMap::remove(self.route(key), key)
    }

    /// Lock-free membership test; works in every health state.
    pub fn contains(&self, key: &K) -> bool {
        ConcurrentMap::contains(self.route(key), key)
    }

    /// Lock-free value clone; works in every health state.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        ConcurrentMap::get(self.route(key), key)
    }

    /// Fallible [`Self::insert`]: rejects with [`TreeError::Poisoned`] when
    /// the **owning shard** is unwritable; other shards are unaffected.
    pub fn try_insert(&self, key: K, value: V) -> Result<bool, TreeError> {
        FallibleMap::try_insert(self.route(&key), key, value)
    }

    /// Fallible [`Self::remove`] (see [`Self::try_insert`]).
    pub fn try_remove(&self, key: &K) -> Result<bool, TreeError> {
        FallibleMap::try_remove(self.route(key), key)
    }

    /// First unwritable shard's error, if any shard is unwritable.
    pub fn poisoned(&self) -> Option<TreeError> {
        self.shards.iter().find_map(FallibleMap::poisoned)
    }

    /// Bitmask of unwritable shard indices (bit *i* ⇔ shard *i* poisoned or
    /// recovering). `0` means fully writable.
    pub fn degraded_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.poisoned().is_some() {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Store health: [`Health::Writable`] when every shard accepts writes,
    /// otherwise [`Health::Degraded`] carrying the unwritable-shard mask.
    /// Reads work everywhere in either state.
    pub fn health(&self) -> Health {
        match self.degraded_mask() {
            0 => Health::Writable,
            shards => Health::Degraded { shards },
        }
    }

    /// Runs the online recovery protocol on shard `i` only (see
    /// [`FallibleMap::try_recover`] on the shard type). Healthy shards keep
    /// serving uninterrupted; even shard `i` keeps serving reads.
    pub fn try_recover_shard(&self, i: usize) -> Result<RecoveryReport, RecoverError> {
        self.shards[i].try_recover()
    }

    /// Recovers **every** poisoned shard, one at a time, and merges the
    /// per-shard post-mortems: counters are summed, `strategy` is the most
    /// invasive repair performed, `cause` is the first recovered shard's,
    /// and `generation` is the store generation ([`Self::recovery_generation`])
    /// after the pass, truncated to `u32`. Partial success is success: if at
    /// least one shard came back the merged report is returned and
    /// [`Self::health`] tells the caller what is still degraded; if none
    /// did, the first failure is returned.
    pub fn try_recover(&self) -> Result<RecoveryReport, RecoverError> {
        let mut merged: Option<RecoveryReport> = None;
        let mut first_err: Option<RecoverError> = None;
        for shard in &self.shards {
            if shard.poisoned().is_none() {
                continue;
            }
            match shard.try_recover() {
                Ok(report) => {
                    merged = Some(match merged.take() {
                        None => report,
                        Some(mut acc) => {
                            acc.strategy = most_invasive(acc.strategy, report.strategy);
                            acc.writers_drained += report.writers_drained;
                            acc.nodes_salvaged += report.nodes_salvaged;
                            acc.nodes_orphaned += report.nodes_orphaned;
                            acc.marks_completed += report.marks_completed;
                            acc.parity_repairs += report.parity_repairs;
                            acc.elapsed += report.elapsed;
                            acc
                        }
                    });
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match (merged, first_err) {
            (Some(mut report), _) => {
                report.generation = self.recovery_generation().min(u64::from(u32::MAX)) as u32;
                Ok(report)
            }
            (None, Some(e)) => Err(e),
            (None, None) => Err(RecoverError::NotPoisoned),
        }
    }

    /// Store recovery generation: the sum of every shard's generation.
    /// Strictly increases on each successful shard recovery.
    pub fn recovery_generation(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.recovery_generation())).sum()
    }

    /// Smallest key across all shards.
    pub fn min_key(&self) -> Option<K> {
        self.shards.iter().filter_map(OrderedRead::min_key).min()
    }

    /// Largest key across all shards.
    pub fn max_key(&self) -> Option<K> {
        self.shards.iter().filter_map(OrderedRead::max_key).max()
    }

    /// Smallest live key `>= key` across all shards.
    pub fn ceiling_key(&self, key: &K) -> Option<K> {
        self.shards.iter().filter_map(|s| s.ceiling_key(key)).min()
    }

    /// Largest live key `<= key` across all shards.
    pub fn floor_key(&self, key: &K) -> Option<K> {
        self.shards.iter().filter_map(|s| s.floor_key(key)).max()
    }

    /// Streams every live key in `range` strictly ascending into `f`,
    /// stitching per-shard cursors (module docs). Order-preserving routing
    /// streams shards sequentially — O(1) extra memory; hash routing
    /// gathers each shard's slice and merges — O(result) memory, the
    /// documented cost of hash routing's even spread. Emits one
    /// `store-cross-shard-scan-stitch` metric per shard boundary crossed.
    pub fn scan_range(&self, range: std::ops::RangeInclusive<K>, mut f: impl FnMut(K)) {
        let (lo, hi) = (*range.start(), *range.end());
        if lo > hi {
            return;
        }
        match self.router.ordered_cover(&lo, &hi) {
            Some(cover) => {
                debug_assert!(cover.windows(2).all(|w| w[0] < w[1]));
                for (n, &i) in cover.iter().enumerate() {
                    if n > 0 {
                        lo_metrics::record(lo_metrics::Event::StoreCrossShardScanStitch);
                    }
                    // No clamping needed: shard i only holds keys of its
                    // own slice, so the full range is safe to pass down.
                    self.shards[i].scan_range(lo..=hi, &mut |k| f(k));
                }
            }
            None => {
                let slices: Vec<Vec<K>> =
                    self.shards.iter().map(|s| s.range_keys(lo..=hi)).collect();
                merge_ascending(slices, true, f);
            }
        }
    }

    /// Collects the live keys in `range`, ascending.
    pub fn range_keys(&self, range: std::ops::RangeInclusive<K>) -> Vec<K> {
        let mut out = Vec::new();
        self.scan_range(range, |k| out.push(k));
        out
    }

    /// Number of live keys in `range`.
    pub fn range_count(&self, range: std::ops::RangeInclusive<K>) -> usize {
        let mut n = 0;
        self.scan_range(range, |_| n += 1);
        n
    }

    /// All keys ascending (quiescent use): merges the shards' quiescent
    /// snapshots.
    pub fn keys_in_order(&self) -> Vec<K> {
        let slices: Vec<Vec<K>> = self.shards.iter().map(QuiescentOrdered::keys_in_order).collect();
        let mut out = Vec::with_capacity(slices.iter().map(Vec::len).sum());
        merge_ascending(slices, false, |k| out.push(k));
        out
    }

    /// Live key count, summed over shards (quiescent use).
    pub fn len(&self) -> usize {
        self.shards.iter().map(ShardMap::len).sum()
    }

    /// Whether no shard holds a live key.
    pub fn is_empty(&self) -> bool {
        self.min_key().is_none()
    }

    /// Physical node count summed over shards (quiescent use).
    pub fn physical_node_count(&self) -> usize {
        self.shards.iter().map(ShardMap::physical_node_count).sum()
    }

    /// Zombie count summed over shards (quiescent use).
    pub fn zombie_count(&self) -> usize {
        self.shards.iter().map(ShardMap::zombie_count).sum()
    }

    /// Quiescent validation: every shard's own invariants, plus the
    /// store-level **routing invariant** — every key lives on exactly the
    /// shard the partitioner routes it to — and the per-shard epoch-domain
    /// registration. Panics on the first violation.
    pub fn check_invariants(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.check_invariants();
            assert!(
                shard.domain().is_same_domain(&self.domains[i]),
                "shard {i} is not pinned to its registered epoch domain"
            );
            for k in shard.keys_in_order() {
                let home = self.router.shard_of(&k);
                assert!(
                    home == i,
                    "routing invariant violated: key {k:?} found on shard {i} \
                     but routes to shard {home}"
                );
            }
        }
    }
}

impl<K: Key + Hash, V: Value, M: ShardMap<K, V>> ShardedStore<K, V, M, HashPartitioner<K>> {
    /// An `n`-way hash-routed store (see [`HashPartitioner`]).
    pub fn hash_sharded(n: usize) -> Self {
        Self::with_partitioner(HashPartitioner::new(n))
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>> ShardedStore<K, V, M, RangePartitioner<K>> {
    /// A range-routed store with `splits.len() + 1` shards (see
    /// [`RangePartitioner`] for the boundary rule).
    pub fn range_sharded(splits: Vec<K>) -> Self {
        Self::with_partitioner(RangePartitioner::new(splits))
    }
}

/// Merges per-shard ascending, pairwise-disjoint key slices into one
/// strictly ascending stream. Linear scan over ≤ [`MAX_SHARDS`] heads per
/// step. When `stitch_metric` is set, emits one
/// `store-cross-shard-scan-stitch` per switch of source shard mid-stream.
fn merge_ascending<K: Key>(slices: Vec<Vec<K>>, stitch_metric: bool, mut f: impl FnMut(K)) {
    let mut heads = vec![0usize; slices.len()];
    let mut last_src: Option<usize> = None;
    loop {
        let mut best: Option<(usize, K)> = None;
        for (i, slice) in slices.iter().enumerate() {
            if let Some(&k) = slice.get(heads[i]) {
                if best.is_none_or(|(_, b)| k < b) {
                    best = Some((i, k));
                }
            }
        }
        let Some((src, k)) = best else { break };
        heads[src] += 1;
        if stitch_metric && last_src.is_some_and(|p| p != src) {
            lo_metrics::record(lo_metrics::Event::StoreCrossShardScanStitch);
        }
        last_src = Some(src);
        f(k);
    }
}

fn most_invasive(a: RepairStrategy, b: RepairStrategy) -> RepairStrategy {
    fn rank(s: RepairStrategy) -> u8 {
        match s {
            RepairStrategy::AuditOnly => 0,
            RepairStrategy::InPlace => 1,
            RepairStrategy::StreamingRebuild => 2,
        }
    }
    if rank(b) > rank(a) { b } else { a }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> ConcurrentMap<K, V>
    for ShardedStore<K, V, M, P>
{
    fn insert(&self, key: K, value: V) -> bool {
        ShardedStore::insert(self, key, value)
    }
    fn remove(&self, key: &K) -> bool {
        ShardedStore::remove(self, key)
    }
    fn contains(&self, key: &K) -> bool {
        ShardedStore::contains(self, key)
    }
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        ShardedStore::get(self, key)
    }
    fn name(&self) -> &'static str {
        "lo-store"
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> FallibleMap<K, V>
    for ShardedStore<K, V, M, P>
{
    fn try_insert(&self, key: K, value: V) -> Result<bool, TreeError> {
        ShardedStore::try_insert(self, key, value)
    }
    fn try_remove(&self, key: &K) -> Result<bool, TreeError> {
        ShardedStore::try_remove(self, key)
    }
    fn poisoned(&self) -> Option<TreeError> {
        ShardedStore::poisoned(self)
    }
    fn health(&self) -> Health {
        ShardedStore::health(self)
    }
    fn try_recover(&self) -> Result<RecoveryReport, RecoverError> {
        ShardedStore::try_recover(self)
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> OrderedRead<K>
    for ShardedStore<K, V, M, P>
{
    fn min_key(&self) -> Option<K> {
        ShardedStore::min_key(self)
    }
    fn max_key(&self) -> Option<K> {
        ShardedStore::max_key(self)
    }
    fn ceiling_key(&self, key: &K) -> Option<K> {
        ShardedStore::ceiling_key(self, key)
    }
    fn floor_key(&self, key: &K) -> Option<K> {
        ShardedStore::floor_key(self, key)
    }
    fn scan_range(&self, range: std::ops::RangeInclusive<K>, f: &mut dyn FnMut(K)) {
        ShardedStore::scan_range(self, range, |k| f(k))
    }
    fn range_count(&self, range: std::ops::RangeInclusive<K>) -> usize {
        ShardedStore::range_count(self, range)
    }
    fn range_keys(&self, range: std::ops::RangeInclusive<K>) -> Vec<K> {
        ShardedStore::range_keys(self, range)
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> QuiescentOrdered<K>
    for ShardedStore<K, V, M, P>
{
    fn keys_in_order(&self) -> Vec<K> {
        ShardedStore::keys_in_order(self)
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> CheckInvariants
    for ShardedStore<K, V, M, P>
{
    fn check_invariants(&self) {
        ShardedStore::check_invariants(self)
    }
}

impl<K: Key, V: Value, M: ShardMap<K, V>, P: Partitioner<K>> std::fmt::Debug
    for ShardedStore<K, V, M, P>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.n_shards())
            .field("health", &self.health())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type HashStore = ShardedStore<i64, u64>;
    type RangeStore = ShardedStore<i64, u64, LoAvlMap<i64, u64>, RangePartitioner<i64>>;

    #[test]
    fn point_ops_route_and_round_trip() {
        let s = HashStore::hash_sharded(4);
        assert_eq!(s.n_shards(), 4);
        for k in 0i64..256 {
            assert!(s.insert(k, k as u64 * 2));
        }
        assert!(!s.insert(7, 0), "duplicate insert must fail");
        assert_eq!(s.get(&7), Some(14), "failed insert must not overwrite");
        for k in 0i64..256 {
            assert!(s.contains(&k));
            assert_eq!(s.get(&k), Some(k as u64 * 2));
        }
        assert_eq!(s.len(), 256);
        assert!(s.remove(&7));
        assert!(!s.remove(&7));
        assert!(!s.contains(&7));
        s.check_invariants();
    }

    #[test]
    fn shards_live_in_distinct_private_domains() {
        let s = HashStore::hash_sharded(3);
        for i in 0..3 {
            assert!(!s.domain_of(i).is_global(), "shards must not share the global epoch");
            assert!(s.shard(i).domain().is_same_domain(s.domain_of(i)));
            for j in 0..3 {
                if i != j {
                    assert!(
                        !s.domain_of(i).is_same_domain(s.domain_of(j)),
                        "shards {i} and {j} must have independent grace periods"
                    );
                }
            }
        }
    }

    #[test]
    fn every_key_lives_on_its_routed_shard() {
        let s = HashStore::hash_sharded(5);
        for k in -500i64..500 {
            assert!(s.insert(k, 1));
        }
        // check_invariants asserts the routing invariant internally.
        s.check_invariants();
        let spread = (0..5).map(|i| s.shard(i).len()).collect::<Vec<_>>();
        assert_eq!(spread.iter().sum::<usize>(), 1000);
        assert!(spread.iter().all(|&n| n > 0), "1000 keys must touch all 5 shards: {spread:?}");
    }

    #[test]
    fn range_store_stitches_sequentially() {
        let s = RangeStore::range_sharded(vec![0, 100]);
        for k in -50i64..150 {
            assert!(s.insert(k, k as u64));
        }
        // Whole keyspace, crossing both boundaries.
        let all = s.range_keys(-50..=149);
        assert_eq!(all, (-50i64..150).collect::<Vec<_>>());
        // Spanning exactly one boundary.
        assert_eq!(s.range_keys(-5..=5), (-5i64..=5).collect::<Vec<_>>());
        // Boundary key itself lives on the right shard.
        assert_eq!(s.shard_of(&0), 1);
        assert!(s.shard(1).contains(&0) && !s.shard(0).contains(&0));
        // Inside one shard.
        assert_eq!(s.range_keys(10..=20), (10i64..=20).collect::<Vec<_>>());
        assert_eq!(s.range_count(-50..=149), 200);
        s.check_invariants();
    }

    #[test]
    fn hash_store_merges_into_ascending_stream() {
        let s = HashStore::hash_sharded(4);
        for k in 0i64..512 {
            assert!(s.insert(k, 0));
        }
        let got = s.range_keys(100..=411);
        assert_eq!(got, (100i64..=411).collect::<Vec<_>>());
        assert!(got.windows(2).all(|w| w[0] < w[1]), "merged stream must be strictly ascending");
        assert_eq!(s.keys_in_order(), (0i64..512).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_point_queries_aggregate() {
        let s = RangeStore::range_sharded(vec![100]);
        for k in [5i64, 50, 150, 250] {
            assert!(s.insert(k, 0));
        }
        assert_eq!(s.min_key(), Some(5));
        assert_eq!(s.max_key(), Some(250));
        assert_eq!(s.ceiling_key(&51), Some(150), "ceiling must cross the shard boundary");
        assert_eq!(s.floor_key(&149), Some(50), "floor must cross the shard boundary");
        assert_eq!(s.ceiling_key(&251), None);
        assert_eq!(s.floor_key(&4), None);
    }

    #[test]
    fn empty_and_reverse_ranges() {
        let s = RangeStore::range_sharded(vec![0]);
        assert!(s.is_empty());
        assert_eq!(s.range_keys(-10..=10), Vec::<i64>::new());
        assert!(s.insert(5, 1));
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert_eq!(s.range_count(10..=-10), 0, "inverted range is empty");
        }
        assert_eq!(s.range_keys(6..=100), Vec::<i64>::new());
        assert!(!s.is_empty());
    }

    #[test]
    fn trait_object_surface() {
        let s = HashStore::hash_sharded(2);
        let m: &dyn ConcurrentMap<i64, u64> = &s;
        assert_eq!(m.name(), "lo-store");
        assert!(m.insert(1, 10));
        assert!(m.contains(&1));
        assert_eq!(m.get(&1), Some(10));
        assert!(m.remove(&1));
    }

    #[test]
    fn healthy_store_recovery_surface() {
        let s = HashStore::hash_sharded(2);
        assert_eq!(s.health(), Health::Writable);
        assert_eq!(s.poisoned(), None);
        assert_eq!(s.degraded_mask(), 0);
        assert_eq!(s.recovery_generation(), 0);
        assert_eq!(FallibleMap::try_recover(&s).err(), Some(RecoverError::NotPoisoned));
        assert_eq!(s.try_insert(1, 1), Ok(true));
        assert_eq!(s.try_remove(&1), Ok(true));
    }

    #[test]
    fn merge_strategy_rank() {
        assert_eq!(
            most_invasive(RepairStrategy::AuditOnly, RepairStrategy::StreamingRebuild),
            RepairStrategy::StreamingRebuild
        );
        assert_eq!(
            most_invasive(RepairStrategy::InPlace, RepairStrategy::AuditOnly),
            RepairStrategy::InPlace
        );
    }
}
