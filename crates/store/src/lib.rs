//! # lo-store — the service tier over the logical-ordering trees
//!
//! One tree scales to many cores (the paper's whole point), but a *service*
//! built on it hits two ceilings the tree itself cannot fix:
//!
//! 1. **One grace-period authority.** Every reader of every key pins the
//!    same epoch, so one slow scan anywhere delays reclamation everywhere.
//! 2. **One failure domain.** A writer death poisons the whole keyspace at
//!    once, and recovery quarantines all writers.
//!
//! `lo-store` composes N trees into one map and removes both ceilings:
//!
//! * [`ShardedStore`] — keyspace-sharded composition. A [`Partitioner`]
//!   (hash or range) fixes each key's home shard; each shard is a full
//!   logical-ordering tree born into its **own** [`lo_core::EpochDomain`],
//!   so grace periods and failures are per-shard. Cross-shard range scans
//!   stitch the per-shard lock-free cursors into one strictly ascending
//!   stream with no global lock. Health is per-shard
//!   ([`lo_api::Health::Degraded`] carries the unwritable-shard bitmask)
//!   and so is online recovery.
//! * [`BatchedStore`] — a flat-combining frontend: contending writers on a
//!   shard elect a combiner that executes the whole batch under one epoch
//!   guard with amortized lock traffic; everyone else waits on a result
//!   slot. Reads stay lock-free pass-throughs.
//!
//! The store implements the same trait surface as a single tree
//! ([`lo_api::ConcurrentMap`], [`lo_api::FallibleMap`],
//! [`lo_api::OrderedRead`], ...), so every harness in the workspace — the
//! workload runner, the chaos tester, the benches — drives it unmodified.
//!
//! See `DESIGN.md` §19 for the protocol argument.

#![warn(missing_docs)]
// Protocol code must justify every raw lock to lo-lint; no unsafe needed.
#![forbid(unsafe_code)]

pub mod fc;
pub mod router;
pub mod store;

pub use fc::BatchedStore;
pub use router::{HashPartitioner, Partitioner, RangePartitioner, ShardRouter, MAX_SHARDS};
pub use store::{ShardMap, ShardedStore};
