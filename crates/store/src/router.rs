//! Keyspace routing: which shard owns a key, and in what order shards must
//! be visited to keep a cross-shard scan strictly ascending.
//!
//! A [`Partitioner`] is a *pure function* of the key — it never consults the
//! shards — so routing is lock-free and a key's home shard never changes for
//! the lifetime of the store. Two policies ship:
//!
//! * [`RangePartitioner`] — contiguous key slices separated by split keys.
//!   Order-preserving: shard *i* holds strictly smaller keys than shard
//!   *i + 1*, so a range scan visits shards sequentially and stitches their
//!   per-shard cursors at the boundaries ([`Partitioner::ordered_cover`]
//!   returns `Some`).
//! * [`HashPartitioner`] — an FNV-1a hash of the key modulo the shard
//!   count. Spreads hot contiguous keyspaces evenly, but interleaves the
//!   key order across shards, so a range scan must gather every shard's
//!   slice and merge (`ordered_cover` returns `None`).

use lo_api::Key;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// Hard cap on shard count: the store's degraded-health state is a `u64`
/// bitmask of unwritable shards ([`lo_api::Health::Degraded`]).
pub const MAX_SHARDS: usize = 64;

/// Maps keys to shard indices. Implementations must be pure: the same key
/// always routes to the same shard, with no interior mutability.
pub trait Partitioner<K: Key>: Send + Sync {
    /// Number of shards this partitioner routes across (fixed for life).
    fn n_shards(&self) -> usize;

    /// The shard owning `key`; always `< n_shards()`.
    fn shard_of(&self, key: &K) -> usize;

    /// If this policy is *order-preserving* — every key on shard *i* is
    /// smaller than every key on shard *j* whenever *i < j* — returns the
    /// shards intersecting `lo..=hi`, in ascending key order, so a scan can
    /// stream them sequentially and stitch at the boundaries. Returns
    /// `None` when key order interleaves across shards (hash routing), in
    /// which case the scanner must gather per-shard slices and merge.
    fn ordered_cover(&self, lo: &K, hi: &K) -> Option<Vec<usize>>;
}

/// Contiguous-slice routing: `splits = [s0, s1, ...]` carve the keyspace
/// into `splits.len() + 1` shards. Boundary semantics: a key **equal to a
/// split belongs to the shard on its right** — shard 0 holds keys `< s0`,
/// shard *i* (for *i ≥ 1*) holds keys in `[s(i-1), s(i))`, and the last
/// shard holds keys `>= s(last)`.
pub struct RangePartitioner<K: Key> {
    splits: Vec<K>,
}

impl<K: Key> RangePartitioner<K> {
    /// Builds a range partitioner with `splits.len() + 1` shards. Panics if
    /// the splits are not strictly ascending or the shard count exceeds
    /// [`MAX_SHARDS`].
    pub fn new(splits: Vec<K>) -> Self {
        assert!(
            splits.len() < MAX_SHARDS,
            "{} splits make {} shards; max is {MAX_SHARDS}",
            splits.len(),
            splits.len() + 1,
        );
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "splits must be strictly ascending"
        );
        Self { splits }
    }

    /// The split keys, ascending.
    pub fn splits(&self) -> &[K] {
        &self.splits
    }
}

impl<K: Key> Partitioner<K> for RangePartitioner<K> {
    fn n_shards(&self) -> usize {
        self.splits.len() + 1
    }

    fn shard_of(&self, key: &K) -> usize {
        // Count of splits <= key: a key equal to split s_i lands on shard
        // i + 1 (the right-hand shard) — the documented boundary rule.
        self.splits.partition_point(|s| s <= key)
    }

    fn ordered_cover(&self, lo: &K, hi: &K) -> Option<Vec<usize>> {
        Some((self.shard_of(lo)..=self.shard_of(hi)).collect())
    }
}

/// FNV-1a over the key's `Hash` stream, modulo the shard count.
/// Deterministic across processes (no random state), dependency-free, and
/// good enough dispersion for shard routing after a final avalanche mix.
pub struct HashPartitioner<K> {
    n: usize,
    _k: PhantomData<fn(K)>,
}

impl<K> HashPartitioner<K> {
    /// Builds an `n`-way hash partitioner. Panics unless
    /// `1 <= n <= MAX_SHARDS`.
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&n),
            "shard count {n} outside 1..={MAX_SHARDS}"
        );
        Self { n, _k: PhantomData }
    }
}

/// FNV-1a, 64-bit: the classic offset basis / prime pair.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64 finalizer): FNV's low bits are weak
        // for small integer keys, and `% n` looks exactly there.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl<K: Key + Hash> Partitioner<K> for HashPartitioner<K> {
    fn n_shards(&self) -> usize {
        self.n
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
        key.hash(&mut h);
        (h.finish() % self.n as u64) as usize
    }

    fn ordered_cover(&self, _lo: &K, _hi: &K) -> Option<Vec<usize>> {
        // A single hash shard trivially preserves order; beyond that the
        // keyspace interleaves and the scanner must merge.
        if self.n == 1 { Some(vec![0]) } else { None }
    }
}

/// Thin routing front door the store embeds: validates the partitioner once
/// and exposes the routing queries with debug-checked bounds.
pub struct ShardRouter<K: Key, P: Partitioner<K>> {
    partitioner: P,
    _k: PhantomData<fn(K)>,
}

impl<K: Key, P: Partitioner<K>> ShardRouter<K, P> {
    /// Wraps `partitioner`; panics if it reports zero or more than
    /// [`MAX_SHARDS`] shards.
    pub fn new(partitioner: P) -> Self {
        let n = partitioner.n_shards();
        assert!(
            (1..=MAX_SHARDS).contains(&n),
            "partitioner reports {n} shards, outside 1..={MAX_SHARDS}"
        );
        Self { partitioner, _k: PhantomData }
    }

    /// Number of shards routed across.
    pub fn n_shards(&self) -> usize {
        self.partitioner.n_shards()
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        let i = self.partitioner.shard_of(key);
        debug_assert!(i < self.n_shards(), "partitioner routed {key:?} to shard {i}");
        i
    }

    /// See [`Partitioner::ordered_cover`].
    pub fn ordered_cover(&self, lo: &K, hi: &K) -> Option<Vec<usize>> {
        self.partitioner.ordered_cover(lo, hi)
    }

    /// Borrows the wrapped partitioner.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_boundary_key_goes_right() {
        let p = RangePartitioner::new(vec![0i64, 100]);
        assert_eq!(p.n_shards(), 3);
        assert_eq!(p.shard_of(&-1), 0);
        assert_eq!(p.shard_of(&0), 1, "key equal to a split belongs to the right shard");
        assert_eq!(p.shard_of(&99), 1);
        assert_eq!(p.shard_of(&100), 2);
        assert_eq!(p.shard_of(&i64::MAX), 2);
        assert_eq!(p.shard_of(&i64::MIN), 0);
    }

    #[test]
    fn range_cover_is_sequential() {
        let p = RangePartitioner::new(vec![0i64, 100]);
        assert_eq!(p.ordered_cover(&-5, &-1), Some(vec![0]));
        assert_eq!(p.ordered_cover(&-5, &5), Some(vec![0, 1]));
        assert_eq!(p.ordered_cover(&-5, &500), Some(vec![0, 1, 2]));
        assert_eq!(p.ordered_cover(&100, &100), Some(vec![2]));
        // Boundary-adjacent: hi just below the split stays left of it.
        assert_eq!(p.ordered_cover(&-5, &99), Some(vec![0, 1]));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn range_rejects_unsorted_splits() {
        let _ = RangePartitioner::new(vec![5i64, 5]);
    }

    #[test]
    fn hash_routing_is_stable_and_in_bounds() {
        let p = HashPartitioner::<i64>::new(7);
        for k in -1000i64..1000 {
            let s = p.shard_of(&k);
            assert!(s < 7);
            assert_eq!(s, p.shard_of(&k), "routing must be deterministic");
        }
        assert_eq!(p.ordered_cover(&0, &10), None, "multi-shard hash order interleaves");
        assert_eq!(HashPartitioner::<i64>::new(1).ordered_cover(&0, &10), Some(vec![0]));
    }

    #[test]
    fn hash_spreads_contiguous_keys() {
        // A contiguous block must not pile onto one shard — that is the
        // whole point of hash routing over range routing.
        let p = HashPartitioner::<i64>::new(4);
        let mut per_shard = [0usize; 4];
        for k in 0i64..4096 {
            per_shard[p.shard_of(&k)] += 1;
        }
        for (i, &n) in per_shard.iter().enumerate() {
            assert!(
                (700..=1400).contains(&n),
                "shard {i} got {n}/4096 contiguous keys; dispersion is broken: {per_shard:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn hash_rejects_zero_shards() {
        let _ = HashPartitioner::<i64>::new(0);
    }

    #[test]
    fn router_bounds_check() {
        let r = ShardRouter::new(RangePartitioner::new(vec![10i64]));
        assert_eq!(r.n_shards(), 2);
        assert_eq!(r.shard_of(&9), 0);
        assert_eq!(r.shard_of(&10), 1);
        assert_eq!(r.ordered_cover(&0, &20), Some(vec![0, 1]));
        assert_eq!(r.partitioner().splits(), &[10]);
    }
}
