//! Scan-coherence evidence for **stitched** cross-shard scans (ISSUE 10).
//!
//! The single tree's concurrent scans already pass `lo_check::scan`'s
//! coherence checker; these tests hold the sharded store's stitched scans
//! to the identical contract — strictly ascending, in-window, no yield of a
//! certainly-dead key, no miss of a continuously-live one — while updaters
//! race the scanner. Both stitching strategies are driven: sequential
//! per-shard cursors (range routing) and gather-then-merge (hash routing),
//! with windows spanning zero, one, and every shard boundary, plus empty
//! shards and boundary-key regressions.

use lo_check::lin::{CompletedOp, LinOp, Recorder};
use lo_check::scan::{check_scan_coherence, ScanObservation};
use lo_core::LoAvlMap;
use lo_store::{RangePartitioner, ShardedStore};

type RangeStore = ShardedStore<i64, u64, LoAvlMap<i64, u64>, RangePartitioner<i64>>;
type HashStore = ShardedStore<i64, u64>;

/// The two store flavours under one hat for the generic storm driver.
trait StoreOps: Sync {
    fn ins(&self, k: i64) -> bool;
    fn rem(&self, k: i64) -> bool;
    fn scan_u8(&self, lo: u8, hi: u8, out: &mut Vec<u8>);
}

macro_rules! impl_store_ops {
    ($ty:ty) => {
        impl StoreOps for $ty {
            fn ins(&self, k: i64) -> bool {
                self.insert(k, 0)
            }
            fn rem(&self, k: i64) -> bool {
                self.remove(&k)
            }
            fn scan_u8(&self, lo: u8, hi: u8, out: &mut Vec<u8>) {
                self.scan_range(i64::from(lo)..=i64::from(hi), |k| out.push(k as u8));
            }
        }
    };
}

impl_store_ops!(RangeStore);
impl_store_ops!(HashStore);

/// Windows exercised against splits `[16, 32, 48]`: inside one shard (zero
/// boundaries), across exactly one boundary, across every boundary, and
/// degenerate single-key windows sitting exactly on a split.
const WINDOWS: &[(u8, u8)] = &[
    (17, 30), // strictly inside shard 1
    (10, 20), // crosses the 16 split only
    (0, 63),  // crosses all three splits
    (16, 16), // exactly the boundary key
    (47, 49), // straddles the 48 split
];

/// Drives two updaters over keys `0..64` against one scanner walking
/// `WINDOWS`, all stamped on one logical clock, then runs the coherence
/// checker over the combined history.
fn storm_and_check<M: StoreOps>(store: &M, initial: u64) {
    let recorder = Recorder::new();
    let (history, scans) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let recorder = &recorder;
            handles.push(s.spawn(move || {
                let mut ops = Vec::new();
                let mut x = 0x9e37_79b9_u64.wrapping_add(t.wrapping_mul(0x85eb_ca6b));
                for _ in 0..150 {
                    // xorshift: cheap deterministic-per-thread key/op mix.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = (x % 64) as u8;
                    if x & 1 == 0 {
                        ops.push(recorder.record(LinOp::Insert, key, || store.ins(i64::from(key))));
                    } else {
                        ops.push(recorder.record(LinOp::Remove, key, || store.rem(i64::from(key))));
                    }
                }
                ops
            }));
        }
        let scans: Vec<ScanObservation> = {
            let recorder = &recorder;
            s.spawn(move || {
                let mut scans = Vec::new();
                for _ in 0..10 {
                    for &(lo, hi) in WINDOWS {
                        let invoke = recorder.stamp();
                        let mut keys = Vec::new();
                        store.scan_u8(lo, hi, &mut keys);
                        let response = recorder.stamp();
                        scans.push(ScanObservation { lo, hi, keys, invoke, response });
                    }
                }
                scans
            })
            .join()
            .expect("scanner must not die")
        };
        let mut history: Vec<CompletedOp> = Vec::new();
        for h in handles {
            history.extend(h.join().expect("updater must not die"));
        }
        (history, scans)
    });
    if let Err(v) = check_scan_coherence(&history, &scans, initial) {
        panic!("stitched scan broke coherence: {v}");
    }
}

fn prefill(store: &impl StoreOps) -> u64 {
    let mut initial = 0u64;
    for k in (0..64u8).step_by(2) {
        assert!(store.ins(i64::from(k)));
        initial |= 1 << k;
    }
    initial
}

#[test]
fn sequentially_stitched_scans_cohere_under_storm() {
    let store = RangeStore::range_sharded(vec![16, 32, 48]);
    let initial = prefill(&store);
    storm_and_check(&store, initial);
    store.check_invariants();
}

#[test]
fn merged_scans_cohere_under_storm() {
    let store = HashStore::hash_sharded(4);
    let initial = prefill(&store);
    storm_and_check(&store, initial);
    store.check_invariants();
}

#[test]
fn empty_shards_stitch_cleanly() {
    // Middle shards hold nothing: the stitched stream must skip them
    // without a glitch.
    let store = RangeStore::range_sharded(vec![16, 32, 48]);
    for k in (0i64..16).chain(48..64) {
        assert!(store.insert(k, 0));
    }
    assert_eq!(
        store.range_keys(0..=63),
        (0i64..16).chain(48..64).collect::<Vec<_>>()
    );
    assert_eq!(store.range_count(16..=47), 0, "the empty middle spans two shards");
    assert_eq!(store.range_keys(20..=40), Vec::<i64>::new());
    store.check_invariants();
}

#[test]
fn boundary_key_regressions() {
    let store = RangeStore::range_sharded(vec![16, 32, 48]);
    // A key exactly at a split lives on the right-hand shard.
    assert!(store.insert(16, 1));
    assert_eq!(store.shard_of(&16), 1);
    assert!(store.shard(1).contains(&16), "split key must live right of the split");
    assert!(!store.shard(0).contains(&16));
    // Single-key window on the boundary.
    assert_eq!(store.range_keys(16..=16), vec![16]);
    // Window ending just left / starting just right of the split.
    assert!(store.insert(15, 1));
    assert!(store.insert(17, 1));
    assert_eq!(store.range_keys(0..=15), vec![15]);
    assert_eq!(store.range_keys(17..=31), vec![17]);
    // Reverse and empty windows yield nothing.
    #[allow(clippy::reversed_empty_ranges)]
    {
        assert_eq!(store.range_count(40..=20), 0, "inverted window is empty");
    }
    assert_eq!(store.range_keys(18..=18), Vec::<i64>::new());
    // min/max/ceiling/floor agree across the boundary.
    assert_eq!(store.min_key(), Some(15));
    assert_eq!(store.max_key(), Some(17));
    assert_eq!(store.ceiling_key(&16), Some(16));
    assert_eq!(store.floor_key(&16), Some(16));
    assert_eq!(store.ceiling_key(&18), None);
    assert_eq!(store.floor_key(&14), None);
    store.check_invariants();
}

#[test]
fn stitched_scan_matches_single_tree_reference() {
    // Same key set into a 4-shard store and one reference tree: every
    // window must produce byte-identical streams.
    let store = RangeStore::range_sharded(vec![100, 200, 300]);
    let reference = LoAvlMap::new();
    let mut x = 7u64;
    for _ in 0..300 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = (x % 400) as i64;
        assert_eq!(store.insert(k, 0), reference.insert(k, 0));
    }
    for (lo, hi) in [(0i64, 399), (90, 110), (150, 150), (0, 99), (300, 399), (250, 260)] {
        assert_eq!(
            store.range_keys(lo..=hi),
            reference.range_keys(lo..=hi),
            "window {lo}..={hi} diverged from the single-tree reference"
        );
    }
    assert_eq!(store.keys_in_order(), reference.keys_in_order());
}
