//! Trial specifications mirroring the paper's evaluation protocol (§6).

use std::time::Duration;

/// An operation mix, in percent (must sum to 100).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Percentage of `contains` operations.
    pub contains: u32,
    /// Percentage of `insert` operations.
    pub insert: u32,
    /// Percentage of `remove` operations.
    pub remove: u32,
    /// Percentage of range-scan operations. Mixes with a nonzero `range`
    /// weight need an ordered map ([`lo_api::OrderedRead`]) and the
    /// ordered runner ([`crate::runner::run_trial_ordered`]).
    pub range: u32,
    /// Keys per range scan (the scan window is `start..=start + scan_len
    /// - 1`). Only meaningful when `range > 0`.
    pub scan_len: u32,
}

impl Mix {
    /// Validated constructor for the classic three-operation mix
    /// (`range = 0`).
    pub fn new(contains: u32, insert: u32, remove: u32) -> Self {
        Self::with_range(contains, insert, remove, 0, 0)
    }

    /// Validated constructor including a range-scan weight.
    pub fn with_range(contains: u32, insert: u32, remove: u32, range: u32, scan_len: u32) -> Self {
        assert_eq!(contains + insert + remove + range, 100, "mix must sum to 100%");
        assert!(range == 0 || scan_len >= 1, "range scans need scan_len >= 1");
        Self { contains, insert, remove, range, scan_len }
    }

    /// 100% contains — the paper's read-only workload.
    pub const C100: Mix = Mix { contains: 100, insert: 0, remove: 0, range: 0, scan_len: 0 };
    /// 70% contains, 20% insert, 10% remove — the paper's mixed workload.
    pub const C70_I20_R10: Mix = Mix { contains: 70, insert: 20, remove: 10, range: 0, scan_len: 0 };
    /// 50% contains, 25% insert, 25% remove — the paper's write-heavy workload.
    pub const C50_I25_R25: Mix = Mix { contains: 50, insert: 25, remove: 25, range: 0, scan_len: 0 };
    /// 10% contains, 60% insert, 30% remove — update-dominated extension
    /// (ISSUE 8) stressing the writers' lock windows; converges to ⅔ of the
    /// key range like the paper's 70-20-10 mix.
    pub const C10_I60_R30: Mix = Mix { contains: 10, insert: 60, remove: 30, range: 0, scan_len: 0 };

    /// Short identifier used in table headers (e.g. `70c-20i-10r`; mixes
    /// with scans append the weight and window, e.g. `60c-20i-10r-10s64`).
    pub fn label(&self) -> String {
        if self.range == 0 {
            format!("{}c-{}i-{}r", self.contains, self.insert, self.remove)
        } else {
            format!(
                "{}c-{}i-{}r-{}s{}",
                self.contains, self.insert, self.remove, self.range, self.scan_len
            )
        }
    }

    /// Whether the mix contains mutating operations.
    pub fn has_updates(&self) -> bool {
        self.insert + self.remove > 0
    }

    /// Expected steady-state size as a fraction of the key range.
    ///
    /// With equal insert/remove rates a uniform-key workload converges to
    /// half the range; with insert:remove = 2:1 it converges to 2/3 — the
    /// paper prefans with exactly these fractions.
    pub fn steady_state_fraction(&self) -> f64 {
        if self.insert + self.remove == 0 {
            0.5
        } else {
            f64::from(self.insert) / f64::from(self.insert + self.remove)
        }
    }

    /// Draws an operation kind from a uniform `[0, 100)` roll.
    #[inline]
    pub fn pick(&self, roll: u32) -> OpKind {
        debug_assert!(roll < 100);
        if roll < self.contains {
            OpKind::Contains
        } else if roll < self.contains + self.insert {
            OpKind::Insert
        } else if roll < self.contains + self.insert + self.remove {
            OpKind::Remove
        } else {
            OpKind::RangeScan { len: self.scan_len }
        }
    }
}

/// The dictionary operations a workload can issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Membership query.
    Contains,
    /// Insertion.
    Insert,
    /// Removal.
    Remove,
    /// Ordered scan of `len` consecutive keys starting at the drawn key.
    RangeScan {
        /// Window width in keys.
        len: u32,
    },
}

impl OpKind {
    /// Number of operation kinds (range scans collapse over `len`).
    pub const COUNT: usize = 4;

    /// Stable report labels, indexed by [`OpKind::index`].
    pub const LABELS: [&'static str; Self::COUNT] = ["contains", "insert", "remove", "range-scan"];

    /// Dense index for per-kind accounting (range scans collapse over
    /// `len`): contains=0, insert=1, remove=2, range-scan=3.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpKind::Contains => 0,
            OpKind::Insert => 1,
            OpKind::Remove => 2,
            OpKind::RangeScan { .. } => 3,
        }
    }

    /// Stable report label of this kind.
    pub fn label(self) -> &'static str {
        Self::LABELS[self.index()]
    }
}

/// Key distribution for a trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Uniform over the key range (the paper's protocol).
    Uniform,
    /// Zipf-distributed ranks over a shuffled key space (extension).
    Zipf(f64),
}

/// A complete trial description.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    /// Operation mix.
    pub mix: Mix,
    /// Keys are drawn from `[0, key_range)`.
    pub key_range: u64,
    /// Number of worker threads.
    pub threads: usize,
    /// Measured duration of the trial.
    pub duration: Duration,
    /// Key distribution.
    pub dist: KeyDist,
    /// Base seed; thread `i` of repetition `r` derives an independent stream.
    pub seed: u64,
    /// Sample per-operation latencies into per-kind histograms
    /// ([`crate::runner::TrialResult::latency`]). Off by default: sampling
    /// adds two clock reads per operation, which perturbs pure-throughput
    /// trials.
    pub sample_latency: bool,
}

impl TrialSpec {
    /// The paper's default: uniform keys, duration set by the caller.
    pub fn new(mix: Mix, key_range: u64, threads: usize, duration: Duration) -> Self {
        assert!(key_range >= 2);
        assert!(threads >= 1);
        Self {
            mix,
            key_range,
            threads,
            duration,
            dist: KeyDist::Uniform,
            seed: 0x00C0_FFEE,
            sample_latency: false,
        }
    }

    /// Enables per-op-kind latency sampling for this spec.
    pub fn with_latency(mut self) -> Self {
        self.sample_latency = true;
        self
    }

    /// Target prefill size (paper §6: ½ of the range for 100c and 50-25-25,
    /// ⅔ for 70-20-10 — the expected steady-state size).
    pub fn prefill_target(&self) -> usize {
        (self.key_range as f64 * self.mix.steady_state_fraction()).round() as usize
    }

    /// Derives a new spec with a different seed (per repetition).
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut s = self.clone();
        s.seed = seed;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_enforced() {
        let m = Mix::new(70, 20, 10);
        assert_eq!(m.label(), "70c-20i-10r");
        assert!(m.has_updates());
        assert!(!Mix::C100.has_updates());
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = Mix::new(50, 20, 10);
    }

    #[test]
    fn steady_state_fractions_match_paper() {
        assert!((Mix::C100.steady_state_fraction() - 0.5).abs() < 1e-9);
        assert!((Mix::C50_I25_R25.steady_state_fraction() - 0.5).abs() < 1e-9);
        assert!((Mix::C70_I20_R10.steady_state_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!((Mix::C10_I60_R30.steady_state_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(Mix::C10_I60_R30.label(), "10c-60i-30r");
    }

    #[test]
    fn pick_respects_boundaries() {
        let m = Mix::C70_I20_R10;
        assert_eq!(m.pick(0), OpKind::Contains);
        assert_eq!(m.pick(69), OpKind::Contains);
        assert_eq!(m.pick(70), OpKind::Insert);
        assert_eq!(m.pick(89), OpKind::Insert);
        assert_eq!(m.pick(90), OpKind::Remove);
        assert_eq!(m.pick(99), OpKind::Remove);
    }

    #[test]
    fn range_mix_labels_and_picks() {
        let m = Mix::with_range(60, 20, 10, 10, 64);
        assert_eq!(m.label(), "60c-20i-10r-10s64");
        assert!(m.has_updates());
        assert_eq!(m.pick(89), OpKind::Remove);
        assert_eq!(m.pick(90), OpKind::RangeScan { len: 64 });
        assert_eq!(m.pick(99), OpKind::RangeScan { len: 64 });
        // Classic constructor keeps the old labels stable.
        assert_eq!(Mix::new(70, 20, 10).label(), "70c-20i-10r");
    }

    #[test]
    #[should_panic(expected = "scan_len")]
    fn range_mix_needs_scan_len() {
        let _ = Mix::with_range(60, 20, 10, 10, 0);
    }

    #[test]
    fn prefill_targets() {
        let s = TrialSpec::new(Mix::C70_I20_R10, 30_000, 4, Duration::from_millis(10));
        assert_eq!(s.prefill_target(), 20_000);
        let s = TrialSpec::new(Mix::C100, 30_000, 4, Duration::from_millis(10));
        assert_eq!(s.prefill_target(), 15_000);
    }
}
