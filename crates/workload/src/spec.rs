//! Trial specifications mirroring the paper's evaluation protocol (§6).

use std::time::Duration;

/// An operation mix, in percent (must sum to 100).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Percentage of `contains` operations.
    pub contains: u32,
    /// Percentage of `insert` operations.
    pub insert: u32,
    /// Percentage of `remove` operations.
    pub remove: u32,
}

impl Mix {
    /// Validated constructor.
    pub fn new(contains: u32, insert: u32, remove: u32) -> Self {
        assert_eq!(contains + insert + remove, 100, "mix must sum to 100%");
        Self { contains, insert, remove }
    }

    /// 100% contains — the paper's read-only workload.
    pub const C100: Mix = Mix { contains: 100, insert: 0, remove: 0 };
    /// 70% contains, 20% insert, 10% remove — the paper's mixed workload.
    pub const C70_I20_R10: Mix = Mix { contains: 70, insert: 20, remove: 10 };
    /// 50% contains, 25% insert, 25% remove — the paper's write-heavy workload.
    pub const C50_I25_R25: Mix = Mix { contains: 50, insert: 25, remove: 25 };

    /// Short identifier used in table headers (e.g. `70c-20i-10r`).
    pub fn label(&self) -> String {
        format!("{}c-{}i-{}r", self.contains, self.insert, self.remove)
    }

    /// Whether the mix contains mutating operations.
    pub fn has_updates(&self) -> bool {
        self.insert + self.remove > 0
    }

    /// Expected steady-state size as a fraction of the key range.
    ///
    /// With equal insert/remove rates a uniform-key workload converges to
    /// half the range; with insert:remove = 2:1 it converges to 2/3 — the
    /// paper prefans with exactly these fractions.
    pub fn steady_state_fraction(&self) -> f64 {
        if self.insert + self.remove == 0 {
            0.5
        } else {
            f64::from(self.insert) / f64::from(self.insert + self.remove)
        }
    }

    /// Draws an operation kind from a uniform `[0, 100)` roll.
    #[inline]
    pub fn pick(&self, roll: u32) -> OpKind {
        debug_assert!(roll < 100);
        if roll < self.contains {
            OpKind::Contains
        } else if roll < self.contains + self.insert {
            OpKind::Insert
        } else {
            OpKind::Remove
        }
    }
}

/// The three dictionary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Membership query.
    Contains,
    /// Insertion.
    Insert,
    /// Removal.
    Remove,
}

/// Key distribution for a trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Uniform over the key range (the paper's protocol).
    Uniform,
    /// Zipf-distributed ranks over a shuffled key space (extension).
    Zipf(f64),
}

/// A complete trial description.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    /// Operation mix.
    pub mix: Mix,
    /// Keys are drawn from `[0, key_range)`.
    pub key_range: u64,
    /// Number of worker threads.
    pub threads: usize,
    /// Measured duration of the trial.
    pub duration: Duration,
    /// Key distribution.
    pub dist: KeyDist,
    /// Base seed; thread `i` of repetition `r` derives an independent stream.
    pub seed: u64,
}

impl TrialSpec {
    /// The paper's default: uniform keys, duration set by the caller.
    pub fn new(mix: Mix, key_range: u64, threads: usize, duration: Duration) -> Self {
        assert!(key_range >= 2);
        assert!(threads >= 1);
        Self { mix, key_range, threads, duration, dist: KeyDist::Uniform, seed: 0x00C0_FFEE }
    }

    /// Target prefill size (paper §6: ½ of the range for 100c and 50-25-25,
    /// ⅔ for 70-20-10 — the expected steady-state size).
    pub fn prefill_target(&self) -> usize {
        (self.key_range as f64 * self.mix.steady_state_fraction()).round() as usize
    }

    /// Derives a new spec with a different seed (per repetition).
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut s = self.clone();
        s.seed = seed;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_enforced() {
        let m = Mix::new(70, 20, 10);
        assert_eq!(m.label(), "70c-20i-10r");
        assert!(m.has_updates());
        assert!(!Mix::C100.has_updates());
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = Mix::new(50, 20, 10);
    }

    #[test]
    fn steady_state_fractions_match_paper() {
        assert!((Mix::C100.steady_state_fraction() - 0.5).abs() < 1e-9);
        assert!((Mix::C50_I25_R25.steady_state_fraction() - 0.5).abs() < 1e-9);
        assert!((Mix::C70_I20_R10.steady_state_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn pick_respects_boundaries() {
        let m = Mix::C70_I20_R10;
        assert_eq!(m.pick(0), OpKind::Contains);
        assert_eq!(m.pick(69), OpKind::Contains);
        assert_eq!(m.pick(70), OpKind::Insert);
        assert_eq!(m.pick(89), OpKind::Insert);
        assert_eq!(m.pick(90), OpKind::Remove);
        assert_eq!(m.pick(99), OpKind::Remove);
    }

    #[test]
    fn prefill_targets() {
        let s = TrialSpec::new(Mix::C70_I20_R10, 30_000, 4, Duration::from_millis(10));
        assert_eq!(s.prefill_target(), 20_000);
        let s = TrialSpec::new(Mix::C100, 30_000, 4, Duration::from_millis(10));
        assert_eq!(s.prefill_target(), 15_000);
    }
}
