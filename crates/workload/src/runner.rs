//! Timed multi-threaded trials (paper §6 protocol): each thread repeatedly
//! draws an operation from the mix and a key from the distribution until the
//! stop flag fires; the trial reports the summed throughput.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use lo_api::{ConcurrentMap, OrderedRead};
use lo_metrics::{Event, Snapshot};

use crate::latency::LatencyHistogram;
use crate::rng::{SplitMix64, XorShift64Star, Zipf};
use crate::spec::{KeyDist, OpKind, TrialSpec};

/// Per-operation-kind latency histograms of one trial (contains, insert,
/// remove, range-scan — every kind the mix can roll, scans included).
#[derive(Clone, Debug, Default)]
pub struct OpLatency {
    hists: [LatencyHistogram; OpKind::COUNT],
}

impl OpLatency {
    /// Empty histograms for every kind.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample for `kind`.
    #[inline]
    pub fn record(&mut self, kind: OpKind, nanos: u64) {
        self.hists[kind.index()].record(nanos);
    }

    /// Histogram of one kind.
    pub fn kind(&self, kind: OpKind) -> &LatencyHistogram {
        &self.hists[kind.index()]
    }

    /// Merges another trial's (or thread's) histograms into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// `(label, histogram)` pairs in [`OpKind::index`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &LatencyHistogram)> {
        OpKind::LABELS.iter().copied().zip(self.hists.iter())
    }
}

/// Outcome of one timed trial.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Total operations completed across all threads.
    pub total_ops: u64,
    /// Operations per thread (diagnostic; reveals imbalance). Every drawn
    /// operation counts — range scans included, not just point ops.
    pub per_thread: Vec<u64>,
    /// Operations by kind ([`OpKind::index`] order: contains, insert,
    /// remove, range-scan), summed over threads. Always populated.
    pub ops_by_kind: [u64; OpKind::COUNT],
    /// Actual measured wall time.
    pub elapsed: Duration,
    /// Event counters recorded during this trial (difference of global
    /// snapshots taken around the timed window). All-zero unless the
    /// `metrics` feature is enabled. Slightly over-inclusive under
    /// concurrency from outside the trial; exact when the trial's threads
    /// are the only activity, as in the reproduction binaries.
    pub events: Snapshot,
    /// Per-op-kind latency histograms, merged across threads. `Some` only
    /// when the spec set [`TrialSpec::sample_latency`].
    pub latency: Option<OpLatency>,
}

impl TrialResult {
    /// Throughput in million operations per second — the unit of the paper's
    /// tables.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Thread-imbalance ratio: busiest thread's op count over the laziest
    /// thread's. 1.0 is perfectly fair; `INFINITY` means some thread was
    /// fully starved; 1.0 is also returned for empty/all-zero trials (there
    /// is no imbalance to speak of).
    pub fn imbalance(&self) -> f64 {
        let max = self.per_thread.iter().copied().max().unwrap_or(0);
        let min = self.per_thread.iter().copied().min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Occurrences of `event` per completed operation in this trial.
    pub fn events_per_op(&self, event: Event) -> f64 {
        self.events.per_op(event, self.total_ops)
    }

    /// Operations of one kind completed in this trial (range scans collapse
    /// over their window length).
    pub fn ops_of(&self, kind: OpKind) -> u64 {
        self.ops_by_kind[kind.index()]
    }
}

/// Prefills the map to the spec's steady-state target size.
///
/// The paper runs the trial's own mix during prefill until the desired size
/// is reached. For uniform keys the resulting live set is a uniform random
/// subset of the range *regardless* of the insert/remove ratio used to
/// build it, so this implementation inserts uniformly drawn keys until the
/// target is hit — the same distribution, while avoiding a subtle trap in
/// the mix-ratio dynamics: the paper's targets (½ or ⅔ of the range) are
/// exactly the steady-state *asymptote* of the mixed random walk, whose
/// drift vanishes on approach, so "run the mix until the size is reached"
/// takes unboundedly long for the final fraction of a percent.
pub fn prefill<M: ConcurrentMap<i64, u64>>(map: &M, spec: &TrialSpec) {
    let target = spec.prefill_target();
    let mut seeder = SplitMix64::new(spec.seed ^ 0x5EED_F111);
    let mut rng = XorShift64Star::new(seeder.next_u64());
    // Uniform draws even for Zipf trials: the skew shapes the *operations*;
    // the initial subset is uniform (a Zipf-drawn fill would coupon-collect
    // over the distribution's tail and take arbitrarily long).
    let mut size = 0usize;
    while size < target {
        let key = rng.next_below(spec.key_range) as i64;
        if map.insert(key, key as u64) {
            size += 1;
        }
    }
}

#[inline]
fn draw_key(rng: &mut XorShift64Star, spec: &TrialSpec, zipf: Option<&Zipf>) -> i64 {
    match zipf {
        None => rng.next_below(spec.key_range) as i64,
        // Zipf ranks map straight to keys; the skew target is arbitrary
        // under a uniform initial subset.
        Some(z) => z.sample(rng) as i64,
    }
}

/// Runs one timed trial on an already-prefilled map.
///
/// Accepts any [`ConcurrentMap`], so the mix must not contain range scans
/// (`mix.range == 0`); scan workloads need an ordered map and
/// [`run_trial_ordered`].
pub fn run_trial<M: ConcurrentMap<i64, u64>>(map: &M, spec: &TrialSpec) -> TrialResult {
    assert_eq!(
        spec.mix.range, 0,
        "mixes with range scans need an OrderedRead map: use run_trial_ordered"
    );
    trial_loop(map, spec, |_, _, _| unreachable!("range == 0 never rolls a scan"))
}

/// Runs one timed trial whose mix may include range scans. Each scan
/// streams the window `start..=start + len - 1` through
/// [`OrderedRead::scan_range`] and counts as one operation.
pub fn run_trial_ordered<M>(map: &M, spec: &TrialSpec) -> TrialResult
where
    M: ConcurrentMap<i64, u64> + OrderedRead<i64>,
{
    trial_loop(map, spec, |map, start, len| {
        let end = start.saturating_add(i64::from(len).saturating_sub(1));
        let mut seen = 0u64;
        map.scan_range(start..=end, &mut |k| {
            std::hint::black_box(k);
            seen += 1;
        });
        std::hint::black_box(seen);
    })
}

/// The shared timed loop: `scan` executes a `RangeScan { len }` drawn from
/// the mix (never called when `mix.range == 0`).
fn trial_loop<M, S>(map: &M, spec: &TrialSpec, scan: S) -> TrialResult
where
    M: ConcurrentMap<i64, u64>,
    S: Fn(&M, i64, u32) + Sync,
{
    let stop = AtomicBool::new(false);
    let mut seeder = SplitMix64::new(spec.seed);
    let seeds: Vec<u64> = (0..spec.threads).map(|_| seeder.next_u64()).collect();
    let events_before = Snapshot::take();
    let started = Instant::now();

    let (results, elapsed) = std::thread::scope(|scope| {
        let stop = &stop;
        let scan = &scan;
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move || {
                    let mut rng = XorShift64Star::new(seed);
                    let zipf = match spec.dist {
                        KeyDist::Zipf(theta) => {
                            Some(Zipf::new(spec.key_range as usize, theta))
                        }
                        KeyDist::Uniform => None,
                    };
                    let mut ops = 0u64;
                    let mut by_kind = [0u64; OpKind::COUNT];
                    let mut latency = spec.sample_latency.then(OpLatency::new);
                    while !stop.load(Ordering::Relaxed) {
                        // Small batch between stop checks keeps the flag out
                        // of the measured inner loop.
                        for _ in 0..64 {
                            let key = draw_key(&mut rng, spec, zipf.as_ref());
                            let op = spec.mix.pick(rng.next_below(100) as u32);
                            // The clock reads exist only in sampled trials.
                            let t0 = latency.as_ref().map(|_| Instant::now());
                            match op {
                                OpKind::Contains => {
                                    std::hint::black_box(map.contains(&key));
                                }
                                OpKind::Insert => {
                                    std::hint::black_box(map.insert(key, key as u64));
                                }
                                OpKind::Remove => {
                                    std::hint::black_box(map.remove(&key));
                                }
                                OpKind::RangeScan { len } => scan(map, key, len),
                            }
                            if let (Some(lat), Some(t0)) = (latency.as_mut(), t0) {
                                lat.record(op, t0.elapsed().as_nanos() as u64);
                            }
                            // Every kind counts — range scans included.
                            by_kind[op.index()] += 1;
                            ops += 1;
                        }
                    }
                    (ops, by_kind, latency)
                })
            })
            .collect();

        std::thread::sleep(spec.duration);
        stop.store(true, Ordering::Relaxed);
        let elapsed = started.elapsed();
        let results: Vec<(u64, [u64; OpKind::COUNT], Option<OpLatency>)> =
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        (results, elapsed)
    });

    let events = Snapshot::take().since(&events_before);
    let mut ops_by_kind = [0u64; OpKind::COUNT];
    let mut latency = spec.sample_latency.then(OpLatency::new);
    let mut per_thread = Vec::with_capacity(results.len());
    for (ops, by_kind, thread_latency) in results {
        per_thread.push(ops);
        for (total, n) in ops_by_kind.iter_mut().zip(by_kind) {
            *total += n;
        }
        if let (Some(merged), Some(part)) = (latency.as_mut(), thread_latency.as_ref()) {
            merged.merge(part);
        }
    }
    TrialResult { total_ops: per_thread.iter().sum(), per_thread, ops_by_kind, elapsed, events, latency }
}

/// Prefill + warm-up + `reps` measured trials; returns the full
/// [`TrialResult`] of each measured repetition (throughput, per-thread
/// distribution, event telemetry). A fresh map is built by `make_map` for
/// every repetition, as in the paper (each batch ran in its own JVM).
pub fn run_experiment_full<M, F>(make_map: F, spec: &TrialSpec, reps: usize) -> Vec<TrialResult>
where
    M: ConcurrentMap<i64, u64>,
    F: Fn() -> M,
{
    let mut out = Vec::with_capacity(reps);
    for rep in 0..reps {
        let map = make_map();
        let rep_spec = spec.with_seed(spec.seed.wrapping_add(rep as u64 * 0x9E37));
        prefill(&map, &rep_spec);
        // Warm-up: a short untimed burst (stands in for the paper's JIT
        // warm-up; here it warms caches/allocator).
        let warm = TrialSpec { duration: spec.duration / 10, ..rep_spec.clone() };
        let _ = run_trial(&map, &warm);
        out.push(run_trial(&map, &rep_spec));
    }
    out
}

/// Prefill + warm-up + `reps` measured trials; returns per-rep throughputs
/// in Mops/s. Thin wrapper over [`run_experiment_full`].
pub fn run_experiment<M, F>(make_map: F, spec: &TrialSpec, reps: usize) -> Vec<f64>
where
    M: ConcurrentMap<i64, u64>,
    F: Fn() -> M,
{
    run_experiment_full(make_map, spec, reps).iter().map(TrialResult::mops).collect()
}

/// [`run_experiment_full`] for mixes that may include range scans (drives
/// each repetition through [`run_trial_ordered`]).
pub fn run_experiment_full_ordered<M, F>(
    make_map: F,
    spec: &TrialSpec,
    reps: usize,
) -> Vec<TrialResult>
where
    M: ConcurrentMap<i64, u64> + OrderedRead<i64>,
    F: Fn() -> M,
{
    let mut out = Vec::with_capacity(reps);
    for rep in 0..reps {
        let map = make_map();
        let rep_spec = spec.with_seed(spec.seed.wrapping_add(rep as u64 * 0x9E37));
        prefill(&map, &rep_spec);
        let warm = TrialSpec { duration: spec.duration / 10, ..rep_spec.clone() };
        let _ = run_trial_ordered(&map, &warm);
        out.push(run_trial_ordered(&map, &rep_spec));
    }
    out
}

/// Per-rep Mops/s over [`run_experiment_full_ordered`].
pub fn run_experiment_ordered<M, F>(make_map: F, spec: &TrialSpec, reps: usize) -> Vec<f64>
where
    M: ConcurrentMap<i64, u64> + OrderedRead<i64>,
    F: Fn() -> M,
{
    run_experiment_full_ordered(make_map, spec, reps).iter().map(TrialResult::mops).collect()
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // reference map, not tree-protocol state
mod tests {
    use super::*;
    use crate::spec::Mix;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct RefMap(Mutex<BTreeMap<i64, u64>>);
    impl ConcurrentMap<i64, u64> for RefMap {
        fn insert(&self, k: i64, v: u64) -> bool {
            let mut g = self.0.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = g.entry(k) {
                e.insert(v);
                true
            } else {
                false
            }
        }
        fn remove(&self, k: &i64) -> bool {
            self.0.lock().unwrap().remove(k).is_some()
        }
        fn contains(&self, k: &i64) -> bool {
            self.0.lock().unwrap().contains_key(k)
        }
        fn get(&self, k: &i64) -> Option<u64> {
            self.0.lock().unwrap().get(k).copied()
        }
        fn name(&self) -> &'static str {
            "ref"
        }
    }
    impl OrderedRead<i64> for RefMap {
        fn min_key(&self) -> Option<i64> {
            self.0.lock().unwrap().keys().next().copied()
        }
        fn max_key(&self) -> Option<i64> {
            self.0.lock().unwrap().keys().next_back().copied()
        }
        fn ceiling_key(&self, key: &i64) -> Option<i64> {
            self.0.lock().unwrap().range(*key..).next().map(|(k, _)| *k)
        }
        fn floor_key(&self, key: &i64) -> Option<i64> {
            self.0.lock().unwrap().range(..=*key).next_back().map(|(k, _)| *k)
        }
        fn scan_range(&self, range: std::ops::RangeInclusive<i64>, f: &mut dyn FnMut(i64)) {
            for (&k, _) in self.0.lock().unwrap().range(range) {
                f(k);
            }
        }
    }

    #[test]
    fn prefill_reaches_target() {
        let spec =
            TrialSpec::new(Mix::C70_I20_R10, 300, 2, Duration::from_millis(10));
        let map = RefMap(Mutex::new(BTreeMap::new()));
        prefill(&map, &spec);
        assert_eq!(map.0.lock().unwrap().len(), spec.prefill_target());
    }

    #[test]
    fn prefill_read_only_mix_uses_inserts() {
        let spec = TrialSpec::new(Mix::C100, 100, 1, Duration::from_millis(10));
        let map = RefMap(Mutex::new(BTreeMap::new()));
        prefill(&map, &spec);
        assert_eq!(map.0.lock().unwrap().len(), 50);
    }

    #[test]
    fn trial_counts_ops() {
        let spec = TrialSpec::new(Mix::C50_I25_R25, 200, 2, Duration::from_millis(50));
        let map = RefMap(Mutex::new(BTreeMap::new()));
        prefill(&map, &spec);
        let res = run_trial(&map, &spec);
        assert!(res.total_ops > 0);
        assert_eq!(res.per_thread.len(), 2);
        assert_eq!(res.per_thread.iter().sum::<u64>(), res.total_ops);
        assert!(res.mops() > 0.0);
        // Keys stayed in range.
        let g = map.0.lock().unwrap();
        assert!(g.keys().all(|&k| (0..200).contains(&k)));
    }

    #[test]
    fn experiment_repetitions() {
        let spec = TrialSpec::new(Mix::C100, 128, 1, Duration::from_millis(20));
        let reps = run_experiment(|| RefMap(Mutex::new(BTreeMap::new())), &spec, 2);
        assert_eq!(reps.len(), 2);
        assert!(reps.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn experiment_full_carries_trial_details() {
        let spec = TrialSpec::new(Mix::C50_I25_R25, 128, 2, Duration::from_millis(20));
        let trials = run_experiment_full(|| RefMap(Mutex::new(BTreeMap::new())), &spec, 2);
        assert_eq!(trials.len(), 2);
        for t in &trials {
            assert!(t.total_ops > 0);
            assert_eq!(t.per_thread.len(), 2);
            assert!(t.imbalance() >= 1.0);
            // Without the metrics feature the snapshot must stay all-zero;
            // with it, the RefMap records nothing either way.
        }
    }

    #[test]
    fn ordered_trial_runs_scans() {
        let mix = Mix::with_range(40, 20, 10, 30, 16);
        let spec = TrialSpec::new(mix, 200, 2, Duration::from_millis(40));
        let map = RefMap(Mutex::new(BTreeMap::new()));
        prefill(&map, &spec);
        let res = run_trial_ordered(&map, &spec);
        assert!(res.total_ops > 0);
        assert_eq!(res.per_thread.len(), 2);
    }

    /// Satellite (PR 6): range scans are first-class in the per-op-kind
    /// accounting and in the per-thread totals the imbalance ratio reads —
    /// not just point ops.
    #[test]
    fn scans_counted_in_per_kind_and_imbalance_accounting() {
        let mix = Mix::with_range(40, 20, 10, 30, 8);
        let spec = TrialSpec::new(mix, 200, 2, Duration::from_millis(40));
        let map = RefMap(Mutex::new(BTreeMap::new()));
        prefill(&map, &spec);
        let res = run_trial_ordered(&map, &spec);
        assert!(res.ops_of(OpKind::RangeScan { len: 8 }) > 0, "30% scan share must roll scans");
        assert!(res.ops_of(OpKind::Contains) > 0);
        assert_eq!(
            res.ops_by_kind.iter().sum::<u64>(),
            res.total_ops,
            "every drawn op (scans included) lands in exactly one kind bucket"
        );
        assert_eq!(res.per_thread.iter().sum::<u64>(), res.total_ops);
        assert!(res.imbalance().is_finite(), "both threads ran ops, scans included");

        // A scan-only mix: the imbalance ratio is computed entirely from
        // range-scan operations.
        let mix = Mix::with_range(0, 0, 0, 100, 4);
        let spec = TrialSpec::new(mix, 100, 2, Duration::from_millis(20));
        let res = run_trial_ordered(&map, &spec);
        assert_eq!(res.ops_of(OpKind::RangeScan { len: 4 }), res.total_ops);
        assert!(res.imbalance() >= 1.0 && res.imbalance().is_finite());
    }

    /// Tentpole wiring (PR 6): sampled trials deliver per-op-kind latency
    /// histograms; unsampled trials carry none.
    #[test]
    fn latency_sampling_per_kind() {
        let spec = TrialSpec::new(Mix::C50_I25_R25, 200, 2, Duration::from_millis(30))
            .with_latency();
        let map = RefMap(Mutex::new(BTreeMap::new()));
        prefill(&map, &spec);
        let res = run_trial(&map, &spec);
        let lat = res.latency.as_ref().expect("sampled trial must carry latency");
        let sampled: u64 = lat.iter().map(|(_, h)| h.count()).sum();
        assert_eq!(sampled, res.total_ops, "every op contributes one latency sample");
        for kind in [OpKind::Contains, OpKind::Insert, OpKind::Remove] {
            assert_eq!(lat.kind(kind).count(), res.ops_of(kind), "kind {kind:?}");
            assert!(lat.kind(kind).quantile(0.999).is_some());
        }
        assert_eq!(lat.kind(OpKind::RangeScan { len: 1 }).count(), 0, "no scans in this mix");

        let unsampled = run_trial(&map, &TrialSpec { sample_latency: false, ..spec });
        assert!(unsampled.latency.is_none());
    }

    #[test]
    #[should_panic(expected = "run_trial_ordered")]
    fn classic_runner_rejects_scan_mix() {
        let mix = Mix::with_range(90, 0, 0, 10, 8);
        let spec = TrialSpec::new(mix, 64, 1, Duration::from_millis(5));
        let map = RefMap(Mutex::new(BTreeMap::new()));
        let _ = run_trial(&map, &spec);
    }

    #[test]
    fn imbalance_ratio() {
        let t = |per_thread: Vec<u64>| TrialResult {
            total_ops: per_thread.iter().sum(),
            per_thread,
            ops_by_kind: [0; OpKind::COUNT],
            elapsed: Duration::from_secs(1),
            events: Snapshot::zero(),
            latency: None,
        };
        assert_eq!(t(vec![100, 100]).imbalance(), 1.0);
        assert_eq!(t(vec![300, 100]).imbalance(), 3.0);
        assert_eq!(t(vec![100, 0]).imbalance(), f64::INFINITY);
        assert_eq!(t(vec![0, 0]).imbalance(), 1.0, "idle trial is not imbalanced");
        assert_eq!(t(vec![]).imbalance(), 1.0);
    }
}
