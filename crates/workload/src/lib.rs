//! Benchmark workload substrate reproducing the paper's evaluation
//! methodology (§6): operation mixes, uniform (or Zipf) key draws, prefill
//! to the steady-state size with the trial's own update ratio, timed
//! multi-threaded trials, and the paper's table layout for reporting.
//!
//! ```
//! use lo_workload::{Mix, TrialSpec, prefill, run_trial};
//! use std::time::Duration;
//!
//! let map = lo_core::LoAvlMap::new();
//! let spec = TrialSpec::new(Mix::C70_I20_R10, 1_000, 2, Duration::from_millis(20));
//! prefill(&map, &spec);
//! let result = run_trial(&map, &spec);
//! assert!(result.total_ops > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod chaos_store;
pub mod clients;
pub mod history;
pub mod latency;
pub mod report;
pub mod rng;
pub mod runner;
pub mod spec;
pub mod stats;

pub use chaos::{
    run_chaos, run_chaos_recovery, ChaosReport, ChaosSpec, RecoveryRoundReport, RecoverySpec,
};
pub use chaos_store::{run_chaos_store, ChaosStore, StoreChaosReport, StoreChaosSpec};
pub use clients::{run_clients, ClientsReport, ClientsSpec};
pub use history::HistoryRecorder;
pub use latency::{fmt_ns, LatencyHistogram};
pub use report::{MetricsEntry, MetricsPanel, Panel};
pub use rng::{SplitMix64, XorShift64Star, Zipf};
pub use runner::{
    prefill, run_experiment, run_experiment_full, run_experiment_full_ordered,
    run_experiment_ordered, run_trial, run_trial_ordered, OpLatency, TrialResult,
};
pub use spec::{KeyDist, Mix, OpKind, TrialSpec};
pub use stats::Summary;

/// Event-counter substrate re-export: gives harness binaries access to
/// [`metrics::Event`]/[`metrics::Snapshot`] without a direct dependency.
/// Counters are live only in `--features metrics` builds.
pub use lo_metrics as metrics;
