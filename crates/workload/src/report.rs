//! Fixed-width table / CSV output for the reproduction binaries.
//!
//! Each panel of the paper's Tables 1 and 2 is throughput (Mops/s) vs.
//! thread count for one (mix, key-range) pair; a [`Panel`] renders exactly
//! that: one row per thread count, one column per algorithm.

use crate::stats::Summary;
use lo_metrics::Snapshot;

/// Quotes a CSV field when needed (RFC 4180): fields containing commas,
/// double quotes or newlines are wrapped in quotes with embedded quotes
/// doubled. Panel titles like `70c-20i-10r, key range 2e5` contain commas,
/// so emitting them bare would shift every subsequent column.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One table panel: algorithms × thread counts.
pub struct Panel {
    /// Title, e.g. `70c-20i-10r, key range 2e5`.
    pub title: String,
    /// Column headers (algorithm labels).
    pub algorithms: Vec<String>,
    /// Row labels (thread counts).
    pub threads: Vec<usize>,
    /// `cells[row][col]` = throughput summary for (threads[row], algorithms[col]).
    pub cells: Vec<Vec<Summary>>,
}

impl Panel {
    /// Creates an empty panel; fill with [`Panel::set`].
    pub fn new(title: impl Into<String>, algorithms: Vec<String>, threads: Vec<usize>) -> Self {
        let cells =
            vec![vec![Summary { mean: 0.0, stddev: 0.0, n: 0 }; algorithms.len()]; threads.len()];
        Self { title: title.into(), algorithms, threads, cells }
    }

    /// Stores a measurement.
    pub fn set(&mut self, thread_row: usize, algo_col: usize, s: Summary) {
        self.cells[thread_row][algo_col] = s;
    }

    /// Renders a human-readable fixed-width table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        out.push_str(&format!("{:>8}", "threads"));
        for a in &self.algorithms {
            out.push_str(&format!("{a:>16}"));
        }
        out.push('\n');
        for (r, t) in self.threads.iter().enumerate() {
            out.push_str(&format!("{t:>8}"));
            for c in 0..self.algorithms.len() {
                let s = self.cells[r][c];
                if s.n == 0 {
                    out.push_str(&format!("{:>16}", "-"));
                } else {
                    out.push_str(&format!("{:>16}", format!("{s}")));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders machine-readable CSV (`title,threads,algorithm,mean,stddev,n`).
    /// Free-text fields (panel title, algorithm label) are RFC 4180-quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("panel,threads,algorithm,mops_mean,mops_stddev,reps\n");
        for (r, t) in self.threads.iter().enumerate() {
            for (c, a) in self.algorithms.iter().enumerate() {
                let s = self.cells[r][c];
                out.push_str(&format!(
                    "{},{},{},{:.6},{:.6},{}\n",
                    csv_field(&self.title),
                    t,
                    csv_field(a),
                    s.mean,
                    s.stddev,
                    s.n
                ));
            }
        }
        out
    }
}

/// Event telemetry for one (algorithm, thread-count) cell: the counter
/// snapshot summed over every measured repetition, plus the matching op
/// total so per-op rates are well-defined.
#[derive(Clone, Debug)]
pub struct MetricsEntry {
    /// Algorithm label (matches the throughput panel's column header).
    pub algorithm: String,
    /// Thread count of the trials aggregated here.
    pub threads: usize,
    /// Operations completed across the aggregated repetitions.
    pub total_ops: u64,
    /// Event counters summed across the aggregated repetitions.
    pub events: Snapshot,
    /// Log₂ histograms captured for this cell (e.g. the combiner
    /// batch-size distribution, [`lo_metrics::Event::StoreBatchLen`]):
    /// `(event, buckets)` pairs from [`lo_metrics::log2_hist`]. Usually
    /// empty; all-zero histograms are skipped by the renderers.
    pub hists: Vec<(lo_metrics::Event, [u64; lo_metrics::LOG2_BUCKETS])>,
}

/// Companion to [`Panel`]: per-cell event telemetry for one workload panel.
/// Renders as text (nonzero events per op), CSV and JSON.
pub struct MetricsPanel {
    /// Title; mirrors the throughput panel it accompanies.
    pub title: String,
    /// One entry per measured (algorithm, thread-count) cell.
    pub entries: Vec<MetricsEntry>,
}

impl MetricsPanel {
    /// Creates an empty telemetry panel.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), entries: Vec::new() }
    }

    /// Appends one cell's aggregated telemetry.
    pub fn push(&mut self, entry: MetricsEntry) {
        self.entries.push(entry);
    }

    /// Human-readable rendering: for each cell, every *nonzero* counter as
    /// an events-per-op rate (raw count in parentheses).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — event telemetry\n", self.title));
        let dead = |e: &MetricsEntry| {
            e.events.is_zero() && e.hists.iter().all(|(_, h)| h.iter().all(|&c| c == 0))
        };
        if self.entries.iter().all(dead) {
            out.push_str(
                "(all counters zero — build with `--features metrics` to record events)\n",
            );
            return out;
        }
        for e in &self.entries {
            out.push_str(&format!(
                "{} @ {} threads ({} ops):\n",
                e.algorithm, e.threads, e.total_ops
            ));
            for (ev, n) in e.events.nonzero() {
                out.push_str(&format!(
                    "  {:<24} {:>12.6} /op  ({n})\n",
                    ev.name(),
                    e.events.per_op(ev, e.total_ops)
                ));
            }
            for (ev, hist) in &e.hists {
                let total: u64 = hist.iter().sum();
                if total == 0 {
                    continue;
                }
                out.push_str(&format!("  log2({}) — {total} samples:\n", ev.name()));
                let peak = *hist.iter().max().expect("histogram has buckets");
                for (b, &count) in hist.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    // 24-char bar scaled to the modal bucket.
                    let bar = "#".repeat(((count * 24).div_ceil(peak)) as usize);
                    out.push_str(&format!(
                        "    [2^{b:<2}..2^{:<2}) {count:>10}  {bar}\n",
                        b + 1
                    ));
                }
            }
        }
        out
    }

    /// Machine-readable CSV: one row per (cell, event), nonzero events only
    /// (`panel,threads,algorithm,event,count,per_op`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("panel,threads,algorithm,event,count,per_op\n");
        for e in &self.entries {
            for (ev, n) in e.events.nonzero() {
                out.push_str(&format!(
                    "{},{},{},{},{},{:.9}\n",
                    csv_field(&self.title),
                    e.threads,
                    csv_field(&e.algorithm),
                    ev.name(),
                    n,
                    e.events.per_op(ev, e.total_ops)
                ));
            }
        }
        out
    }

    /// Machine-readable JSON (hand-rolled; counters and labels only contain
    /// characters that need no escaping beyond quotes/backslashes).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        out.push_str(&format!("{{\"panel\":\"{}\",\"cells\":[", esc(&self.title)));
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"algorithm\":\"{}\",\"threads\":{},\"total_ops\":{},\"events\":{{",
                esc(&e.algorithm),
                e.threads,
                e.total_ops
            ));
            for (j, (ev, n)) in e.events.nonzero().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{n}", ev.name()));
            }
            out.push('}');
            let live: Vec<_> =
                e.hists.iter().filter(|(_, h)| h.iter().any(|&c| c > 0)).collect();
            if !live.is_empty() {
                out.push_str(",\"hists\":{");
                for (j, (ev, hist)) in live.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let buckets: Vec<String> =
                        hist.iter().map(u64::to_string).collect();
                    out.push_str(&format!(
                        "\"{}\":[{}]",
                        ev.name(),
                        buckets.join(",")
                    ));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_panel() -> Panel {
        let mut p = Panel::new(
            "test-panel",
            vec!["lo-avl".into(), "bcco".into()],
            vec![1, 2, 4],
        );
        p.set(0, 0, Summary { mean: 1.5, stddev: 0.1, n: 3 });
        p.set(2, 1, Summary { mean: 4.25, stddev: 0.2, n: 3 });
        p
    }

    #[test]
    fn render_contains_all_rows() {
        let text = sample_panel().render();
        assert!(text.contains("test-panel"));
        assert!(text.contains("lo-avl"));
        assert!(text.contains("1.500"));
        assert!(text.contains("4.250"));
        // Unfilled cells render as '-'.
        assert!(text.contains('-'));
        assert_eq!(text.lines().count(), 2 + 3);
    }

    #[test]
    fn csv_shape() {
        let csv = sample_panel().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 3 * 2);
        assert!(lines[0].starts_with("panel,threads"));
        assert!(lines[1].starts_with("test-panel,1,lo-avl,1.5"));
    }

    /// Regression test: real panel titles contain commas
    /// (`70c-20i-10r, key range 2e5`), which used to be emitted bare and
    /// shifted every subsequent CSV column.
    #[test]
    fn csv_quotes_comma_titles() {
        let mut p = Panel::new(
            "70c-20i-10r, key range 2e5",
            vec!["lo-avl".into()],
            vec![1],
        );
        p.set(0, 0, Summary { mean: 1.0, stddev: 0.0, n: 1 });
        let csv = p.to_csv();
        let row = csv.lines().nth(1).expect("one data row");
        assert!(
            row.starts_with("\"70c-20i-10r, key range 2e5\",1,lo-avl,"),
            "comma title must be quoted: {row}"
        );
        // Every data row still parses to the header's column count when
        // splitting outside quotes.
        let header_cols = csv.lines().next().unwrap().split(',').count();
        let mut cols = 0;
        let mut in_quotes = false;
        for ch in row.chars() {
            match ch {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => cols += 1,
                _ => {}
            }
        }
        assert_eq!(cols + 1, header_cols, "quoted row has wrong column count");
    }

    #[test]
    fn csv_field_escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    fn sample_metrics_panel(events: Snapshot) -> MetricsPanel {
        let mut mp = MetricsPanel::new("mix, range 1e3");
        mp.push(MetricsEntry {
            algorithm: "lo-avl".into(),
            threads: 4,
            total_ops: 1_000,
            events,
            hists: Vec::new(),
        });
        mp
    }

    #[test]
    fn metrics_panel_renders_log2_histograms() {
        let mut hist = [0u64; lo_metrics::LOG2_BUCKETS];
        hist[0] = 2;
        hist[3] = 7;
        let mut mp = MetricsPanel::new("store smoke");
        mp.push(MetricsEntry {
            algorithm: "lo-store-batched".into(),
            threads: 4,
            total_ops: 100,
            events: Snapshot::zero(),
            hists: vec![
                (lo_metrics::Event::StoreBatchLen, hist),
                (lo_metrics::Event::Rotation, [0; lo_metrics::LOG2_BUCKETS]),
            ],
        });
        let text = mp.render();
        let json = mp.to_json();
        // JSON carries the live histogram and skips the dead one.
        assert!(json.contains("\"hists\":{\"store-batch-len\":[2,0,0,7,0"));
        assert!(!json.contains("rotation"));
        // A live histogram counts as data: no all-zero hint, full section.
        assert!(!text.contains("--features metrics"));
        assert!(text.contains("log2(store-batch-len) — 9 samples"));
        assert!(text.contains("[2^0 ..2^1 )"));
        assert!(text.contains("[2^3 ..2^4 )"));
        // The modal bucket gets the full-width bar.
        assert!(text.contains(&"#".repeat(24)));
    }

    #[test]
    fn metrics_panel_zero_renders_hint() {
        let text = sample_metrics_panel(Snapshot::zero()).render();
        assert!(text.contains("event telemetry"));
        assert!(text.contains("--features metrics"));
        // No data rows in CSV beyond the header; JSON still well-formed.
        let mp = sample_metrics_panel(Snapshot::zero());
        assert_eq!(mp.to_csv().lines().count(), 1);
        assert!(mp.to_json().ends_with("\"events\":{}}]}"));
    }

    #[test]
    fn metrics_panel_formats_nonzero_events() {
        // Nonzero counts only exist when the feature is on; record some and
        // take a snapshot, otherwise the all-zero rendering path is covered.
        let mut events = Snapshot::zero();
        if lo_metrics::ENABLED {
            lo_metrics::add(lo_metrics::Event::Rotation, 500);
            events = Snapshot::take();
        }
        let mp = sample_metrics_panel(events);
        let text = mp.render();
        let csv = mp.to_csv();
        let json = mp.to_json();
        assert!(csv.starts_with("panel,threads,algorithm,event,count,per_op\n"));
        assert!(json.starts_with("{\"panel\":\"mix, range 1e3\""));
        if lo_metrics::ENABLED {
            assert!(text.contains("rotation"));
            assert!(csv.contains("\"mix, range 1e3\",4,lo-avl,rotation,"));
            assert!(json.contains("\"rotation\":"));
        }
    }
}
