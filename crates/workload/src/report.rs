//! Fixed-width table / CSV output for the reproduction binaries.
//!
//! Each panel of the paper's Tables 1 and 2 is throughput (Mops/s) vs.
//! thread count for one (mix, key-range) pair; a [`Panel`] renders exactly
//! that: one row per thread count, one column per algorithm.

use crate::stats::Summary;

/// One table panel: algorithms × thread counts.
pub struct Panel {
    /// Title, e.g. `70c-20i-10r, key range 2e5`.
    pub title: String,
    /// Column headers (algorithm labels).
    pub algorithms: Vec<String>,
    /// Row labels (thread counts).
    pub threads: Vec<usize>,
    /// `cells[row][col]` = throughput summary for (threads[row], algorithms[col]).
    pub cells: Vec<Vec<Summary>>,
}

impl Panel {
    /// Creates an empty panel; fill with [`Panel::set`].
    pub fn new(title: impl Into<String>, algorithms: Vec<String>, threads: Vec<usize>) -> Self {
        let cells =
            vec![vec![Summary { mean: 0.0, stddev: 0.0, n: 0 }; algorithms.len()]; threads.len()];
        Self { title: title.into(), algorithms, threads, cells }
    }

    /// Stores a measurement.
    pub fn set(&mut self, thread_row: usize, algo_col: usize, s: Summary) {
        self.cells[thread_row][algo_col] = s;
    }

    /// Renders a human-readable fixed-width table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        out.push_str(&format!("{:>8}", "threads"));
        for a in &self.algorithms {
            out.push_str(&format!("{a:>16}"));
        }
        out.push('\n');
        for (r, t) in self.threads.iter().enumerate() {
            out.push_str(&format!("{t:>8}"));
            for c in 0..self.algorithms.len() {
                let s = self.cells[r][c];
                if s.n == 0 {
                    out.push_str(&format!("{:>16}", "-"));
                } else {
                    out.push_str(&format!("{:>16}", format!("{s}")));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders machine-readable CSV (`title,threads,algorithm,mean,stddev,n`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("panel,threads,algorithm,mops_mean,mops_stddev,reps\n");
        for (r, t) in self.threads.iter().enumerate() {
            for (c, a) in self.algorithms.iter().enumerate() {
                let s = self.cells[r][c];
                out.push_str(&format!(
                    "{},{},{},{:.6},{:.6},{}\n",
                    self.title, t, a, s.mean, s.stddev, s.n
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_panel() -> Panel {
        let mut p = Panel::new(
            "test-panel",
            vec!["lo-avl".into(), "bcco".into()],
            vec![1, 2, 4],
        );
        p.set(0, 0, Summary { mean: 1.5, stddev: 0.1, n: 3 });
        p.set(2, 1, Summary { mean: 4.25, stddev: 0.2, n: 3 });
        p
    }

    #[test]
    fn render_contains_all_rows() {
        let text = sample_panel().render();
        assert!(text.contains("test-panel"));
        assert!(text.contains("lo-avl"));
        assert!(text.contains("1.500"));
        assert!(text.contains("4.250"));
        // Unfilled cells render as '-'.
        assert!(text.contains('-'));
        assert_eq!(text.lines().count(), 2 + 3);
    }

    #[test]
    fn csv_shape() {
        let csv = sample_panel().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 3 * 2);
        assert!(lines[0].starts_with("panel,threads"));
        assert!(lines[1].starts_with("test-panel,1,lo-avl,1.5"));
    }
}
