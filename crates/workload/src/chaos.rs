//! Seeded chaos harness: mixed workloads under an active fault plan.
//!
//! [`run_chaos`] drives a mixed insert/remove/contains workload against any
//! [`FallibleMap`] while a [`FaultPlan`] is installed, catching every
//! injected writer death and classifying it through the panic effect
//! markers (`[lo-fault:op-linearized]` / `[lo-fault:op-not-linearized]`).
//! After the storm it verifies the survivors' world:
//!
//! * the full quiescent invariant check (poison-aware: a poisoned tree is
//!   validated in degraded mode — ordering-chain invariants still hold);
//! * read coherence: `contains` agrees with the ordered key snapshot for
//!   every key in the universe, poisoned or not;
//! * scan liveness: streaming range scans (enabled via
//!   [`ChaosSpec::scan_pct`]) complete mid-storm and at quiescence even on
//!   a poisoned tree, obey the cursor contract (strict ascent, window
//!   bounds), and — when recording — pass the scan-coherence checker
//!   ([`lo_check::scan`]) against the operation history;
//! * writer rejection: a poisoned tree refuses `try_insert`/`try_remove`
//!   with [`TreeError::Poisoned`];
//! * optionally, linearizability of the recorded history via the
//!   exhaustive WGL checker ([`lo_check::lin`]) — interrupted operations
//!   count as completed iff they passed their linearization point.
//!
//! Fault injection only happens in builds where `lo-core` has its
//! `failpoints` feature on; under a default build the harness still runs
//! the workload and the checks, it just observes zero fired faults.
//! Everything is deterministic from [`ChaosSpec::seed`] (modulo OS
//! scheduling, which picks *which thread* hits an occurrence, never whether
//! that occurrence fires).

// The harness's history/scan logs are guarded by plain std mutexes, not
// tree-protocol locks (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lo_api::{CheckInvariants, FallibleMap, OrderedRead, QuiescentOrdered, TreeError};
use lo_check::fail::{
    activate, effect_in_message, panic_message, take_injected_panic, FailPoint, FaultPlan,
};
use lo_check::lin::{is_linearizable, CompletedOp, LinOp, Recorder};
use lo_check::scan::{check_scan_coherence, ScanObservation};

use crate::rng::{SplitMix64, XorShift64Star};

/// Workload shape for a chaos run. All fields are public; [`ChaosSpec::new`]
/// fills in defaults sized for a fast, deterministic test.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Worker threads.
    pub threads: usize,
    /// Key universe `0..keys` (at most 64: the linearizability checker
    /// models set state as a 64-bit mask).
    pub keys: u64,
    /// Operations attempted per thread (40% insert / 30% remove, with the
    /// rest split between `contains` and range scans per
    /// [`ChaosSpec::scan_pct`]).
    pub ops_per_thread: usize,
    /// Percentage of operations that are range scans (carved out of the
    /// `contains` share; at most 30). Scans walk an 8-key window from the
    /// drawn key through the lock-free cursor, are checked inline for
    /// strict ascent and window bounds, and — when recording — are
    /// verified for scan coherence against the history afterwards.
    /// Defaults to 0, which leaves the classic op stream byte-identical.
    pub scan_pct: u32,
    /// Seed for the per-thread operation streams (independent of the
    /// [`FaultPlan`] seed).
    pub seed: u64,
    /// Bitmask of keys present before the run starts (prefilled with the
    /// plan *inactive*, so prefill never faults).
    pub initial: u64,
    /// Record the history and run the exhaustive WGL checker afterwards.
    /// Requires `threads * ops_per_thread <= 28` (the checker is
    /// exponential in history length).
    pub check_linearizability: bool,
    /// Suppress the default panic-hook backtrace for *injected* panics
    /// (anything carrying an effect marker); genuine panics still print.
    pub quiet: bool,
}

impl ChaosSpec {
    /// Defaults: 4 threads, 16 keys, 200 ops/thread, no recording, quiet.
    pub fn new(seed: u64) -> Self {
        ChaosSpec {
            threads: 4,
            keys: 16,
            ops_per_thread: 200,
            scan_pct: 0,
            seed,
            initial: 0,
            check_linearizability: false,
            quiet: true,
        }
    }
}

/// What a chaos run did and observed. Counters are exact (every attempted
/// operation lands in exactly one of `ops_completed`, `injected_panics`,
/// `aborted_ops`, `rejected_writes`, `alloc_failures`).
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Operations that ran to completion (including failed inserts of
    /// present keys etc. — "completed" means returned, not "succeeded").
    pub ops_completed: u64,
    /// Writer deaths injected by an armed failpoint.
    pub injected_panics: u64,
    /// Writers that died on a *consequence* of a fault rather than an
    /// injection: poisoned-tree aborts at restart edges and restart-storm
    /// budget trips.
    pub aborted_ops: u64,
    /// Writes rejected up front with [`TreeError::Poisoned`].
    pub rejected_writes: u64,
    /// Writes that observed [`TreeError::AllocFailed`].
    pub alloc_failures: u64,
    /// Range scans that ran to completion (a subset of `ops_completed`).
    pub scans_completed: u64,
    /// Keys yielded across all completed scans.
    pub scan_keys_yielded: u64,
    /// Per-point injected-fault counts, indexed like [`FailPoint::ALL`].
    pub fired: [u64; FailPoint::COUNT],
    /// Poison state of the map after the run.
    pub poisoned: Option<TreeError>,
    /// Recorded history length (0 unless
    /// [`ChaosSpec::check_linearizability`]).
    pub history_len: usize,
    /// Flight-recorder post-mortem dump (Chrome Trace Event JSON of every
    /// thread's ring), captured when the run left the map poisoned. `None`
    /// when the map survived, when a dump for this poisoning was already
    /// taken, or in builds without the `trace` feature.
    pub post_mortem: Option<String>,
}

impl ChaosReport {
    /// Total injected faults across all points (delays and forced
    /// failures included, not just panics).
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

/// Runs the chaos workload described by `spec` against `map` under `plan`,
/// then runs the post-mortem checks (see module docs). Panics on any
/// violated check; returns the run's accounting otherwise.
pub fn run_chaos<M>(map: &M, spec: &ChaosSpec, plan: FaultPlan) -> ChaosReport
where
    M: FallibleMap<i64, u64> + OrderedRead<i64> + QuiescentOrdered<i64> + CheckInvariants + Sync,
{
    assert!(spec.threads > 0 && spec.ops_per_thread > 0, "empty chaos spec");
    assert!(spec.keys > 0 && spec.keys <= 64, "key universe must be 1..=64");
    assert!(spec.scan_pct <= 30, "scans are carved out of the 30% contains share");
    if spec.check_linearizability {
        assert!(
            spec.threads * spec.ops_per_thread <= 28,
            "linearizability checking needs threads * ops_per_thread <= 28"
        );
    }

    // Prefill before arming the plan: the initial state never faults.
    for k in 0..spec.keys {
        if spec.initial & (1 << k) != 0 {
            assert_eq!(map.try_insert(k as i64, k), Ok(true), "prefill of fresh key");
        }
    }

    let quiet = spec.quiet.then(silence_injected_panics);
    let session = activate(plan);
    // Re-arm the flight-recorder post-mortem latch: if this round's storm
    // poisons the map, exactly one dump becomes available below. Chaos
    // runs are serialized by the plan session, so the global latch is ours.
    lo_trace::flight::arm_post_mortem();

    let recorder = spec.check_linearizability.then(Recorder::new);
    let history: Mutex<Vec<CompletedOp>> = Mutex::new(Vec::new());
    let scan_obs: Mutex<Vec<ScanObservation>> = Mutex::new(Vec::new());
    let ops_completed = AtomicU64::new(0);
    let injected_panics = AtomicU64::new(0);
    let aborted_ops = AtomicU64::new(0);
    let rejected_writes = AtomicU64::new(0);
    let alloc_failures = AtomicU64::new(0);
    let scans_completed = AtomicU64::new(0);
    let scan_keys_yielded = AtomicU64::new(0);

    let mut seeder = SplitMix64::new(spec.seed);
    let thread_seeds: Vec<u64> = (0..spec.threads).map(|_| seeder.next_u64()).collect();

    std::thread::scope(|s| {
        for &tseed in &thread_seeds {
            let (recorder, history) = (&recorder, &history);
            let (ops_completed, injected_panics) = (&ops_completed, &injected_panics);
            let (aborted_ops, rejected_writes) = (&aborted_ops, &rejected_writes);
            let alloc_failures = &alloc_failures;
            let (scan_obs, scans_completed) = (&scan_obs, &scans_completed);
            let scan_keys_yielded = &scan_keys_yielded;
            s.spawn(move || {
                let mut rng = XorShift64Star::new(tseed);
                for _ in 0..spec.ops_per_thread {
                    let key = rng.next_below(spec.keys) as i64;
                    let roll = rng.next_below(100);
                    if spec.scan_pct > 0 && roll >= 100 - u64::from(spec.scan_pct) {
                        // Range scan over an 8-key window from the drawn
                        // key. Lock-free read path: it must complete (and
                        // obey the cursor contract) even mid-storm on a
                        // poisoned tree.
                        let hi = (key + 7).min(spec.keys as i64 - 1);
                        let invoke = recorder.as_ref().map(Recorder::stamp);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let mut ks = Vec::new();
                            map.scan_range(key..=hi, &mut |k| ks.push(k));
                            ks
                        }));
                        let response = recorder.as_ref().map(Recorder::stamp);
                        match outcome {
                            Ok(ks) => {
                                assert!(
                                    ks.windows(2).all(|w| w[0] < w[1]),
                                    "chaos scan yields not strictly ascending: {ks:?}"
                                );
                                assert!(
                                    ks.iter().all(|&k| (key..=hi).contains(&k)),
                                    "chaos scan strayed outside [{key}, {hi}]: {ks:?}"
                                );
                                ops_completed.fetch_add(1, Ordering::Relaxed);
                                scans_completed.fetch_add(1, Ordering::Relaxed);
                                scan_keys_yielded.fetch_add(ks.len() as u64, Ordering::Relaxed);
                                if let (Some(invoke), Some(response)) = (invoke, response) {
                                    scan_obs.lock().expect("scan mutex").push(ScanObservation {
                                        lo: key as u8,
                                        hi: hi as u8,
                                        keys: ks.iter().map(|&k| k as u8).collect(),
                                        invoke,
                                        response,
                                    });
                                }
                            }
                            Err(payload) => {
                                // The scan path takes no locks and hosts no
                                // failpoints; treat anything unmarked as a
                                // genuine bug, like the write path does.
                                let injected = take_injected_panic().is_some();
                                let effect =
                                    panic_message(payload.as_ref()).and_then(effect_in_message);
                                if !injected && effect.is_none() {
                                    resume_unwind(payload);
                                }
                                let ctr = if injected { injected_panics } else { aborted_ops };
                                ctr.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        continue;
                    }
                    let (op, val) = if roll < 40 {
                        (LinOp::Insert, rng.next_u64())
                    } else if roll < 70 {
                        (LinOp::Remove, 0)
                    } else {
                        (LinOp::Contains, 0)
                    };
                    let invoke = recorder.as_ref().map(Recorder::stamp);
                    let outcome = catch_unwind(AssertUnwindSafe(|| match op {
                        LinOp::Insert => map.try_insert(key, val),
                        LinOp::Remove => map.try_remove(&key),
                        LinOp::Contains => Ok(map.contains(&key)),
                    }));
                    let response = recorder.as_ref().map(Recorder::stamp);
                    let recorded = match outcome {
                        Ok(Ok(result)) => {
                            ops_completed.fetch_add(1, Ordering::Relaxed);
                            Some(result)
                        }
                        Ok(Err(TreeError::Poisoned(_))) => {
                            rejected_writes.fetch_add(1, Ordering::Relaxed);
                            None // rejected up front: no effect
                        }
                        Ok(Err(TreeError::AllocFailed)) => {
                            alloc_failures.fetch_add(1, Ordering::Relaxed);
                            None // allocation failure: no effect
                        }
                        Err(payload) => {
                            let injected = take_injected_panic().is_some();
                            let effect =
                                panic_message(payload.as_ref()).and_then(effect_in_message);
                            if !injected && effect.is_none() {
                                // Not fault-related: a genuine bug surfaced
                                // under chaos. Re-raise it.
                                resume_unwind(payload);
                            }
                            let ctr = if injected { injected_panics } else { aborted_ops };
                            ctr.fetch_add(1, Ordering::Relaxed);
                            // A writer killed *after* its linearization
                            // point completed an effective insert/remove;
                            // one killed before it had no effect.
                            (effect == Some(true)).then_some(true)
                        }
                    };
                    if let (Some(result), Some(invoke), Some(response)) =
                        (recorded, invoke, response)
                    {
                        history.lock().expect("history mutex").push(CompletedOp {
                            op,
                            key: key as u8,
                            result,
                            invoke,
                            response,
                        });
                    }
                }
            });
        }
    });

    let fired = session.fired_counts();
    drop(session);
    if let Some(restore) = quiet {
        restore();
    }

    // ---- post-mortem checks (quiescent) ----
    let poisoned = map.poisoned();

    // 1. Full invariant sweep; degraded automatically when poisoned.
    map.check_invariants();

    // 2. Read coherence: the lock-free membership test agrees with the
    //    ordering-layout snapshot for the whole key universe.
    let snapshot = map.keys_in_order();
    for k in 0..spec.keys as i64 {
        assert_eq!(
            map.contains(&k),
            snapshot.contains(&k),
            "contains({k}) disagrees with the ordered snapshot (poisoned: {poisoned:?})"
        );
    }

    // 2b. Streaming scans stay live in degraded mode and, at quiescence,
    //     agree exactly with the snapshot (poisoned or not).
    let mut scanned = Vec::new();
    map.scan_range(0..=spec.keys as i64 - 1, &mut |k| scanned.push(k));
    assert_eq!(
        scanned, snapshot,
        "quiescent full-range scan disagrees with the ordered snapshot (poisoned: {poisoned:?})"
    );

    // 3. A poisoned tree must keep rejecting writers.
    if poisoned.is_some() {
        assert!(
            matches!(map.try_insert(i64::MAX, 0), Err(TreeError::Poisoned(_))),
            "poisoned tree accepted an insert"
        );
        assert!(
            matches!(map.try_remove(&0), Err(TreeError::Poisoned(_))),
            "poisoned tree accepted a remove"
        );
    }

    // 4. Linearizability of the recorded history, and coherence of every
    //    recorded scan against it.
    let mut history = history.into_inner().expect("history mutex");
    history.sort_by_key(|c| c.invoke);
    if spec.check_linearizability {
        assert!(
            is_linearizable(&history, spec.initial),
            "chaos history (len {}) is not linearizable under seed {}",
            history.len(),
            spec.seed
        );
        let scans = scan_obs.into_inner().expect("scan mutex");
        if let Err(v) = check_scan_coherence(&history, &scans, spec.initial) {
            panic!("chaos scan incoherent under seed {}: {v}", spec.seed);
        }
    }

    // 5. Flight-recorder post-mortem: when the storm poisoned the map (and
    //    tracing is live), take the one-shot Chrome-trace dump of every
    //    thread's ring for the report.
    let post_mortem = lo_trace::flight::take_post_mortem();

    ChaosReport {
        ops_completed: ops_completed.into_inner(),
        injected_panics: injected_panics.into_inner(),
        aborted_ops: aborted_ops.into_inner(),
        rejected_writes: rejected_writes.into_inner(),
        alloc_failures: alloc_failures.into_inner(),
        scans_completed: scans_completed.into_inner(),
        scan_keys_yielded: scan_keys_yielded.into_inner(),
        fired,
        poisoned,
        history_len: history.len(),
        post_mortem,
    }
}

/// Replaces the panic hook with one that swallows injected-fault panics
/// (payloads carrying an effect marker) and forwards everything else.
/// Returns a closure that restores forwarding-to-the-previous-hook
/// behavior. Chaos runs are serialized by the plan session, so the global
/// hook swap does not race with other runs.
fn silence_injected_panics() -> impl FnOnce() {
    let prev = Arc::new(std::panic::take_hook());
    let filter_prev = Arc::clone(&prev);
    std::panic::set_hook(Box::new(move |info| {
        let marked = panic_message(info.payload()).is_some_and(|m| effect_in_message(m).is_some());
        if !marked {
            filter_prev(info);
        }
    }));
    move || {
        let _ = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| prev(info)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness must run cleanly (zero faults) with an empty plan, on
    /// any build.
    #[test]
    fn clean_run_with_empty_plan() {
        let map = lo_core::LoAvlMap::new();
        let spec = ChaosSpec { initial: 0b1010, ..ChaosSpec::new(11) };
        let report = run_chaos(&map, &spec, FaultPlan::new(11));
        assert_eq!(report.total_fired(), 0);
        assert_eq!(report.injected_panics, 0);
        assert_eq!(report.poisoned, None);
        assert_eq!(
            report.ops_completed,
            (spec.threads * spec.ops_per_thread) as u64
        );
    }

    /// Tiny recorded session through the WGL checker, no faults.
    #[test]
    fn clean_run_is_linearizable() {
        let map = lo_core::LoBstMap::new();
        let spec = ChaosSpec {
            threads: 3,
            keys: 4,
            ops_per_thread: 9,
            initial: 0b0101,
            check_linearizability: true,
            ..ChaosSpec::new(23)
        };
        let report = run_chaos(&map, &spec, FaultPlan::new(23));
        assert_eq!(report.history_len, 27);
        assert_eq!(report.poisoned, None);
    }

    /// Scans interleave with the storm and keep the cursor contract; the
    /// classic counters still balance.
    #[test]
    fn scans_run_mid_storm() {
        let map = lo_core::LoAvlMap::new();
        let spec = ChaosSpec { scan_pct: 30, initial: 0b1111_0000, ..ChaosSpec::new(7) };
        let report = run_chaos(&map, &spec, FaultPlan::new(7));
        assert!(report.scans_completed > 0, "a 30% scan share must fire");
        assert_eq!(
            report.ops_completed,
            (spec.threads * spec.ops_per_thread) as u64
        );
    }

    /// Tiny recorded session with scans: history linearizable *and* every
    /// scan coherent against it.
    #[test]
    fn recorded_scans_are_coherent() {
        let map = lo_core::LoBstMap::new();
        let spec = ChaosSpec {
            threads: 3,
            keys: 8,
            ops_per_thread: 9,
            scan_pct: 30,
            initial: 0b1101,
            check_linearizability: true,
            ..ChaosSpec::new(41)
        };
        let report = run_chaos(&map, &spec, FaultPlan::new(41));
        assert!(report.scans_completed > 0);
        assert_eq!(
            report.history_len + report.scans_completed as usize,
            spec.threads * spec.ops_per_thread
        );
    }

    #[test]
    #[should_panic(expected = "threads * ops_per_thread")]
    fn oversized_recorded_session_rejected() {
        let map = lo_core::LoAvlMap::new();
        let spec = ChaosSpec { check_linearizability: true, ..ChaosSpec::new(1) };
        run_chaos(&map, &spec, FaultPlan::new(1));
    }
}
