//! Seeded chaos harness: mixed workloads under an active fault plan.
//!
//! [`run_chaos`] drives a mixed insert/remove/contains workload against any
//! [`FallibleMap`] while a [`FaultPlan`] is installed, catching every
//! injected writer death and classifying it through the panic effect
//! markers (`[lo-fault:op-linearized]` / `[lo-fault:op-not-linearized]`).
//! After the storm it verifies the survivors' world:
//!
//! * the full quiescent invariant check (poison-aware: a poisoned tree is
//!   validated in degraded mode — ordering-chain invariants still hold);
//! * read coherence: `contains` agrees with the ordered key snapshot for
//!   every key in the universe, poisoned or not;
//! * scan liveness: streaming range scans (enabled via
//!   [`ChaosSpec::scan_pct`]) complete mid-storm and at quiescence even on
//!   a poisoned tree, obey the cursor contract (strict ascent, window
//!   bounds), and — when recording — pass the scan-coherence checker
//!   ([`lo_check::scan`]) against the operation history;
//! * writer rejection: a poisoned tree refuses `try_insert`/`try_remove`
//!   with [`TreeError::Poisoned`];
//! * optionally, linearizability of the recorded history via the
//!   exhaustive WGL checker ([`lo_check::lin`]) — interrupted operations
//!   count as completed iff they passed their linearization point.
//!
//! Fault injection only happens in builds where `lo-core` has its
//! `failpoints` feature on; under a default build the harness still runs
//! the workload and the checks, it just observes zero fired faults.
//! Everything is deterministic from [`ChaosSpec::seed`] (modulo OS
//! scheduling, which picks *which thread* hits an occurrence, never whether
//! that occurrence fires).

// The harness's history/scan logs are guarded by plain std mutexes, not
// tree-protocol locks (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lo_api::{
    CheckInvariants, FallibleMap, Health, OrderedRead, QuiescentOrdered, RecoverError,
    RecoveryReport, TreeError,
};
use lo_check::fail::{
    activate, effect_in_message, panic_message, take_injected_panic, FailPoint, FaultPlan,
};
use lo_check::lin::{is_linearizable, CompletedOp, LinOp, Recorder};
use lo_check::scan::{check_scan_coherence, ScanObservation};

use crate::rng::{SplitMix64, XorShift64Star};

/// Workload shape for a chaos run. All fields are public; [`ChaosSpec::new`]
/// fills in defaults sized for a fast, deterministic test.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Worker threads.
    pub threads: usize,
    /// Key universe `0..keys` (at most 64: the linearizability checker
    /// models set state as a 64-bit mask).
    pub keys: u64,
    /// Operations attempted per thread (40% insert / 30% remove, with the
    /// rest split between `contains` and range scans per
    /// [`ChaosSpec::scan_pct`]).
    pub ops_per_thread: usize,
    /// Percentage of operations that are range scans (carved out of the
    /// `contains` share; at most 30). Scans walk an 8-key window from the
    /// drawn key through the lock-free cursor, are checked inline for
    /// strict ascent and window bounds, and — when recording — are
    /// verified for scan coherence against the history afterwards.
    /// Defaults to 0, which leaves the classic op stream byte-identical.
    pub scan_pct: u32,
    /// Seed for the per-thread operation streams (independent of the
    /// [`FaultPlan`] seed).
    pub seed: u64,
    /// Bitmask of keys present before the run starts (prefilled with the
    /// plan *inactive*, so prefill never faults).
    pub initial: u64,
    /// Record the history and run the exhaustive WGL checker afterwards.
    /// Requires `threads * ops_per_thread <= 28` (the checker is
    /// exponential in history length).
    pub check_linearizability: bool,
    /// Suppress the default panic-hook backtrace for *injected* panics
    /// (anything carrying an effect marker); genuine panics still print.
    pub quiet: bool,
}

impl ChaosSpec {
    /// Defaults: 4 threads, 16 keys, 200 ops/thread, no recording, quiet.
    pub fn new(seed: u64) -> Self {
        ChaosSpec {
            threads: 4,
            keys: 16,
            ops_per_thread: 200,
            scan_pct: 0,
            seed,
            initial: 0,
            check_linearizability: false,
            quiet: true,
        }
    }
}

/// What a chaos run did and observed. Counters are exact (every attempted
/// operation lands in exactly one of `ops_completed`, `injected_panics`,
/// `aborted_ops`, `rejected_writes`, `alloc_failures`).
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Operations that ran to completion (including failed inserts of
    /// present keys etc. — "completed" means returned, not "succeeded").
    pub ops_completed: u64,
    /// Writer deaths injected by an armed failpoint.
    pub injected_panics: u64,
    /// Writers that died on a *consequence* of a fault rather than an
    /// injection: poisoned-tree aborts at restart edges and restart-storm
    /// budget trips.
    pub aborted_ops: u64,
    /// Writes rejected up front with [`TreeError::Poisoned`].
    pub rejected_writes: u64,
    /// Writes turned away with [`TreeError::Recovering`] (a recoverer held
    /// the gate; only possible when a chaos round overlaps a recovery).
    pub recovering_writes: u64,
    /// Writes that observed [`TreeError::AllocFailed`].
    pub alloc_failures: u64,
    /// Range scans that ran to completion (a subset of `ops_completed`).
    pub scans_completed: u64,
    /// Keys yielded across all completed scans.
    pub scan_keys_yielded: u64,
    /// Per-point injected-fault counts, indexed like [`FailPoint::ALL`].
    pub fired: [u64; FailPoint::COUNT],
    /// Poison state of the map after the run.
    pub poisoned: Option<TreeError>,
    /// Recorded history length (0 unless
    /// [`ChaosSpec::check_linearizability`]).
    pub history_len: usize,
    /// Flight-recorder post-mortem dump (Chrome Trace Event JSON of every
    /// thread's ring), captured when the run left the map poisoned. `None`
    /// when the map survived, when a dump for this poisoning was already
    /// taken, or in builds without the `trace` feature.
    pub post_mortem: Option<String>,
}

impl ChaosReport {
    /// Total injected faults across all points (delays and forced
    /// failures included, not just panics).
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

/// Runs the chaos workload described by `spec` against `map` under `plan`,
/// then runs the post-mortem checks (see module docs). Panics on any
/// violated check; returns the run's accounting otherwise.
pub fn run_chaos<M>(map: &M, spec: &ChaosSpec, plan: FaultPlan) -> ChaosReport
where
    M: FallibleMap<i64, u64> + OrderedRead<i64> + QuiescentOrdered<i64> + CheckInvariants + Sync,
{
    assert!(spec.threads > 0 && spec.ops_per_thread > 0, "empty chaos spec");
    assert!(spec.keys > 0 && spec.keys <= 64, "key universe must be 1..=64");
    assert!(spec.scan_pct <= 30, "scans are carved out of the 30% contains share");
    if spec.check_linearizability {
        assert!(
            spec.threads * spec.ops_per_thread <= 28,
            "linearizability checking needs threads * ops_per_thread <= 28"
        );
    }

    // Prefill before arming the plan: the initial state never faults.
    for k in 0..spec.keys {
        if spec.initial & (1 << k) != 0 {
            assert_eq!(map.try_insert(k as i64, k), Ok(true), "prefill of fresh key");
        }
    }

    let quiet = spec.quiet.then(silence_injected_panics);
    let session = activate(plan);
    // Re-arm the flight-recorder post-mortem latch: if this round's storm
    // poisons the map, exactly one dump becomes available below. Chaos
    // runs are serialized by the plan session, so the global latch is ours.
    lo_trace::flight::arm_post_mortem();

    let recorder = spec.check_linearizability.then(Recorder::new);
    let history: Mutex<Vec<CompletedOp>> = Mutex::new(Vec::new());
    let scan_obs: Mutex<Vec<ScanObservation>> = Mutex::new(Vec::new());
    let ops_completed = AtomicU64::new(0);
    let injected_panics = AtomicU64::new(0);
    let aborted_ops = AtomicU64::new(0);
    let rejected_writes = AtomicU64::new(0);
    let recovering_writes = AtomicU64::new(0);
    let alloc_failures = AtomicU64::new(0);
    let scans_completed = AtomicU64::new(0);
    let scan_keys_yielded = AtomicU64::new(0);

    let mut seeder = SplitMix64::new(spec.seed);
    let thread_seeds: Vec<u64> = (0..spec.threads).map(|_| seeder.next_u64()).collect();

    std::thread::scope(|s| {
        for &tseed in &thread_seeds {
            let (recorder, history) = (&recorder, &history);
            let (ops_completed, injected_panics) = (&ops_completed, &injected_panics);
            let (aborted_ops, rejected_writes) = (&aborted_ops, &rejected_writes);
            let (recovering_writes, alloc_failures) = (&recovering_writes, &alloc_failures);
            let (scan_obs, scans_completed) = (&scan_obs, &scans_completed);
            let scan_keys_yielded = &scan_keys_yielded;
            s.spawn(move || {
                let mut rng = XorShift64Star::new(tseed);
                for _ in 0..spec.ops_per_thread {
                    let key = rng.next_below(spec.keys) as i64;
                    let roll = rng.next_below(100);
                    if spec.scan_pct > 0 && roll >= 100 - u64::from(spec.scan_pct) {
                        // Range scan over an 8-key window from the drawn
                        // key. Lock-free read path: it must complete (and
                        // obey the cursor contract) even mid-storm on a
                        // poisoned tree.
                        let hi = (key + 7).min(spec.keys as i64 - 1);
                        let invoke = recorder.as_ref().map(Recorder::stamp);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let mut ks = Vec::new();
                            map.scan_range(key..=hi, &mut |k| ks.push(k));
                            ks
                        }));
                        let response = recorder.as_ref().map(Recorder::stamp);
                        match outcome {
                            Ok(ks) => {
                                assert!(
                                    ks.windows(2).all(|w| w[0] < w[1]),
                                    "chaos scan yields not strictly ascending: {ks:?}"
                                );
                                assert!(
                                    ks.iter().all(|&k| (key..=hi).contains(&k)),
                                    "chaos scan strayed outside [{key}, {hi}]: {ks:?}"
                                );
                                ops_completed.fetch_add(1, Ordering::Relaxed);
                                scans_completed.fetch_add(1, Ordering::Relaxed);
                                scan_keys_yielded.fetch_add(ks.len() as u64, Ordering::Relaxed);
                                if let (Some(invoke), Some(response)) = (invoke, response) {
                                    scan_obs.lock().expect("scan mutex").push(ScanObservation {
                                        lo: key as u8,
                                        hi: hi as u8,
                                        keys: ks.iter().map(|&k| k as u8).collect(),
                                        invoke,
                                        response,
                                    });
                                }
                            }
                            Err(payload) => {
                                // The scan path takes no locks and hosts no
                                // failpoints; treat anything unmarked as a
                                // genuine bug, like the write path does.
                                let injected = take_injected_panic().is_some();
                                let effect =
                                    panic_message(payload.as_ref()).and_then(effect_in_message);
                                if !injected && effect.is_none() {
                                    resume_unwind(payload);
                                }
                                let ctr = if injected { injected_panics } else { aborted_ops };
                                ctr.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        continue;
                    }
                    let (op, val) = if roll < 40 {
                        (LinOp::Insert, rng.next_u64())
                    } else if roll < 70 {
                        (LinOp::Remove, 0)
                    } else {
                        (LinOp::Contains, 0)
                    };
                    let invoke = recorder.as_ref().map(Recorder::stamp);
                    let outcome = catch_unwind(AssertUnwindSafe(|| match op {
                        LinOp::Insert => map.try_insert(key, val),
                        LinOp::Remove => map.try_remove(&key),
                        LinOp::Contains => Ok(map.contains(&key)),
                    }));
                    let response = recorder.as_ref().map(Recorder::stamp);
                    let recorded = match outcome {
                        Ok(Ok(result)) => {
                            ops_completed.fetch_add(1, Ordering::Relaxed);
                            Some(result)
                        }
                        Ok(Err(TreeError::Poisoned(_))) => {
                            rejected_writes.fetch_add(1, Ordering::Relaxed);
                            None // rejected up front: no effect
                        }
                        Ok(Err(TreeError::Recovering)) => {
                            recovering_writes.fetch_add(1, Ordering::Relaxed);
                            None // turned away at the recovery gate: no effect
                        }
                        Ok(Err(TreeError::AllocFailed)) => {
                            alloc_failures.fetch_add(1, Ordering::Relaxed);
                            None // allocation failure: no effect
                        }
                        Err(payload) => {
                            let injected = take_injected_panic().is_some();
                            let effect =
                                panic_message(payload.as_ref()).and_then(effect_in_message);
                            if !injected && effect.is_none() {
                                // Not fault-related: a genuine bug surfaced
                                // under chaos. Re-raise it.
                                resume_unwind(payload);
                            }
                            let ctr = if injected { injected_panics } else { aborted_ops };
                            ctr.fetch_add(1, Ordering::Relaxed);
                            // A writer killed *after* its linearization
                            // point completed an effective insert/remove;
                            // one killed before it had no effect.
                            (effect == Some(true)).then_some(true)
                        }
                    };
                    if let (Some(result), Some(invoke), Some(response)) =
                        (recorded, invoke, response)
                    {
                        history.lock().expect("history mutex").push(CompletedOp {
                            op,
                            key: key as u8,
                            result,
                            invoke,
                            response,
                        });
                    }
                }
            });
        }
    });

    let fired = session.fired_counts();
    drop(session);
    if let Some(restore) = quiet {
        restore();
    }

    // ---- post-mortem checks (quiescent) ----
    let poisoned = map.poisoned();

    // 1. Full invariant sweep; degraded automatically when poisoned.
    map.check_invariants();

    // 2. Read coherence: the lock-free membership test agrees with the
    //    ordering-layout snapshot for the whole key universe.
    let snapshot = map.keys_in_order();
    for k in 0..spec.keys as i64 {
        assert_eq!(
            map.contains(&k),
            snapshot.contains(&k),
            "contains({k}) disagrees with the ordered snapshot (poisoned: {poisoned:?})"
        );
    }

    // 2b. Streaming scans stay live in degraded mode and, at quiescence,
    //     agree exactly with the snapshot (poisoned or not).
    let mut scanned = Vec::new();
    map.scan_range(0..=spec.keys as i64 - 1, &mut |k| scanned.push(k));
    assert_eq!(
        scanned, snapshot,
        "quiescent full-range scan disagrees with the ordered snapshot (poisoned: {poisoned:?})"
    );

    // 3. A poisoned tree must keep rejecting writers.
    if poisoned.is_some() {
        assert!(
            matches!(map.try_insert(i64::MAX, 0), Err(TreeError::Poisoned(_))),
            "poisoned tree accepted an insert"
        );
        assert!(
            matches!(map.try_remove(&0), Err(TreeError::Poisoned(_))),
            "poisoned tree accepted a remove"
        );
    }

    // 4. Linearizability of the recorded history, and coherence of every
    //    recorded scan against it.
    let mut history = history.into_inner().expect("history mutex");
    history.sort_by_key(|c| c.invoke);
    if spec.check_linearizability {
        assert!(
            is_linearizable(&history, spec.initial),
            "chaos history (len {}) is not linearizable under seed {}",
            history.len(),
            spec.seed
        );
        let scans = scan_obs.into_inner().expect("scan mutex");
        if let Err(v) = check_scan_coherence(&history, &scans, spec.initial) {
            panic!("chaos scan incoherent under seed {}: {v}", spec.seed);
        }
    }

    // 5. Flight-recorder post-mortem: when the storm poisoned the map (and
    //    tracing is live), take the one-shot Chrome-trace dump of every
    //    thread's ring for the report.
    let post_mortem = lo_trace::flight::take_post_mortem();

    ChaosReport {
        ops_completed: ops_completed.into_inner(),
        injected_panics: injected_panics.into_inner(),
        aborted_ops: aborted_ops.into_inner(),
        rejected_writes: rejected_writes.into_inner(),
        recovering_writes: recovering_writes.into_inner(),
        alloc_failures: alloc_failures.into_inner(),
        scans_completed: scans_completed.into_inner(),
        scan_keys_yielded: scan_keys_yielded.into_inner(),
        fired,
        poisoned,
        history_len: history.len(),
        post_mortem,
    }
}

/// Shape of a kill→recover→resume round (see [`run_chaos_recovery`]).
///
/// Recovery rounds *always* record and WGL-check the combined history of
/// both phases, so the total operation count —
/// `threads * (storm_ops + resume_ops)` plus the one mid-recovery writer —
/// must stay `<= 28`.
#[derive(Clone, Debug)]
pub struct RecoverySpec {
    /// Worker threads per phase.
    pub threads: usize,
    /// Key universe `0..keys` (at most 64, as in [`ChaosSpec`]).
    pub keys: u64,
    /// Operations per thread in the storm phase (under the armed plan).
    pub storm_ops: usize,
    /// Operations per thread in the resume phase (after recovery; every
    /// one of them must complete — the gate is open again).
    pub resume_ops: usize,
    /// Seed for the per-thread operation streams.
    pub seed: u64,
    /// Bitmask of keys to prefill (plan-inactive; the bits must not
    /// already be present). The WGL initial state is taken from the map
    /// *after* prefill, so repeated rounds against one map — e.g. to kill
    /// and recover the same tree twice — stay checkable with `initial: 0`.
    pub initial: u64,
    /// Suppress the panic-hook backtrace for injected panics.
    pub quiet: bool,
}

impl RecoverySpec {
    /// Defaults: 3 threads, 8 keys, 5 storm + 3 resume ops per thread
    /// (25 recorded ops including the mid-recovery writer), quiet.
    pub fn new(seed: u64) -> Self {
        RecoverySpec {
            threads: 3,
            keys: 8,
            storm_ops: 5,
            resume_ops: 3,
            seed,
            initial: 0b0110_1101,
            quiet: true,
        }
    }
}

/// What a kill→recover→resume round did and observed.
#[derive(Clone, Debug)]
pub struct RecoveryRoundReport {
    /// Poison state after the storm (`None` if the armed kill never
    /// landed, in which case recovery was asserted to decline).
    pub cause: Option<TreeError>,
    /// The recoverer's post-mortem, when a recovery ran.
    pub recovery: Option<RecoveryReport>,
    /// Writer deaths injected by the armed failpoint during the storm.
    pub injected_panics: u64,
    /// Writers that died on a consequence of the fault (poisoned-tree
    /// aborts at restart edges).
    pub aborted_ops: u64,
    /// Writes rejected with [`TreeError::Poisoned`] (storm phase and the
    /// mid-recovery writer's pre-quarantine attempts).
    pub rejected_writes: u64,
    /// Writes turned away with [`TreeError::Recovering`] while the
    /// recoverer held the gate.
    pub recovering_writes: u64,
    /// Length of the combined (storm + recovery-writer + resume) history
    /// that passed the WGL check.
    pub history_len: usize,
}

impl RecoveryRoundReport {
    /// Whether the armed kill actually landed (and a recovery ran).
    pub fn killed(&self) -> bool {
        self.cause.is_some()
    }
}

/// Per-phase outcome counters for the recovery harness.
#[derive(Default)]
struct RoundCounters {
    injected_panics: AtomicU64,
    aborted_ops: AtomicU64,
    rejected_writes: AtomicU64,
    recovering_writes: AtomicU64,
}

/// Drives `ops_per_thread` recorded point operations per seed against
/// `map`, classifying every outcome exactly like [`run_chaos`] does
/// (interrupted operations enter the history iff they passed their
/// linearization point).
fn drive_phase<M>(
    map: &M,
    keys: u64,
    ops_per_thread: usize,
    seeds: &[u64],
    recorder: &Recorder,
    history: &Mutex<Vec<CompletedOp>>,
    counters: &RoundCounters,
) where
    M: FallibleMap<i64, u64> + Sync,
{
    std::thread::scope(|s| {
        for &tseed in seeds {
            s.spawn(move || {
                let mut rng = XorShift64Star::new(tseed);
                for _ in 0..ops_per_thread {
                    let key = rng.next_below(keys) as i64;
                    let roll = rng.next_below(100);
                    let (op, val) = if roll < 45 {
                        (LinOp::Insert, rng.next_u64())
                    } else if roll < 80 {
                        (LinOp::Remove, 0)
                    } else {
                        (LinOp::Contains, 0)
                    };
                    let invoke = recorder.stamp();
                    let outcome = catch_unwind(AssertUnwindSafe(|| match op {
                        LinOp::Insert => map.try_insert(key, val),
                        LinOp::Remove => map.try_remove(&key),
                        LinOp::Contains => Ok(map.contains(&key)),
                    }));
                    let response = recorder.stamp();
                    let recorded = match outcome {
                        Ok(Ok(result)) => Some(result),
                        Ok(Err(TreeError::Poisoned(_))) => {
                            counters.rejected_writes.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                        Ok(Err(TreeError::Recovering)) => {
                            counters.recovering_writes.fetch_add(1, Ordering::Relaxed);
                            None
                        }
                        Ok(Err(TreeError::AllocFailed)) => None,
                        Err(payload) => {
                            let injected = take_injected_panic().is_some();
                            let effect =
                                panic_message(payload.as_ref()).and_then(effect_in_message);
                            if !injected && effect.is_none() {
                                resume_unwind(payload);
                            }
                            let ctr = if injected {
                                &counters.injected_panics
                            } else {
                                &counters.aborted_ops
                            };
                            ctr.fetch_add(1, Ordering::Relaxed);
                            (effect == Some(true)).then_some(true)
                        }
                    };
                    if let Some(result) = recorded {
                        history.lock().expect("history mutex").push(CompletedOp {
                            op,
                            key: key as u8,
                            result,
                            invoke,
                            response,
                        });
                    }
                }
            });
        }
    });
}

/// Runs one kill→recover→resume round against `map`:
///
/// 1. **storm** — a recorded workload under the armed `plan`; an injected
///    writer death poisons the map and is classified through the effect
///    markers;
/// 2. **recover** — [`FallibleMap::try_recover`] runs on its own thread
///    while a reader thread keeps sweeping `contains` (lock-free reads
///    never block) and a writer thread retries an insert until the gate
///    reopens, counting its [`TreeError::Recovering`] rejections;
/// 3. **resume** — a second recorded workload on the recovered map, every
///    operation of which must complete (no rejections, no deaths);
/// 4. **verify** — the committed key set read off the poisoned chain
///    survives recovery exactly (every linearized op's effect is intact;
///    no unlinearized effect appears), the map ends
///    [`Health::Writable`] with the *full* invariant set, and the combined
///    history of all three phases passes the WGL linearizability check.
///
/// If the armed kill never lands (shape-dependent windows may not be
/// crossed by a tiny storm), the round instead asserts that recovery on
/// the healthy map declines with [`RecoverError::NotPoisoned`] and still
/// runs the resume phase and the combined checks.
///
/// Panics on any violated check; returns the round's accounting otherwise.
pub fn run_chaos_recovery<M>(map: &M, spec: &RecoverySpec, plan: FaultPlan) -> RecoveryRoundReport
where
    M: FallibleMap<i64, u64> + OrderedRead<i64> + QuiescentOrdered<i64> + CheckInvariants + Sync,
{
    assert!(spec.threads > 0 && spec.storm_ops > 0, "empty recovery round");
    assert!(spec.keys > 0 && spec.keys <= 64, "key universe must be 1..=64");
    let total = spec.threads * (spec.storm_ops + spec.resume_ops) + 1;
    assert!(
        total <= 28,
        "recovery rounds always WGL-check: {total} ops exceed the checker bound of 28"
    );

    for k in 0..spec.keys {
        if spec.initial & (1 << k) != 0 {
            assert_eq!(map.try_insert(k as i64, k), Ok(true), "prefill of fresh key");
        }
    }
    // The WGL initial state is whatever the map actually holds now (prior
    // rounds against the same map included), not just the prefill bits.
    let mut initial_mask = 0u64;
    for k in map.keys_in_order() {
        if (0..spec.keys as i64).contains(&k) {
            initial_mask |= 1 << k as u64;
        }
    }

    let quiet = spec.quiet.then(silence_injected_panics);
    let recorder = Recorder::new();
    let history: Mutex<Vec<CompletedOp>> = Mutex::new(Vec::new());
    let storm = RoundCounters::default();
    let resumed = RoundCounters::default();

    let mut seeder = SplitMix64::new(spec.seed);
    let storm_seeds: Vec<u64> = (0..spec.threads).map(|_| seeder.next_u64()).collect();
    let resume_seeds: Vec<u64> = (0..spec.threads).map(|_| seeder.next_u64()).collect();

    // ---- phase 1: storm under the armed plan ----
    {
        let session = activate(plan);
        drive_phase(map, spec.keys, spec.storm_ops, &storm_seeds, &recorder, &history, &storm);
        drop(session); // recovery and resume run fault-free
    }

    // ---- phase 2: recover (with live readers and a queued writer) ----
    let cause = map.poisoned();
    let recovery = if cause.is_some() {
        // Committed state, read off the ordering chain of the poisoned
        // tree. Recovery must preserve it exactly: every operation that
        // linearized before the death keeps its effect, every one that
        // did not leaves no trace. (The mid-recovery writer below only
        // ever *inserts* `probe_key`, the one delta tolerated.)
        let before = map.keys_in_order();
        let probe_key = (spec.seed % spec.keys) as i64;
        let done = AtomicBool::new(false);
        let mut outcome = None;
        let mut writer_op = None;
        std::thread::scope(|s| {
            let recoverer = s.spawn(|| {
                let r = map.try_recover();
                done.store(true, Ordering::Release);
                r
            });
            // Lock-free reads keep completing while the recoverer works.
            let reader = s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    for k in 0..spec.keys as i64 {
                        let _ = map.contains(&k);
                    }
                }
            });
            // A writer arriving mid-recovery is turned away (Recovering
            // once quarantine begins, Poisoned if it races ahead of the
            // hand-off CAS) and retries until the gate reopens.
            let writer = s.spawn(|| {
                let invoke = recorder.stamp();
                loop {
                    match map.try_insert(probe_key, u64::MAX) {
                        Ok(result) => {
                            let response = recorder.stamp();
                            return Some(CompletedOp {
                                op: LinOp::Insert,
                                key: probe_key as u8,
                                result,
                                invoke,
                                response,
                            });
                        }
                        Err(TreeError::Recovering) => {
                            storm.recovering_writes.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TreeError::Poisoned(_)) => {
                            storm.rejected_writes.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TreeError::AllocFailed) => {}
                    }
                    if done.load(Ordering::Acquire) && map.poisoned().is_some() {
                        return None; // recovery failed; asserted below
                    }
                    std::hint::spin_loop();
                }
            });
            outcome = Some(recoverer.join().expect("recoverer must not panic"));
            reader.join().expect("mid-recovery reader must not panic");
            writer_op = writer.join().expect("mid-recovery writer must not panic");
        });
        let report = outcome
            .expect("recoverer joined")
            .unwrap_or_else(|e| panic!("recovery of a killed tree failed: {e:?}"));
        assert!(report.generation >= 1, "recovery must bump the generation");
        assert!(
            report.nodes_salvaged >= before.len(),
            "salvage count {} below the {} committed keys",
            report.nodes_salvaged,
            before.len()
        );
        let after = map.keys_in_order();
        for &k in &before {
            assert!(after.contains(&k), "key {k} linearized before the kill was lost by recovery");
        }
        for &k in &after {
            assert!(
                before.contains(&k) || k == probe_key,
                "recovery fabricated key {k} out of thin air"
            );
        }
        let op = writer_op.expect("recovery succeeded, so the queued writer must have landed");
        history.lock().expect("history mutex").push(op);
        Some(report)
    } else {
        // The one-shot never landed: recovery on a healthy map declines.
        assert!(
            matches!(map.try_recover(), Err(RecoverError::NotPoisoned)),
            "recovery of a healthy map must decline"
        );
        None
    };

    // ---- phase 3: resume on the reopened gate ----
    if spec.resume_ops > 0 {
        drive_phase(map, spec.keys, spec.resume_ops, &resume_seeds, &recorder, &history, &resumed);
        assert_eq!(resumed.injected_panics.load(Ordering::Relaxed), 0);
        assert_eq!(resumed.aborted_ops.load(Ordering::Relaxed), 0);
        assert_eq!(
            resumed.rejected_writes.load(Ordering::Relaxed),
            0,
            "a recovered map must accept every writer again"
        );
        assert_eq!(resumed.recovering_writes.load(Ordering::Relaxed), 0);
    }

    if let Some(restore) = quiet {
        restore();
    }

    // ---- verify: writable, fully invariant, linearizable across the
    //      recovery boundary ----
    assert_eq!(map.health(), Health::Writable, "round must end writable");
    map.check_invariants();
    let snapshot = map.keys_in_order();
    for k in 0..spec.keys as i64 {
        assert_eq!(
            map.contains(&k),
            snapshot.contains(&k),
            "contains({k}) disagrees with the ordered snapshot after recovery"
        );
    }
    let mut history = history.into_inner().expect("history mutex");
    history.sort_by_key(|c| c.invoke);
    assert!(
        is_linearizable(&history, initial_mask),
        "kill→recover→resume history (len {}) is not linearizable under seed {}",
        history.len(),
        spec.seed
    );

    RecoveryRoundReport {
        cause,
        recovery,
        injected_panics: storm.injected_panics.into_inner(),
        aborted_ops: storm.aborted_ops.into_inner(),
        rejected_writes: storm.rejected_writes.into_inner(),
        recovering_writes: storm.recovering_writes.into_inner(),
        history_len: history.len(),
    }
}

/// Replaces the panic hook with one that swallows injected-fault panics
/// (payloads carrying an effect marker) and forwards everything else.
/// Returns a closure that restores forwarding-to-the-previous-hook
/// behavior. Chaos runs are serialized by the plan session, so the global
/// hook swap does not race with other runs.
pub(crate) fn silence_injected_panics() -> impl FnOnce() {
    let prev = Arc::new(std::panic::take_hook());
    let filter_prev = Arc::clone(&prev);
    std::panic::set_hook(Box::new(move |info| {
        let marked = panic_message(info.payload()).is_some_and(|m| effect_in_message(m).is_some());
        if !marked {
            filter_prev(info);
        }
    }));
    move || {
        let _ = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| prev(info)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness must run cleanly (zero faults) with an empty plan, on
    /// any build.
    #[test]
    fn clean_run_with_empty_plan() {
        let map = lo_core::LoAvlMap::new();
        let spec = ChaosSpec { initial: 0b1010, ..ChaosSpec::new(11) };
        let report = run_chaos(&map, &spec, FaultPlan::new(11));
        assert_eq!(report.total_fired(), 0);
        assert_eq!(report.injected_panics, 0);
        assert_eq!(report.poisoned, None);
        assert_eq!(
            report.ops_completed,
            (spec.threads * spec.ops_per_thread) as u64
        );
    }

    /// Tiny recorded session through the WGL checker, no faults.
    #[test]
    fn clean_run_is_linearizable() {
        let map = lo_core::LoBstMap::new();
        let spec = ChaosSpec {
            threads: 3,
            keys: 4,
            ops_per_thread: 9,
            initial: 0b0101,
            check_linearizability: true,
            ..ChaosSpec::new(23)
        };
        let report = run_chaos(&map, &spec, FaultPlan::new(23));
        assert_eq!(report.history_len, 27);
        assert_eq!(report.poisoned, None);
    }

    /// Scans interleave with the storm and keep the cursor contract; the
    /// classic counters still balance.
    #[test]
    fn scans_run_mid_storm() {
        let map = lo_core::LoAvlMap::new();
        let spec = ChaosSpec { scan_pct: 30, initial: 0b1111_0000, ..ChaosSpec::new(7) };
        let report = run_chaos(&map, &spec, FaultPlan::new(7));
        assert!(report.scans_completed > 0, "a 30% scan share must fire");
        assert_eq!(
            report.ops_completed,
            (spec.threads * spec.ops_per_thread) as u64
        );
    }

    /// Tiny recorded session with scans: history linearizable *and* every
    /// scan coherent against it.
    #[test]
    fn recorded_scans_are_coherent() {
        let map = lo_core::LoBstMap::new();
        let spec = ChaosSpec {
            threads: 3,
            keys: 8,
            ops_per_thread: 9,
            scan_pct: 30,
            initial: 0b1101,
            check_linearizability: true,
            ..ChaosSpec::new(41)
        };
        let report = run_chaos(&map, &spec, FaultPlan::new(41));
        assert!(report.scans_completed > 0);
        assert_eq!(
            report.history_len + report.scans_completed as usize,
            spec.threads * spec.ops_per_thread
        );
    }

    #[test]
    #[should_panic(expected = "threads * ops_per_thread")]
    fn oversized_recorded_session_rejected() {
        let map = lo_core::LoAvlMap::new();
        let spec = ChaosSpec { check_linearizability: true, ..ChaosSpec::new(1) };
        run_chaos(&map, &spec, FaultPlan::new(1));
    }
}
