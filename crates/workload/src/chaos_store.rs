//! Chaos harness for the sharded store: poison one shard mid-storm, prove
//! the blast radius stays inside it (ISSUE 10).
//!
//! [`run_chaos`](crate::run_chaos) cannot drive a *partially* degraded
//! store — its post-checks assume one failure domain (e.g. "poisoned ⇒
//! `try_insert(i64::MAX)` is rejected", but `i64::MAX` may route to a
//! perfectly healthy shard). [`run_chaos_store`] is the store-shaped round:
//!
//! 1. **storm** — a mixed workload on a range-sharded store under an armed
//!    [`FaultPlan`]; an injected writer death poisons *its* shard only;
//! 2. **degraded service** — with the plan gone, assert reads (point and
//!    stitched scans) work over the **whole** keyspace, writes succeed on
//!    every healthy shard, and writes to the poisoned shard are rejected
//!    with [`TreeError::Poisoned`] — the store's [`Health::Degraded`] mask
//!    names exactly the broken shards;
//! 3. **online recovery** — `try_recover` repairs the poisoned shards
//!    while a reader sweeps the full keyspace and a writer keeps landing
//!    ops on a healthy shard, which must **never** be turned away — a
//!    neighbouring shard's quarantine is invisible here;
//! 4. **rejoin** — the store ends [`Health::Writable`], the recovery
//!    generation climbed by exactly the number of repaired shards, writes
//!    land on every shard again, and the full invariant sweep (including
//!    the store's routing invariant) passes.
//!
//! Without `lo-core/failpoints` the armed plan never fires; the round then
//! asserts the healthy-path equivalents (zero degraded shards, recovery
//! declines). Deterministic from the seeds, like the tree-level harness.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lo_api::{Health, RecoverError, RecoveryReport, TreeError};
use lo_check::fail::{
    activate, effect_in_message, panic_message, take_injected_panic, FailPoint, FaultPlan,
};
use lo_core::LoAvlMap;
use lo_store::{RangePartitioner, ShardedStore};

use crate::chaos::silence_injected_panics;
use crate::rng::{SplitMix64, XorShift64Star};

/// The concrete store the chaos round drives: range-routed AVL shards, so
/// the key→shard map is transparent to the checks.
pub type ChaosStore = ShardedStore<i64, u64, LoAvlMap<i64, u64>, RangePartitioner<i64>>;

/// Shape of a store chaos round.
#[derive(Clone, Debug)]
pub struct StoreChaosSpec {
    /// Shard count (the keyspace is split evenly).
    pub shards: usize,
    /// Worker threads in the storm phase.
    pub threads: usize,
    /// Key universe `0..keys`.
    pub keys: u64,
    /// Operations attempted per storm thread (40% insert / 30% remove /
    /// 20% contains / 10% short stitched scans).
    pub ops_per_thread: usize,
    /// Seed for the per-thread operation streams.
    pub seed: u64,
    /// Suppress the panic-hook backtrace for injected panics.
    pub quiet: bool,
}

impl StoreChaosSpec {
    /// Defaults: 4 shards × 64-key slices, 4 threads, 300 ops each, quiet.
    pub fn new(seed: u64) -> Self {
        StoreChaosSpec {
            shards: 4,
            threads: 4,
            keys: 256,
            ops_per_thread: 300,
            seed,
            quiet: true,
        }
    }
}

/// What a store chaos round did and observed.
#[derive(Clone, Debug)]
pub struct StoreChaosReport {
    /// Operations that ran to completion during the storm.
    pub ops_completed: u64,
    /// Writer deaths injected by an armed failpoint.
    pub injected_panics: u64,
    /// Writers that died on a consequence of a fault (restart-storm trips,
    /// poisoned-tree aborts at restart edges).
    pub aborted_ops: u64,
    /// Writes rejected with [`TreeError::Poisoned`] during the storm.
    pub rejected_writes: u64,
    /// Degraded-shard bitmask observed after the storm (0 = nothing
    /// landed).
    pub degraded_mask: u64,
    /// The merged recovery post-mortem, when shards were repaired.
    pub recovery: Option<RecoveryReport>,
    /// Store recovery generation after the round (= number of repaired
    /// shards, for a round starting at generation 0).
    pub generation: u64,
    /// Per-point injected-fault counts, indexed like [`FailPoint::ALL`].
    pub fired: [u64; FailPoint::COUNT],
}

/// Even split points for `keys` over `shards`: shard *i* owns
/// `[i·w, (i+1)·w)` with `w = keys / shards`.
fn even_splits(keys: u64, shards: usize) -> Vec<i64> {
    let w = keys / shards as u64;
    (1..shards as u64).map(|i| (i * w) as i64).collect()
}

/// A probe key owned by shard `i` (mid-slice, away from the boundaries).
fn probe_key(spec: &StoreChaosSpec, i: usize) -> i64 {
    let w = spec.keys / spec.shards as u64;
    (i as u64 * w + w / 2) as i64
}

/// Round-trips a probe write on shard `i` and asserts it is accepted;
/// restores the key's absence if the insert landed it fresh.
fn assert_shard_writable(store: &ChaosStore, spec: &StoreChaosSpec, i: usize, when: &str) {
    let k = probe_key(spec, i);
    assert_eq!(store.shard_of(&k), i, "probe key {k} must route to shard {i}");
    match store.try_insert(k, u64::MAX) {
        Ok(true) => {
            assert_eq!(store.try_remove(&k), Ok(true), "probe cleanup on shard {i} ({when})");
        }
        Ok(false) => {} // already present: the accept is what we tested
        Err(e) => panic!("healthy shard {i} rejected a write {when}: {e}"),
    }
}

/// Runs one poison→serve-degraded→recover→rejoin round (module docs).
/// Panics on any violated check; returns the accounting otherwise.
pub fn run_chaos_store(spec: &StoreChaosSpec, plan: FaultPlan) -> StoreChaosReport {
    assert!(spec.shards >= 2, "a blast-radius round needs at least 2 shards");
    assert!(spec.threads > 0 && spec.ops_per_thread > 0, "empty storm");
    assert!(
        spec.keys >= 2 * spec.shards as u64,
        "each shard needs a non-trivial key slice"
    );
    let store = ChaosStore::range_sharded(even_splits(spec.keys, spec.shards));

    // Prefill even keys, plan inactive: the initial state never faults.
    for k in (0..spec.keys as i64).step_by(2) {
        assert_eq!(store.try_insert(k, k as u64), Ok(true), "prefill of fresh key");
    }

    // ---- phase 1: storm under the armed plan ----
    let quiet = spec.quiet.then(silence_injected_panics);
    let session = activate(plan);

    let ops_completed = AtomicU64::new(0);
    let injected_panics = AtomicU64::new(0);
    let aborted_ops = AtomicU64::new(0);
    let rejected_writes = AtomicU64::new(0);

    let mut seeder = SplitMix64::new(spec.seed);
    let seeds: Vec<u64> = (0..spec.threads).map(|_| seeder.next_u64()).collect();
    std::thread::scope(|s| {
        for &tseed in &seeds {
            let store = &store;
            let (ops_completed, injected_panics) = (&ops_completed, &injected_panics);
            let (aborted_ops, rejected_writes) = (&aborted_ops, &rejected_writes);
            s.spawn(move || {
                let mut rng = XorShift64Star::new(tseed);
                for _ in 0..spec.ops_per_thread {
                    let key = rng.next_below(spec.keys) as i64;
                    let roll = rng.next_below(100);
                    if roll >= 90 {
                        // Short stitched scan; the lock-free read path must
                        // survive the storm, poisoned shards included.
                        let hi = (key + 7).min(spec.keys as i64 - 1);
                        let mut last = i64::MIN;
                        store.scan_range(key..=hi, |k| {
                            assert!(k > last && (key..=hi).contains(&k), "scan contract");
                            last = k;
                        });
                        ops_completed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if roll < 40 {
                            store.try_insert(key, rng.next_u64())
                        } else if roll < 70 {
                            store.try_remove(&key)
                        } else {
                            Ok(store.contains(&key))
                        }
                    }));
                    match outcome {
                        Ok(Ok(_)) => {
                            ops_completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Err(TreeError::Poisoned(_))) => {
                            rejected_writes.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Err(_)) => {} // Recovering / AllocFailed: no effect
                        Err(payload) => {
                            let injected = take_injected_panic().is_some();
                            let effect =
                                panic_message(payload.as_ref()).and_then(effect_in_message);
                            if !injected && effect.is_none() {
                                resume_unwind(payload); // genuine bug
                            }
                            let ctr = if injected { injected_panics } else { aborted_ops };
                            ctr.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let fired = session.fired_counts();
    drop(session);

    // ---- phase 2: degraded service ----
    let degraded_mask = store.degraded_mask();
    assert_eq!(
        store.health(),
        if degraded_mask == 0 { Health::Writable } else { Health::Degraded { shards: degraded_mask } },
        "health must mirror the degraded mask"
    );

    // Reads work over the WHOLE keyspace, poisoned shards included: the
    // membership sweep agrees with the stitched ordered snapshot.
    let snapshot = store.keys_in_order();
    for k in 0..spec.keys as i64 {
        assert_eq!(
            store.contains(&k),
            snapshot.binary_search(&k).is_ok(),
            "contains({k}) disagrees with the stitched snapshot (mask {degraded_mask:#b})"
        );
    }
    let full_scan = store.range_keys(0..=spec.keys as i64 - 1);
    assert_eq!(full_scan, snapshot, "stitched full-range scan must match the snapshot");

    // Writes: accepted on every healthy shard, rejected on every poisoned
    // one — the blast radius is exactly the mask.
    for i in 0..spec.shards {
        if degraded_mask & (1 << i) == 0 {
            assert_shard_writable(&store, spec, i, "while a neighbour is poisoned");
        } else {
            let k = probe_key(spec, i);
            assert!(
                matches!(store.try_insert(k, 0), Err(TreeError::Poisoned(_))),
                "poisoned shard {i} accepted an insert"
            );
            assert!(
                matches!(store.try_remove(&k), Err(TreeError::Poisoned(_))),
                "poisoned shard {i} accepted a remove"
            );
        }
    }

    // ---- phase 3: online recovery ----
    let recovery = if degraded_mask != 0 {
        let healthy = (0..spec.shards).find(|i| degraded_mask & (1 << i) == 0);
        let done = AtomicBool::new(false);
        let mut outcome = None;
        std::thread::scope(|s| {
            let recoverer = s.spawn(|| {
                let r = store.try_recover();
                done.store(true, Ordering::Release);
                r
            });
            // Lock-free reads sweep the whole keyspace throughout.
            let store_ref = &store;
            let done_ref = &done;
            s.spawn(move || {
                while !done_ref.load(Ordering::Acquire) {
                    for k in (0..spec.keys as i64).step_by(7) {
                        let _ = store_ref.contains(&k);
                    }
                }
            });
            // A writer on a healthy shard is never turned away by a
            // neighbour's quarantine — the per-shard recovery claim.
            if let Some(h) = healthy {
                let k = probe_key(spec, h);
                s.spawn(move || {
                    while !done_ref.load(Ordering::Acquire) {
                        match store_ref.try_insert(k, 1) {
                            Ok(true) => assert_eq!(
                                store_ref.try_remove(&k),
                                Ok(true),
                                "healthy-shard probe cleanup mid-recovery"
                            ),
                            Ok(false) => {}
                            Err(e) => panic!(
                                "healthy shard {h} turned a writer away mid-recovery: {e}"
                            ),
                        }
                    }
                });
            }
            outcome = Some(recoverer.join().expect("recoverer must not panic"));
        });
        let report = outcome
            .expect("recoverer joined")
            .unwrap_or_else(|e| panic!("store recovery failed: {e:?}"));
        Some(report)
    } else {
        assert!(
            matches!(store.try_recover(), Err(RecoverError::NotPoisoned)),
            "recovery of a fully writable store must decline"
        );
        None
    };

    // ---- phase 4: rejoin ----
    let generation = store.recovery_generation();
    assert_eq!(
        generation,
        u64::from(degraded_mask.count_ones()),
        "generation must climb by exactly the number of repaired shards"
    );
    assert_eq!(store.health(), Health::Writable, "round must end fully writable");
    assert_eq!(store.degraded_mask(), 0);
    for i in 0..spec.shards {
        assert_shard_writable(&store, spec, i, "after recovery");
    }
    store.check_invariants();

    if let Some(restore) = quiet {
        restore();
    }

    StoreChaosReport {
        ops_completed: ops_completed.into_inner(),
        injected_panics: injected_panics.into_inner(),
        aborted_ops: aborted_ops.into_inner(),
        rejected_writes: rejected_writes.into_inner(),
        degraded_mask,
        recovery,
        generation,
        fired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The store round must run cleanly (zero faults, zero degradation)
    /// with an empty plan, on any build.
    #[test]
    fn clean_store_round_with_empty_plan() {
        let spec = StoreChaosSpec::new(17);
        let report = run_chaos_store(&spec, FaultPlan::new(17));
        assert_eq!(report.fired.iter().sum::<u64>(), 0);
        assert_eq!(report.injected_panics, 0);
        assert_eq!(report.degraded_mask, 0);
        assert_eq!(report.generation, 0);
        assert!(report.recovery.is_none());
        assert_eq!(
            report.ops_completed,
            (spec.threads * spec.ops_per_thread) as u64
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 shards")]
    fn single_shard_round_rejected() {
        let spec = StoreChaosSpec { shards: 1, ..StoreChaosSpec::new(1) };
        run_chaos_store(&spec, FaultPlan::new(1));
    }
}
