//! Small statistics helpers for reporting trial results.

/// Arithmetic mean (the paper reports arithmetic averages over 8 runs).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimum (0.0 for empty input).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY)
}

/// Maximum (0.0 for empty input).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Mean ± stddev summary of repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(xs: &[f64]) -> Self {
        Self { mean: mean(xs), stddev: stddev(xs), n: xs.len() }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}±{:.3}", self.mean, self.stddev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935299395).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[3.0]), 0.0);
    }

    #[test]
    fn summary_display() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(format!("{s}"), "2.000±1.000");
    }
}
