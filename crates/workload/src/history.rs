//! Timed-history capture for linearizability checking.
//!
//! Bridges the workload substrate to the exhaustive WGL checker in
//! [`lo_check::lin`]: a [`HistoryRecorder`] wraps any [`ConcurrentMap`] so
//! that every `insert`/`remove`/`contains` issued through the wrapper is
//! stamped with invocation/response times and collected into a history the
//! checker can validate.
//!
//! The checker is exponential in history length, so recorded sessions must
//! stay tiny (a handful of ops per thread over a handful of keys). This
//! module is for *correctness* runs; the timed benchmark trials in
//! [`crate::runner`] stay recording-free.
//!
//! ```
//! use lo_workload::history::HistoryRecorder;
//! use lo_check::lin::is_linearizable;
//!
//! let map = lo_core::LoAvlMap::new();
//! let rec = HistoryRecorder::new();
//! let wrapped = rec.wrap(&map);
//! wrapped.insert(3, 3);
//! wrapped.contains(&3);
//! let history = rec.take_history();
//! assert!(is_linearizable(&history, 0));
//! ```

// The recorder's op log is harness state guarded by a plain std mutex, not a
// tree-protocol lock (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::sync::Mutex;

use lo_api::{ConcurrentMap, OrderedRead};
use lo_check::lin::{CompletedOp, LinOp, Recorder};
use lo_check::scan::ScanObservation;

/// Largest key a recorded session may touch: the WGL checker models the set
/// state as a 64-bit membership mask.
pub const MAX_KEYS: u8 = 64;

/// Collects a timed operation history from one or more [`Recorded`]
/// wrappers. Cheap to share by reference across worker threads.
///
/// Range scans issued through [`Recorded::scan_range`] are stamped with
/// the same logical clock and collected separately (as
/// [`ScanObservation`]s) for the scan-coherence checker in
/// [`lo_check::scan`].
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    recorder: Recorder,
    history: Mutex<Vec<CompletedOp>>,
    scans: Mutex<Vec<ScanObservation>>,
}

impl HistoryRecorder {
    /// Fresh recorder with an empty history and the logical clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps `map` so operations issued through the returned handle are
    /// recorded here. Many wrappers (one per thread) may share one recorder.
    pub fn wrap<'a, M>(&'a self, map: &'a M) -> Recorded<'a, M> {
        Recorded { map, rec: self }
    }

    /// Drains and returns everything recorded so far, sorted by invocation
    /// time — the layout [`lo_check::lin::is_linearizable`] expects.
    pub fn take_history(&self) -> Vec<CompletedOp> {
        let mut h = std::mem::take(&mut *self.history.lock().expect("history poisoned"));
        h.sort_by_key(|c| c.invoke);
        h
    }

    /// Drains the recorded scan observations, sorted by invocation time.
    pub fn take_scans(&self) -> Vec<ScanObservation> {
        let mut s = std::mem::take(&mut *self.scans.lock().expect("scans poisoned"));
        s.sort_by_key(|o| o.invoke);
        s
    }

    fn record(&self, op: LinOp, key: u8, f: impl FnOnce() -> bool) -> bool {
        assert!(key < MAX_KEYS, "recorded sessions are limited to keys 0..{MAX_KEYS}");
        let done = self.recorder.record(op, key, f);
        let result = done.result;
        self.history.lock().expect("history poisoned").push(done);
        result
    }
}

/// A [`ConcurrentMap`] view that records every operation into its
/// [`HistoryRecorder`]. Keys must lie in `0..MAX_KEYS`.
#[derive(Debug)]
pub struct Recorded<'a, M> {
    map: &'a M,
    rec: &'a HistoryRecorder,
}

impl<M: ConcurrentMap<i64, u64>> Recorded<'_, M> {
    /// Recorded [`ConcurrentMap::insert`].
    pub fn insert(&self, key: i64, value: u64) -> bool {
        self.rec.record(LinOp::Insert, key_to_u8(key), || self.map.insert(key, value))
    }

    /// Recorded [`ConcurrentMap::remove`].
    pub fn remove(&self, key: &i64) -> bool {
        self.rec.record(LinOp::Remove, key_to_u8(*key), || self.map.remove(key))
    }

    /// Recorded [`ConcurrentMap::contains`].
    pub fn contains(&self, key: &i64) -> bool {
        self.rec.record(LinOp::Contains, key_to_u8(*key), || self.map.contains(key))
    }
}

impl<M: OrderedRead<i64>> Recorded<'_, M> {
    /// Recorded [`OrderedRead::scan_range`] over `lo..=hi`: the yields are
    /// returned and an [`ScanObservation`] stamped around the whole scan is
    /// pushed into the recorder for [`lo_check::scan::check_scan_coherence`].
    pub fn scan_range(&self, lo: i64, hi: i64) -> Vec<i64> {
        let (lo8, hi8) = (key_to_u8(lo), key_to_u8(hi));
        let invoke = self.rec.recorder.stamp();
        let mut keys = Vec::new();
        self.map.scan_range(lo..=hi, &mut |k| keys.push(k));
        let response = self.rec.recorder.stamp();
        let obs = ScanObservation {
            lo: lo8,
            hi: hi8,
            keys: keys.iter().map(|&k| key_to_u8(k)).collect(),
            invoke,
            response,
        };
        self.rec.scans.lock().expect("scans poisoned").push(obs);
        keys
    }
}

fn key_to_u8(key: i64) -> u8 {
    u8::try_from(key)
        .ok()
        .filter(|&k| k < MAX_KEYS)
        .unwrap_or_else(|| panic!("recorded sessions are limited to keys 0..{MAX_KEYS}, got {key}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lo_check::lin::is_linearizable;
    use std::collections::BTreeMap;

    /// Single-threaded reference map, enough to exercise the recorder.
    #[derive(Default)]
    struct RefMap(Mutex<BTreeMap<i64, u64>>);

    impl ConcurrentMap<i64, u64> for RefMap {
        fn insert(&self, key: i64, value: u64) -> bool {
            let mut m = self.0.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(value);
                true
            } else {
                false
            }
        }
        fn remove(&self, key: &i64) -> bool {
            self.0.lock().unwrap().remove(key).is_some()
        }
        fn contains(&self, key: &i64) -> bool {
            self.0.lock().unwrap().contains_key(key)
        }
        fn get(&self, key: &i64) -> Option<u64> {
            self.0.lock().unwrap().get(key).copied()
        }
        fn name(&self) -> &'static str {
            "ref-btree"
        }
    }

    impl OrderedRead<i64> for RefMap {
        fn min_key(&self) -> Option<i64> {
            self.0.lock().unwrap().keys().next().copied()
        }
        fn max_key(&self) -> Option<i64> {
            self.0.lock().unwrap().keys().next_back().copied()
        }
        fn ceiling_key(&self, key: &i64) -> Option<i64> {
            self.0.lock().unwrap().range(*key..).next().map(|(k, _)| *k)
        }
        fn floor_key(&self, key: &i64) -> Option<i64> {
            self.0.lock().unwrap().range(..=*key).next_back().map(|(k, _)| *k)
        }
        fn scan_range(&self, range: std::ops::RangeInclusive<i64>, f: &mut dyn FnMut(i64)) {
            for (&k, _) in self.0.lock().unwrap().range(range) {
                f(k);
            }
        }
    }

    #[test]
    fn sequential_session_is_linearizable() {
        let map = RefMap::default();
        let rec = HistoryRecorder::new();
        let w = rec.wrap(&map);
        assert!(w.insert(1, 1));
        assert!(!w.insert(1, 1));
        assert!(w.contains(&1));
        assert!(w.remove(&1));
        assert!(!w.remove(&1));
        assert!(!w.contains(&1));
        let h = rec.take_history();
        assert_eq!(h.len(), 6);
        assert!(is_linearizable(&h, 0));
    }

    #[test]
    fn take_history_drains() {
        let map = RefMap::default();
        let rec = HistoryRecorder::new();
        let w = rec.wrap(&map);
        w.insert(2, 2);
        assert_eq!(rec.take_history().len(), 1);
        assert!(rec.take_history().is_empty());
    }

    #[test]
    fn concurrent_histories_merge_sorted() {
        let map = RefMap::default();
        let rec = HistoryRecorder::new();
        std::thread::scope(|s| {
            for t in 0..3i64 {
                let w = rec.wrap(&map);
                s.spawn(move || {
                    for k in (t * 4)..(t * 4 + 4) {
                        w.insert(k, k as u64);
                    }
                });
            }
        });
        let h = rec.take_history();
        assert_eq!(h.len(), 12);
        assert!(h.windows(2).all(|w| w[0].invoke <= w[1].invoke));
        assert!(is_linearizable(&h, 0));
    }

    #[test]
    fn recorded_scans_are_coherent() {
        use lo_check::scan::check_scan_coherence;
        let map = RefMap::default();
        let rec = HistoryRecorder::new();
        let w = rec.wrap(&map);
        w.insert(2, 2);
        w.insert(5, 5);
        assert_eq!(w.scan_range(0, 10), vec![2, 5]);
        w.remove(&2);
        assert_eq!(w.scan_range(0, 10), vec![5]);
        let history = rec.take_history();
        let scans = rec.take_scans();
        assert_eq!(scans.len(), 2);
        assert!(rec.take_scans().is_empty(), "take_scans drains");
        check_scan_coherence(&history, &scans, 0).expect("coherent session");
    }

    #[test]
    #[should_panic(expected = "limited to keys")]
    fn oversized_key_is_rejected() {
        let map = RefMap::default();
        let rec = HistoryRecorder::new();
        rec.wrap(&map).insert(64, 0);
    }
}
