//! Closed-loop "N clients × M connections" service workload (ISSUE 10).
//!
//! The throughput trials in [`runner`](crate::runner) model the paper's
//! open benchmark loop: every thread fires operations back-to-back as fast
//! as the map allows. A *service tier* sees a different shape — a fleet of
//! clients, each multiplexing several logical connections, where a
//! connection issues its next request only after the previous one
//! completed (a **closed loop**). The distinction matters for the
//! flat-combining frontend: closed-loop connections are exactly the
//! arrival process whose bursts a combiner batches.
//!
//! Each client is one OS thread that round-robins its `M` connection
//! states; every connection owns an independent RNG stream and op budget,
//! so the interleaving is deterministic per client given the spec's seed.
//! Operation mix is `read_pct` membership probes with the remainder split
//! evenly between inserts and removes over a uniform key draw.

use std::time::{Duration, Instant};

use lo_api::{ConcurrentMap, Key};

use crate::rng::{SplitMix64, XorShift64Star};

/// Shape of a closed-loop client fleet.
#[derive(Clone, Debug)]
pub struct ClientsSpec {
    /// Client threads.
    pub clients: usize,
    /// Logical connections multiplexed per client.
    pub connections_per_client: usize,
    /// Requests issued per connection (the closed-loop budget).
    pub ops_per_connection: usize,
    /// Key universe `0..keys`.
    pub keys: u64,
    /// Percentage of operations that are reads (0..=100); the rest split
    /// evenly between inserts and removes.
    pub read_pct: u8,
    /// Seed for the per-connection RNG streams.
    pub seed: u64,
}

impl ClientsSpec {
    /// A service-shaped default: 4 clients × 8 connections × 500 ops over
    /// 1024 keys at 90% reads.
    pub fn new(seed: u64) -> Self {
        ClientsSpec {
            clients: 4,
            connections_per_client: 8,
            ops_per_connection: 500,
            keys: 1024,
            read_pct: 90,
            seed,
        }
    }

    /// Total requests the fleet will issue.
    pub fn total_ops(&self) -> u64 {
        (self.clients * self.connections_per_client * self.ops_per_connection) as u64
    }
}

/// What the fleet did.
#[derive(Clone, Debug)]
pub struct ClientsReport {
    /// Requests completed (always [`ClientsSpec::total_ops`] — the loop is
    /// closed, every budgeted request runs to completion).
    pub total_ops: u64,
    /// Reads among them.
    pub reads: u64,
    /// Successful (key-state-changing) writes among the rest.
    pub effective_writes: u64,
    /// Wall-clock time for the whole fleet.
    pub elapsed: Duration,
}

impl ClientsReport {
    /// Aggregate throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// One connection's private issue state.
struct Connection {
    rng: XorShift64Star,
    remaining: usize,
}

/// Runs the fleet to completion against `map` and returns the accounting.
///
/// Works against any [`ConcurrentMap`] keyed by `u64`-convertible keys —
/// a bare tree, a [`ShardedStore`](lo_store::ShardedStore), or the
/// [`BatchedStore`](lo_store::BatchedStore) frontend — so direct-vs-batched
/// ablations drive byte-identical request streams.
pub fn run_clients<K, M>(map: &M, spec: &ClientsSpec) -> ClientsReport
where
    K: Key + From<u32>,
    M: ConcurrentMap<K, u64>,
{
    assert!(spec.clients > 0 && spec.connections_per_client > 0, "empty fleet");
    assert!(spec.read_pct <= 100, "read_pct is a percentage");
    assert!(spec.keys > 0 && spec.keys <= u64::from(u32::MAX), "key universe fits u32");

    let mut seeder = SplitMix64::new(spec.seed);
    let client_seeds: Vec<u64> = (0..spec.clients).map(|_| seeder.next_u64()).collect();

    let started = Instant::now();
    let (reads, effective_writes) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(spec.clients);
        for &cseed in &client_seeds {
            handles.push(s.spawn(move || {
                let mut conn_seeder = SplitMix64::new(cseed);
                let mut conns: Vec<Connection> = (0..spec.connections_per_client)
                    .map(|_| Connection {
                        rng: XorShift64Star::new(conn_seeder.next_u64()),
                        remaining: spec.ops_per_connection,
                    })
                    .collect();
                let (mut reads, mut effective) = (0u64, 0u64);
                // Round-robin until every connection's budget is spent:
                // each visit issues exactly one request and waits for it
                // (the function call returning IS the completion).
                let mut live = conns.len();
                while live > 0 {
                    for conn in &mut conns {
                        if conn.remaining == 0 {
                            continue;
                        }
                        conn.remaining -= 1;
                        if conn.remaining == 0 {
                            live -= 1;
                        }
                        let key = K::from(conn.rng.next_below(spec.keys) as u32);
                        let roll = conn.rng.next_below(100) as u8;
                        if roll < spec.read_pct {
                            let _ = map.contains(&key);
                            reads += 1;
                        } else if (u64::from(roll) - u64::from(spec.read_pct)) % 2 == 0 {
                            effective += u64::from(map.insert(key, u64::from(roll)));
                        } else {
                            effective += u64::from(map.remove(&key));
                        }
                    }
                }
                (reads, effective)
            }));
        }
        let mut totals = (0u64, 0u64);
        for h in handles {
            let (r, w) = h.join().expect("client thread must not die");
            totals.0 += r;
            totals.1 += w;
        }
        totals
    });

    ClientsReport {
        total_ops: spec.total_ops(),
        reads,
        effective_writes,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lo_api::CheckInvariants;
    use lo_core::LoAvlMap;
    use lo_store::{BatchedStore, ShardedStore};

    #[test]
    fn fleet_runs_its_full_budget() {
        let map: LoAvlMap<i64, u64> = LoAvlMap::new();
        let spec = ClientsSpec { clients: 2, connections_per_client: 3, ..ClientsSpec::new(9) };
        let report = run_clients(&map, &spec);
        assert_eq!(report.total_ops, spec.total_ops());
        assert_eq!(report.total_ops, 2 * 3 * 500);
        assert!(report.reads > 0 && report.effective_writes > 0);
        assert!(report.ops_per_sec() > 0.0);
        map.check_invariants();
    }

    #[test]
    fn read_heavy_mix_respects_the_knob() {
        let map: LoAvlMap<i64, u64> = LoAvlMap::new();
        let spec = ClientsSpec { read_pct: 100, ..ClientsSpec::new(11) };
        let report = run_clients(&map, &spec);
        assert_eq!(report.reads, report.total_ops, "100% reads means only reads");
        assert_eq!(report.effective_writes, 0);
        assert!(map.is_empty(), "an all-read fleet writes nothing");
    }

    #[test]
    fn direct_and_batched_stores_serve_the_same_fleet() {
        // The point of the generic signature: identical spec, three tiers.
        // One client keeps the request stream sequential, so the final key
        // sets must match exactly (with racing clients the last write to a
        // contended key is interleaving-dependent).
        let spec = ClientsSpec { clients: 1, ops_per_connection: 200, ..ClientsSpec::new(23) };
        let direct: ShardedStore<i64, u64> = ShardedStore::hash_sharded(4);
        let batched: BatchedStore<i64, u64> = BatchedStore::hash_sharded(4);
        let a = run_clients(&direct, &spec);
        let b = run_clients(&batched, &spec);
        assert_eq!(a.total_ops, b.total_ops);
        // Same seed ⇒ same request stream ⇒ same final key set.
        assert_eq!(direct.keys_in_order(), batched.inner().keys_in_order());
        direct.check_invariants();
        batched.check_invariants();
    }

    #[test]
    #[should_panic(expected = "read_pct is a percentage")]
    fn overflowing_read_pct_rejected() {
        let map: LoAvlMap<i64, u64> = LoAvlMap::new();
        run_clients(&map, &ClientsSpec { read_pct: 101, ..ClientsSpec::new(1) });
    }
}
