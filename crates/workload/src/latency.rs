//! Operation-latency measurement (extension): the paper argues lock-free
//! lookups matter for tail behaviour — a `contains` can never be blocked by
//! a rebalance or a preempted lock holder. This module samples per-op
//! latencies into a log-scaled histogram so the repro harness can report
//! p50/p99/p999 per operation kind.

use std::time::Instant;

/// Log₂-bucketed latency histogram (nanoseconds, 1ns..~1s).
#[derive(Clone)]
pub struct LatencyHistogram {
    /// bucket i counts samples with latency in [2^i, 2^(i+1)) ns.
    buckets: Vec<u64>,
    count: u64,
    /// Smallest / largest recorded sample; tighten the quantile bounds so
    /// e.g. a single-sample histogram reports that exact sample instead of
    /// its bucket's upper bound.
    min: u64,
    max: u64,
}

const BUCKETS: usize = 32;

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { buckets: vec![0; BUCKETS], count: 0, min: u64::MAX, max: 0 }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        let nanos = nanos.max(1);
        let idx = (64 - nanos.leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Times `f` and records its duration.
    #[inline]
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.record(t0.elapsed().as_nanos() as u64);
        r
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound (ns) of the bucket containing the given quantile
    /// (0.0..=1.0), tightened to the observed `[min, max]` sample range —
    /// so a single-sample histogram reports exactly that sample at every
    /// quantile. Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                let bound = 1u64 << (i + 1).min(63);
                return Some(bound.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `p50/p99/p999` summary line, e.g. `p50<2.0µs p99<16.4µs p999<131µs`;
    /// `"no samples"` when empty.
    pub fn summary(&self) -> String {
        let (Some(p50), Some(p99), Some(p999)) =
            (self.quantile(0.50), self.quantile(0.99), self.quantile(0.999))
        else {
            return "no samples".into();
        };
        format!("p50<{} p99<{} p999<{}", fmt_ns(p50), fmt_ns(p99), fmt_ns(p999))
    }
}

/// Human-scaled nanosecond formatting shared by the summary line and the
/// latency reproduction binary.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("summary", &self.summary())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        // Regression (PR 6): an empty histogram used to report 0ns
        // quantiles, indistinguishable from "instant". Now: no samples,
        // no quantiles.
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.summary(), "no samples");
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // Regression (PR 6): one 100ns sample used to report p999 = 128
        // (its bucket's upper bound). Every quantile of a single-sample
        // histogram IS that sample.
        let mut h = LatencyHistogram::new();
        h.record(100);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(100), "q={q}");
        }
        assert_eq!(h.summary(), "p50<100ns p99<100ns p999<100ns");
    }

    #[test]
    fn quantiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for _ in 0..900 {
            h.record(100); // bucket [64, 128)
        }
        for _ in 0..100 {
            h.record(10_000); // bucket [8192, 16384)
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50).unwrap();
        assert!((128..=256).contains(&p50), "p50 bucket bound: {p50}");
        // The tail quantile lands in the slow bucket; its bound is
        // tightened to the largest observed sample.
        let p999 = h.quantile(0.999).unwrap();
        assert!(p999 >= 10_000, "p999 must cover the slow tail: {p999}");
        assert!(p999 <= 10_000, "p999 must not exceed the largest sample: {p999}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(50);
        b.record(50);
        b.record(5_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    /// Merging per-thread histograms must be exactly equivalent to recording
    /// every sample into a single histogram — same counts, same quantiles.
    #[test]
    fn merge_preserves_quantiles() {
        let samples: [&[u64]; 3] = [
            &[100, 100, 100, 10_000],
            &[50, 200, 300_000],
            &[1, 2_000_000, 90],
        ];
        let mut merged = LatencyHistogram::new();
        let mut reference = LatencyHistogram::new();
        for part in samples {
            let mut h = LatencyHistogram::new();
            for &s in part {
                h.record(s);
                reference.record(s);
            }
            merged.merge(&h);
        }
        assert_eq!(merged.count(), reference.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                merged.quantile(q),
                reference.quantile(q),
                "quantile {q} diverges after merge"
            );
        }
        assert_eq!(merged.summary(), reference.summary());
    }

    #[test]
    fn extreme_values_clamped() {
        let mut h = LatencyHistogram::new();
        h.record(0); // clamps to 1ns bucket
        h.record(u64::MAX); // clamps to top bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).unwrap() > 0);
        assert!(h.quantile(0.0).unwrap() <= 2, "the 0ns sample clamps to the 1ns bucket");
    }

    #[test]
    fn time_records() {
        let mut h = LatencyHistogram::new();
        let v = h.time(|| 7 * 6);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn summary_formats() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        let s = h.summary();
        assert!(s.starts_with("p50<"), "{s}");
    }
}
