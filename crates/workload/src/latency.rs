//! Operation-latency measurement (extension): the paper argues lock-free
//! lookups matter for tail behaviour — a `contains` can never be blocked by
//! a rebalance or a preempted lock holder. This module samples per-op
//! latencies into a log-scaled histogram so the repro harness can report
//! p50/p99/p999 per operation kind.

use std::time::Instant;

/// Log₂-bucketed latency histogram (nanoseconds, 1ns..~1s).
#[derive(Clone)]
pub struct LatencyHistogram {
    /// bucket i counts samples with latency in [2^i, 2^(i+1)) ns.
    buckets: Vec<u64>,
    count: u64,
}

const BUCKETS: usize = 32;

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { buckets: vec![0; BUCKETS], count: 0 }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        let idx = (64 - nanos.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Times `f` and records its duration.
    #[inline]
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.record(t0.elapsed().as_nanos() as u64);
        r
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound (ns) of the bucket containing the given quantile
    /// (0.0..=1.0). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// `p50/p99/p999` summary line, e.g. `p50<2.0µs p99<16.4µs p999<131µs`.
    pub fn summary(&self) -> String {
        fn fmt(ns: u64) -> String {
            if ns >= 1_000_000 {
                format!("{:.1}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}µs", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        format!(
            "p50<{} p99<{} p999<{}",
            fmt(self.quantile(0.50)),
            fmt(self.quantile(0.99)),
            fmt(self.quantile(0.999))
        )
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for _ in 0..900 {
            h.record(100); // bucket [64, 128)
        }
        for _ in 0..100 {
            h.record(10_000); // bucket [8192, 16384)
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50);
        assert!(p50 >= 128 && p50 <= 256, "p50 bucket bound: {p50}");
        let p999 = h.quantile(0.999);
        assert!(p999 >= 16_384, "p999 must cover the slow tail: {p999}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(50);
        b.record(50);
        b.record(5_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    /// Merging per-thread histograms must be exactly equivalent to recording
    /// every sample into a single histogram — same counts, same quantiles.
    #[test]
    fn merge_preserves_quantiles() {
        let samples: [&[u64]; 3] = [
            &[100, 100, 100, 10_000],
            &[50, 200, 300_000],
            &[1, 2_000_000, 90],
        ];
        let mut merged = LatencyHistogram::new();
        let mut reference = LatencyHistogram::new();
        for part in samples {
            let mut h = LatencyHistogram::new();
            for &s in part {
                h.record(s);
                reference.record(s);
            }
            merged.merge(&h);
        }
        assert_eq!(merged.count(), reference.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                merged.quantile(q),
                reference.quantile(q),
                "quantile {q} diverges after merge"
            );
        }
        assert_eq!(merged.summary(), reference.summary());
    }

    #[test]
    fn extreme_values_clamped() {
        let mut h = LatencyHistogram::new();
        h.record(0); // clamps to 1ns bucket
        h.record(u64::MAX); // clamps to top bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > 0);
    }

    #[test]
    fn time_records() {
        let mut h = LatencyHistogram::new();
        let v = h.time(|| 7 * 6);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn summary_formats() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        let s = h.summary();
        assert!(s.starts_with("p50<"), "{s}");
    }
}
