//! Deterministic, allocation-free PRNGs for workload generation.
//!
//! Benchmarks need per-thread generators that are (a) fast enough not to
//! dominate the measured operation, (b) seedable so every trial is
//! reproducible, and (c) independent across threads. `SplitMix64` seeds
//! per-thread `XorShift64Star` streams, mirroring the common Synchrobench
//! setup (the paper's harness draws keys uniformly at random per thread).

/// SplitMix64 — used to derive independent seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xorshift64* — the per-thread workhorse.
#[derive(Clone, Debug)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator; a zero seed is remapped (xorshift must not hold 0).
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 12;
        x ^= x >> 25;
        x ^= x << 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)` (Lemire's multiply-shift; bias is
    /// negligible for benchmark bounds ≪ 2^64).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0.0, 1.0)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A Zipf(θ) sampler over `[0, n)` using an inverted-CDF table.
///
/// Not part of the paper's protocol (it draws keys uniformly); provided for
/// the skew-sensitivity extension experiments.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. O(n) time and memory; `n` up to a few million is
    /// fine.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut XorShift64Star) -> usize {
        let u = rng.next_f64();
        // Binary search for the first cdf entry >= u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn xorshift_bounds() {
        let mut r = XorShift64Star::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn xorshift_zero_seed_ok() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn uniform_coverage() {
        // Every residue class should be hit for a small bound.
        let mut r = XorShift64Star::new(99);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut r = XorShift64Star::new(5);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            let s = z.sample(&mut r);
            assert!(s < 100);
            counts[s] += 1;
        }
        assert!(counts[0] > counts[50] * 3, "rank 0 should dominate rank 50");
    }
}
