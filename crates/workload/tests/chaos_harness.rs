//! Seeded chaos-harness integration tests (require `--features failpoints`
//! from the workspace root, so the dev-dependency `lo-core` is built with
//! fault injection compiled in).

#![cfg(feature = "failpoints")]

use lo_check::fail::{activate, FailPoint, FaultAction, FaultPlan, FaultRule};
use lo_core::{LoAvlMap, LoPeAvlMap, TreeError};
use lo_workload::{run_chaos, ChaosSpec};

/// `lo-core`'s failpoints feature is unified in from the workspace root;
/// a bare `cargo test -p lo-workload --features failpoints` builds a
/// no-op `lo-core`. Detect that and skip rather than fail.
fn injection_compiled_in() -> bool {
    let session = activate(FaultPlan::new(0).fail_at(FailPoint::ArenaAlloc, 1));
    let probe: LoAvlMap<i64, u64> = LoAvlMap::new();
    let r = probe.try_insert(1, 1);
    drop(session);
    r == Err(TreeError::AllocFailed)
}

macro_rules! require_injection {
    () => {
        if !injection_compiled_in() {
            eprintln!("skipping: lo-core built without its failpoints feature");
            return;
        }
    };
}

/// A fixed-seed storm arming a panic at every write-path window; the
/// run must end poisoned with readers coherent (asserted inside
/// `run_chaos`) and exactly one injected death.
#[test]
fn storm_with_panics_at_each_window_stays_coherent() {
    require_injection!();
    for point in [
        FailPoint::InsertOrderingLinked,
        FailPoint::RemoveSuccTreeWindow,
        FailPoint::RemoveAfterMark,
        FailPoint::RemoveMidRelocation,
        FailPoint::RotateMid,
    ] {
        let map = LoAvlMap::new();
        let plan = FaultPlan::new(42).with(point, FaultRule::once(FaultAction::Panic).skip(8));
        let spec = ChaosSpec { initial: 0x0F0F, ..ChaosSpec::new(42) };
        let report = run_chaos(&map, &spec, plan);
        // RemoveMidRelocation/RotateMid need specific shapes and may not
        // be crossed 9+ times in a short run; every other point must die.
        if report.injected_panics > 0 {
            assert_eq!(report.injected_panics, 1, "one-shot plan at {}", point.name());
            assert!(report.poisoned.is_some(), "death at {} must poison", point.name());
        } else {
            assert_eq!(
                report.poisoned, None,
                "no injection at {} must leave the tree healthy",
                point.name()
            );
        }
    }
}

/// The PE variant under the PE-specific window, with enough load that the
/// one-shot panic reliably lands.
#[test]
fn pe_storm_dies_at_pe_after_mark() {
    require_injection!();
    let map = LoPeAvlMap::new();
    let plan = FaultPlan::new(7).panic_at(FailPoint::PeAfterMark);
    let spec = ChaosSpec { threads: 4, ops_per_thread: 400, initial: 0xFFFF, ..ChaosSpec::new(7) };
    let report = run_chaos(&map, &spec, plan);
    assert_eq!(report.injected_panics, 1);
    assert_eq!(report.fired[FailPoint::PeAfterMark.index()], 1);
    assert!(report.poisoned.is_some());
    assert!(report.rejected_writes > 0, "post-death writers must have been rejected");
}

/// Deterministic replay: with a single worker (no scheduling freedom)
/// identical seeds reproduce the run exactly — same occurrence counts,
/// same firings, same outcome. (With multiple workers only the per-
/// occurrence *decisions* are deterministic; how many occurrences each
/// interleaving produces is up to the scheduler.)
#[test]
fn same_seed_same_faults_single_threaded() {
    require_injection!();
    let run = |seed: u64| {
        let map = LoAvlMap::new();
        let plan = FaultPlan::new(seed)
            .delay_at(FailPoint::RemoveAfterMark, 128, 3)
            .fail_at(FailPoint::TreeTryLock, 4);
        let spec =
            ChaosSpec { threads: 1, ops_per_thread: 800, initial: 0xFF, ..ChaosSpec::new(seed) };
        run_chaos(&map, &spec, plan)
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a.fired, b.fired, "same plan seed must fire identically");
    assert_eq!(a.poisoned, b.poisoned);
    assert_eq!(a.ops_completed, b.ops_completed);
    assert!(a.total_fired() > 0, "the plan must have injected something");
}

/// Mid-window panic under a recorded session: the surviving history —
/// including the interrupted-but-linearized operation — passes the WGL
/// linearizability check (asserted inside `run_chaos`).
#[test]
fn interrupted_history_is_linearizable() {
    require_injection!();
    let map = LoAvlMap::new();
    let plan = FaultPlan::new(99)
        .with(FailPoint::RemoveAfterMark, FaultRule::once(FaultAction::Panic).skip(1));
    let spec = ChaosSpec {
        threads: 4,
        keys: 8,
        ops_per_thread: 7,
        initial: 0b0110_1101,
        check_linearizability: true,
        ..ChaosSpec::new(99)
    };
    let report = run_chaos(&map, &spec, plan);
    assert!(report.history_len <= 28);
    if report.injected_panics > 0 {
        assert!(report.poisoned.is_some());
    }
}

/// Simulated allocator exhaustion inside the storm: sampled `AllocFailed`
/// rejections must leave the tree healthy and every failure retryable.
#[test]
fn alloc_exhaustion_is_survivable() {
    require_injection!();
    let map = LoAvlMap::new();
    let plan = FaultPlan::new(5).with(
        FailPoint::ArenaAlloc,
        FaultRule::always(FaultAction::Fail).one_in(4).budget(32),
    );
    let spec = ChaosSpec { initial: 0xF0, ..ChaosSpec::new(5) };
    let report = run_chaos(&map, &spec, plan);
    assert!(report.alloc_failures > 0, "the sampled alloc failpoint must have fired");
    assert_eq!(report.alloc_failures, report.fired[FailPoint::ArenaAlloc.index()]);
    assert_eq!(report.poisoned, None, "alloc failures must not poison");
}

/// A killed-writer round with the flight recorder on must capture exactly
/// one post-mortem dump: parseable Chrome Trace Event JSON with at least
/// one complete span from the storm, and a drained one-shot latch after.
#[cfg(feature = "trace")]
#[test]
fn killed_writer_round_produces_post_mortem_dump() {
    require_injection!();
    lo_trace::set_recording(true);
    let map = LoAvlMap::new();
    let plan = FaultPlan::new(9).panic_at(FailPoint::RemoveAfterMark);
    let spec =
        ChaosSpec { threads: 4, ops_per_thread: 400, initial: 0xFFFF, ..ChaosSpec::new(9) };
    let report = run_chaos(&map, &spec, plan);
    lo_trace::set_recording(false);
    assert_eq!(report.injected_panics, 1, "the armed one-shot panic must land");
    assert!(report.poisoned.is_some());
    let dump = report
        .post_mortem
        .as_deref()
        .expect("a poisoned traced run must capture a post-mortem");
    assert!(dump.starts_with("{\"displayTimeUnit\":\"ns\""), "chrome-trace shape: {dump:.40}");
    assert!(dump.contains("\"traceEvents\":["));
    assert!(dump.ends_with("]}"));
    assert!(
        dump.contains("\"ph\":\"X\""),
        "the dump must contain the storm's spans, not an empty ring set"
    );
    // The latch is one-shot per poisoning: a second take yields nothing.
    assert_eq!(lo_trace::flight::take_post_mortem(), None);
}

/// Range scans keep completing — and stay coherent — on a tree that gets
/// poisoned mid-run: a one-shot panic kills a writer after its mark store,
/// later writers are rejected, but the scan share of every surviving
/// worker's stream still runs to completion (strict ascent and bounds are
/// asserted inside `run_chaos`, and the post-mortem full-range scan is
/// checked against the ordered snapshot of the poisoned tree).
#[test]
fn scans_survive_poisoning() {
    require_injection!();
    let map = LoAvlMap::new();
    let plan = FaultPlan::new(5).panic_at(FailPoint::RemoveAfterMark);
    let spec = ChaosSpec {
        threads: 4,
        ops_per_thread: 400,
        initial: 0xFFFF,
        scan_pct: 25,
        ..ChaosSpec::new(5)
    };
    let report = run_chaos(&map, &spec, plan);
    assert_eq!(report.injected_panics, 1, "the armed one-shot panic must land");
    assert!(report.poisoned.is_some(), "writer death must poison the tree");
    assert!(report.rejected_writes > 0, "post-death writers must be rejected");
    // The three surviving workers process every one of their draws: scans
    // and lookups complete, writes complete or are rejected. Only the dead
    // worker's remaining draws are lost.
    assert!(
        report.ops_completed + report.rejected_writes
            >= ((spec.threads - 1) * spec.ops_per_thread) as u64,
        "survivors must drain their whole op stream ({} completed + {} rejected)",
        report.ops_completed,
        report.rejected_writes
    );
    // A quarter of ~1200 surviving draws are scans; all of them must have
    // completed (coherence is asserted per scan inside the harness).
    assert!(
        report.scans_completed >= 150,
        "scans must keep completing on the poisoned tree (got {})",
        report.scans_completed
    );
}
