//! Kill→recover→resume integration rounds (require `--features failpoints`
//! from the workspace root, so the dev-dependency `lo-core` is built with
//! fault injection compiled in).
//!
//! Every round runs [`lo_workload::run_chaos_recovery`]: a recorded storm
//! with a one-shot panic armed at one write-path window, online recovery
//! with live readers and a queued writer, a recorded resume workload, and
//! a WGL linearizability check over the combined history — every operation
//! that linearized before the death must survive recovery, every kill that
//! did not linearize must leave no trace. The deterministic per-window
//! damage matrix lives in `lo-core`'s `recovery_matrix` test; these rounds
//! exercise the same protocol under real concurrency.

#![cfg(feature = "failpoints")]

use lo_api::PoisonCause;
use lo_core::{LoAvlMap, LoPeAvlMap, TreeError};
use lo_workload::{run_chaos_recovery, RecoveryRoundReport, RecoverySpec};

use lo_check::fail::{activate, FailPoint, FaultPlan};

/// `lo-core`'s failpoints feature is unified in from the workspace root;
/// a bare `cargo test -p lo-workload --features failpoints` builds a
/// no-op `lo-core`. Detect that and skip rather than fail.
fn injection_compiled_in() -> bool {
    let session = activate(FaultPlan::new(0).fail_at(FailPoint::ArenaAlloc, 1));
    let probe: LoAvlMap<i64, u64> = LoAvlMap::new();
    let r = probe.try_insert(1, 1);
    drop(session);
    r == Err(TreeError::AllocFailed)
}

macro_rules! require_injection {
    () => {
        if !injection_compiled_in() {
            eprintln!("skipping: lo-core built without its failpoints feature");
            return;
        }
    };
}

/// One kill→recover→resume round with a one-shot panic at `window`. The
/// PE-only window runs on the partially-external variant; everything else
/// on the classic AVL map.
fn round(window: FailPoint, seed: u64) -> RecoveryRoundReport {
    let spec = RecoverySpec::new(seed);
    let plan = FaultPlan::new(seed).panic_at(window);
    if window == FailPoint::PeAfterMark {
        run_chaos_recovery(&LoPeAvlMap::new(), &spec, plan)
    } else {
        run_chaos_recovery(&LoAvlMap::new(), &spec, plan)
    }
}

/// Windows a tiny mixed workload crosses on its very first eligible
/// operation, so the armed one-shot panic is guaranteed to land.
/// (`PeAfterMark` is not among them: it sits on the ≤1-child physical
/// splice, and whether a storm remove lands on such a node — rather than
/// a two-children key that only turns zombie — is shape-dependent.)
const RELIABLE: [FailPoint; 5] = [
    FailPoint::InsertOrderingLinked,
    FailPoint::RemoveSuccTreeWindow,
    FailPoint::RemoveAfterMark,
    FailPoint::TreeTryLock,
    FailPoint::ArenaAlloc,
];

/// Every failpoint window, kill→recover→resume. The round harness itself
/// asserts the heavy lifting (linearized-op survival, no fabricated keys,
/// full invariants, `Health::Writable`, combined-history WGL); this test
/// adds the per-window accounting: the right cause was recorded, the
/// recovery report is non-empty, and the reliably-crossed windows did die.
#[test]
fn kill_recover_resume_across_all_windows() {
    require_injection!();
    let mut killed = 0;
    for (i, window) in FailPoint::ALL.into_iter().enumerate() {
        let report = round(window, 0xC0FFEE + i as u64);
        if report.killed() {
            killed += 1;
            assert_eq!(
                report.injected_panics, 1,
                "one-shot plan at {} fired more than once",
                window.name()
            );
            assert_eq!(
                report.cause,
                Some(TreeError::Poisoned(PoisonCause::Failpoint(window.name()))),
                "death at {} must poison with its own cause",
                window.name()
            );
            let recovery = report.recovery.as_ref().expect("a killed round must recover");
            assert_eq!(recovery.cause, PoisonCause::Failpoint(window.name()));
            assert!(recovery.generation >= 1, "recovery must bump the generation");
        } else {
            // Shape-dependent windows (mid-relocation, rotation, the
            // optimistic lock window) may not be crossed by 15 storm ops;
            // the harness then asserted that recovery declined cleanly.
            assert!(
                !RELIABLE.contains(&window),
                "the armed kill at {} must land in every round",
                window.name()
            );
            assert!(report.recovery.is_none());
        }
    }
    assert!(
        killed >= RELIABLE.len(),
        "only {killed} of {} windows produced a kill",
        FailPoint::COUNT
    );
}

/// A recovered map is a *fully* live map: kill it a second time and
/// recover again. The recovery generation must keep climbing, and the
/// second round's WGL check runs against the first round's surviving
/// state (the harness reads its initial mask off the map).
#[test]
fn recovered_map_survives_a_second_kill() {
    require_injection!();
    let map = LoAvlMap::new();
    let first = run_chaos_recovery(
        &map,
        &RecoverySpec::new(31),
        FaultPlan::new(31).panic_at(FailPoint::RemoveAfterMark),
    );
    assert!(first.killed(), "remove-after-mark must land");
    let gen1 = first.recovery.as_ref().expect("first recovery").generation;

    let second = run_chaos_recovery(
        &map,
        &RecoverySpec { initial: 0, ..RecoverySpec::new(32) },
        FaultPlan::new(32).panic_at(FailPoint::InsertOrderingLinked),
    );
    assert!(second.killed(), "insert-ordering-linked must land");
    let gen2 = second.recovery.as_ref().expect("second recovery").generation;
    assert!(gen2 > gen1, "generation must climb across recoveries ({gen1} -> {gen2})");
}

/// The storm phase keeps the classic poisoned-tree semantics: writers that
/// arrive after the death and before recovery are rejected up front, and
/// those rejections leave no trace in the (linearizable) history.
#[test]
fn post_death_writers_are_rejected_then_resumed() {
    require_injection!();
    let report = round(FailPoint::RemoveAfterMark, 7);
    assert!(report.killed());
    // Whether any storm thread raced past the death is scheduling-luck,
    // but the accounting must balance: rejections + the queued writer's
    // retries all happened on a poisoned or recovering map that ended
    // writable (asserted in the harness).
    assert!(report.history_len > 0, "the round must record a history");
}
