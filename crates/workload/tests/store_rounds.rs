//! Integration rounds for the sharded store (ISSUE 10): blast-radius
//! chaos with an armed fault plan, and WGL linearizability evidence for
//! the flat-combining batched frontend.

use lo_api::CheckInvariants;
use lo_check::fail::{activate, FailPoint, FaultPlan};
use lo_core::TreeError;
use lo_store::BatchedStore;
use lo_workload::{run_chaos, run_chaos_store, ChaosSpec, StoreChaosSpec};

/// Whether `lo-core` was actually built with its failpoints feature (the
/// workspace root unifies it in; a bare `-p lo-workload --features
/// failpoints` build arms nothing). Probe, don't assume.
fn injection_compiled_in() -> bool {
    let session = activate(FaultPlan::new(0).fail_at(FailPoint::ArenaAlloc, 1));
    let probe: lo_core::LoAvlMap<i64, u64> = lo_core::LoAvlMap::new();
    let r = probe.try_insert(1, 1);
    drop(session);
    r == Err(TreeError::AllocFailed)
}

/// The armed round: a one-shot writer death lands on exactly one shard;
/// the harness itself asserts degraded service on the others, online
/// recovery under concurrent load, and the rejoin. Fixed seed — this is
/// the CI row.
#[cfg(feature = "failpoints")]
#[test]
fn poisoned_shard_keeps_its_blast_radius() {
    if !injection_compiled_in() {
        eprintln!("skipping: lo-core built without its failpoints feature");
        return;
    }
    let spec = StoreChaosSpec::new(42);
    let plan = FaultPlan::new(42).panic_at(FailPoint::RemoveAfterMark);
    let report = run_chaos_store(&spec, plan);
    assert_eq!(report.injected_panics, 1, "the one-shot panic must land");
    assert_eq!(
        report.degraded_mask.count_ones(),
        1,
        "one writer death poisons exactly one shard (mask {:#b})",
        report.degraded_mask
    );
    assert!(report.rejected_writes > 0, "storm writers must have hit the poisoned shard");
    assert_eq!(report.generation, 1, "one shard repaired, generation 1");
    let recovery = report.recovery.expect("a degraded round must recover");
    assert!(recovery.nodes_salvaged > 0, "the repaired shard was not empty");
    assert_eq!(report.fired[FailPoint::RemoveAfterMark.index()], 1);
}

/// Same spec and plan seed, twice: the storm is scheduled freely, but the
/// round-level outcome classification must stay self-consistent and both
/// rounds must end fully writable (asserted inside the harness).
#[cfg(feature = "failpoints")]
#[test]
fn armed_store_rounds_always_end_writable() {
    if !injection_compiled_in() {
        eprintln!("skipping: lo-core built without its failpoints feature");
        return;
    }
    for seed in [7, 1234] {
        let spec = StoreChaosSpec { threads: 3, ops_per_thread: 200, ..StoreChaosSpec::new(seed) };
        let plan = FaultPlan::new(seed).panic_at(FailPoint::InsertOrderingLinked);
        let report = run_chaos_store(&spec, plan);
        assert_eq!(
            u64::from(report.degraded_mask.count_ones()),
            report.generation,
            "every degraded shard was repaired exactly once"
        );
        assert_eq!(report.injected_panics, u64::from(report.degraded_mask != 0));
    }
}

/// The batched frontend under the tree-level chaos harness with an EMPTY
/// plan: a small recorded storm through the combiner lanes must pass the
/// Wing–Gong linearizability check. (Armed plans stay off the batched
/// path: an injected panic is ferried to the submitting client, but the
/// thread-local injection latch lives on the combiner's thread, so the
/// classification below would misread it.)
#[test]
fn batched_store_history_is_linearizable() {
    let store: BatchedStore<i64, u64> = BatchedStore::hash_sharded(4);
    let spec = ChaosSpec {
        threads: 4,
        keys: 8,
        ops_per_thread: 7,
        initial: 0b1010_0110,
        check_linearizability: true,
        ..ChaosSpec::new(31)
    };
    let report = run_chaos(&store, &spec, FaultPlan::new(31));
    assert_eq!(report.injected_panics, 0);
    assert_eq!(report.poisoned, None);
    assert!(report.history_len <= 28);
    assert_eq!(report.ops_completed, (spec.threads * spec.ops_per_thread) as u64);
    store.check_invariants();
}

/// The clean store round must also hold on the default build (no
/// failpoints): zero degradation, recovery declines, full budget runs.
#[test]
fn clean_store_round_runs_everywhere() {
    let spec = StoreChaosSpec { shards: 8, keys: 512, ..StoreChaosSpec::new(3) };
    let report = run_chaos_store(&spec, FaultPlan::new(3));
    assert_eq!(report.degraded_mask, 0);
    assert_eq!(report.generation, 0);
    assert!(report.recovery.is_none());
}
