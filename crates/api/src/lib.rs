//! Shared traits for the logical-ordering tree suite.
//!
//! Every concurrent ordered dictionary in this workspace — the paper's
//! logical-ordering trees in [`lo-core`](../lo_core/index.html) and the
//! comparator suite in [`lo-baselines`](../lo_baselines/index.html) —
//! implements [`ConcurrentMap`], so the workload harness, the stress tester
//! and the benchmarks can drive any of them interchangeably.
//!
//! The paper implements a *map* (§3 "our actual implementation and evaluation
//! use a more general implementation of a map"), so the map interface is the
//! primary one; [`ConcurrentSet`] is a thin adapter over `ConcurrentMap<K, ()>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;

/// Marker bundle for key types accepted by every tree in the suite.
///
/// Keys are copied into routing nodes by the external trees (EFRB, chromatic,
/// Natarajan-Mittal), so `Copy` is required; `Ord` drives the search; the
/// `Send + Sync + 'static` bounds let nodes move across threads and outlive
/// the inserting thread.
pub trait Key: Ord + Copy + Send + Sync + Debug + 'static {}
impl<T: Ord + Copy + Send + Sync + Debug + 'static> Key for T {}

/// Marker bundle for value types.
pub trait Value: Send + Sync + 'static {}
impl<T: Send + Sync + 'static> Value for T {}

/// A linearizable concurrent ordered map.
///
/// Semantics follow the paper's interface:
/// * [`insert`](Self::insert) has *put-if-absent* semantics: it is a no-op
///   returning `false` when the key is already present (it does **not**
///   overwrite). Implementations that also support overwriting expose it as
///   a separate inherent `put` method — e.g. the `lo-core` maps' `put`
///   returns the previous value and replaces it in place — rather than
///   through this trait,
/// * [`remove`](Self::remove) returns whether the key was present,
/// * [`contains`](Self::contains) must be safe to run concurrently with any
///   mix of mutating operations.
pub trait ConcurrentMap<K: Key, V: Value>: Send + Sync {
    /// Inserts `key -> value` if `key` is absent. Returns `true` on a
    /// successful (i.e. key-was-absent) insertion.
    fn insert(&self, key: K, value: V) -> bool;

    /// Removes `key`. Returns `true` if the key was present (successful
    /// removal).
    fn remove(&self, key: &K) -> bool;

    /// Returns whether `key` is present.
    fn contains(&self, key: &K) -> bool;

    /// Returns a clone of the value mapped to `key`, if present.
    fn get(&self, key: &K) -> Option<V>
    where
        V: Clone;

    /// A short stable identifier used in benchmark tables (e.g. `"lo-avl"`).
    fn name(&self) -> &'static str;
}

/// Concurrent-safe ordered reads (paper §4.7): O(1) min/max via the
/// sentinel `succ`/`pred` pointers, ceiling/floor queries and streaming
/// range scans over the logical-ordering list.
///
/// Every method is safe to call concurrently with any mix of mutating
/// operations, and each *individual* key an implementation reports was
/// live at some instant during the call. A multi-key scan is **not** an
/// atomic snapshot: keys observed early in the scan may be removed (and
/// keys ahead of the cursor inserted) while the scan is still running.
/// What is guaranteed: keys are yielded in strictly ascending order, the
/// scan stays within its bounds, and it terminates.
///
/// This trait is where the logical-ordering design pays off structurally:
/// maps whose nodes carry `pred`/`succ` ordering pointers (the `lo-core`
/// trees) and linked-list-based structures (the skip list) implement it
/// natively. External/leaf-oriented trees without an ordering layer (EFRB,
/// Natarajan-Mittal, chromatic, ...) structurally cannot — they only get
/// [`QuiescentOrdered`] snapshots.
pub trait OrderedRead<K: Key> {
    /// Smallest key currently in the map, if any.
    fn min_key(&self) -> Option<K>;

    /// Largest key currently in the map, if any.
    fn max_key(&self) -> Option<K>;

    /// Smallest live key `>= key`, if any.
    fn ceiling_key(&self, key: &K) -> Option<K>;

    /// Largest live key `<= key`, if any.
    fn floor_key(&self, key: &K) -> Option<K>;

    /// Streams every live key in `range` (ascending, strictly increasing)
    /// into `f`, without materialising the whole result.
    fn scan_range(&self, range: std::ops::RangeInclusive<K>, f: &mut dyn FnMut(K));

    /// Number of live keys in `range` (one streaming pass, no allocation).
    fn range_count(&self, range: std::ops::RangeInclusive<K>) -> usize {
        let mut n = 0;
        self.scan_range(range, &mut |_| n += 1);
        n
    }

    /// Collects the live keys in `range`, ascending.
    fn range_keys(&self, range: std::ops::RangeInclusive<K>) -> Vec<K> {
        let mut out = Vec::new();
        self.scan_range(range, &mut |k| out.push(k));
        out
    }
}

/// Full-structure ordered snapshots, only meaningful at quiescence.
///
/// Every map in the suite can produce an in-order key dump by traversing
/// its layout while no other thread is mutating it — that requires no
/// ordering layer, so even the external-tree baselines implement this.
/// Structures that additionally support *concurrent* ordered reads
/// implement [`OrderedRead`] on top.
pub trait QuiescentOrdered<K: Key> {
    /// All keys in ascending order. Only meaningful at quiescence; used by
    /// tests, invariant checks and examples. Concurrent-safe
    /// implementations may return a point-in-time-ish snapshot.
    fn keys_in_order(&self) -> Vec<K>;
}

/// Quiescent self-validation hook: verifies every structural invariant the
/// implementation promises (BST order, balance bounds, ordering-layout
/// consistency, ...). Panics with a diagnostic on violation.
///
/// Must only be called while no other thread is operating on the structure.
pub trait CheckInvariants {
    /// Run all internal invariant checks; panic on the first violation.
    fn check_invariants(&self);
}

/// Why a tree transitioned to the poisoned state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoisonCause {
    /// An injected fault (the named failpoint) panicked a writer inside a
    /// critical window.
    Failpoint(&'static str),
    /// A restart loop exceeded the configured `LO_MAX_RESTARTS` bound
    /// (contention-storm / livelock tripwire).
    RestartStorm,
    /// A writer panicked for a reason the tree did not inject (a genuine
    /// bug, or a panic from user code such as a key comparator).
    Panic,
    /// An injected fault at a failpoint index this binary does not know —
    /// the poison word was written by a newer binary with more failpoints
    /// (e.g. a post-mortem decoded across a version skew). The raw index is
    /// carried so the post-mortem stays unambiguous.
    UnknownFailpoint(u32),
}

impl std::fmt::Display for PoisonCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoisonCause::Failpoint(name) => write!(f, "injected fault at failpoint `{name}`"),
            PoisonCause::RestartStorm => write!(f, "restart budget exceeded (LO_MAX_RESTARTS)"),
            PoisonCause::Panic => write!(f, "writer panicked"),
            PoisonCause::UnknownFailpoint(idx) => {
                write!(f, "injected fault at unknown failpoint #{idx} (newer binary?)")
            }
        }
    }
}

/// Error returned by the fallible write entry points ([`FallibleMap`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// A writer died inside a critical window; the tree released its locks
    /// and atomically poisoned itself. Reads (`contains`, `get`, ordered
    /// access) remain correct; all further writes are rejected with this
    /// error.
    Poisoned(PoisonCause),
    /// Node allocation failed (allocator exhaustion). The operation had no
    /// effect; the tree remains healthy and the call may be retried.
    AllocFailed,
    /// A recoverer is repairing the tree right now. The operation had no
    /// effect; retry (with backoff) — the tree will shortly be either
    /// writable again or re-poisoned with the original cause.
    Recovering,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Poisoned(cause) => write!(f, "tree poisoned: {cause}"),
            TreeError::AllocFailed => write!(f, "node allocation failed"),
            TreeError::Recovering => write!(f, "tree is recovering; retry shortly"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Writability state of a map, as reported by [`FallibleMap::health`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Healthy: writes are accepted.
    Writable,
    /// A writer death poisoned the structure; reads work, writes are
    /// rejected until a successful [`FallibleMap::try_recover`].
    Poisoned(PoisonCause),
    /// A recoverer is quarantining/repairing the structure right now.
    Recovering,
    /// A *composed* map (the sharded store) with some shards unwritable:
    /// `shards` is a bitmask of degraded shard indices (bit *i* set ⇔ shard
    /// *i* is poisoned or recovering; at most 64 shards). Reads still work
    /// everywhere; writes succeed on every shard whose bit is clear.
    Degraded {
        /// Bitmask of unwritable shard indices.
        shards: u64,
    },
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Health::Writable => write!(f, "writable"),
            Health::Poisoned(cause) => write!(f, "poisoned: {cause}"),
            Health::Recovering => write!(f, "recovering"),
            Health::Degraded { shards } => {
                write!(f, "degraded: shards [")?;
                let mut first = true;
                for i in 0..64 {
                    if shards & (1 << i) != 0 {
                        if !first {
                            write!(f, ", ")?;
                        }
                        write!(f, "{i}")?;
                        first = false;
                    }
                }
                write!(f, "] unwritable")
            }
        }
    }
}

/// How [`FallibleMap::try_recover`] repaired the damaged layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairStrategy {
    /// The audit found the physical layout consistent with the surviving
    /// succ chain after window-local fixes; no structural rebuild was
    /// needed.
    AuditOnly,
    /// The layout was rebuilt in place over the surviving chain nodes (the
    /// common case: the chain is the durable truth, the layout is derived).
    InPlace,
    /// The chain itself was not trusted (genuine panic, unknown damage):
    /// every reachable key/value pair was streamed into fresh nodes and the
    /// old structure was retired wholesale.
    StreamingRebuild,
}

impl std::fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RepairStrategy::AuditOnly => "audit-only",
            RepairStrategy::InPlace => "in-place",
            RepairStrategy::StreamingRebuild => "streaming-rebuild",
        };
        write!(f, "{s}")
    }
}

/// Why [`FallibleMap::try_recover`] declined or failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoverError {
    /// The structure is healthy — nothing to recover.
    NotPoisoned,
    /// Another thread is already recovering this structure; retry or poll
    /// [`FallibleMap::health`].
    Busy,
    /// Post-repair verification failed: the structure was re-poisoned with
    /// its original cause and stays read-only.
    VerifyFailed,
    /// This map type does not support online recovery (default for
    /// implementations that never poison).
    Unsupported,
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::NotPoisoned => write!(f, "tree is not poisoned"),
            RecoverError::Busy => write!(f, "recovery already in progress"),
            RecoverError::VerifyFailed => {
                write!(f, "post-repair verification failed; tree re-poisoned")
            }
            RecoverError::Unsupported => write!(f, "this map does not support recovery"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Post-mortem of one successful online recovery, returned by
/// [`FallibleMap::try_recover`].
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Why the structure was poisoned.
    pub cause: PoisonCause,
    /// How the layout was repaired.
    pub strategy: RepairStrategy,
    /// In-flight writers the quarantine gate drained before the audit.
    pub writers_drained: u32,
    /// Live nodes carried over into the repaired structure.
    pub nodes_salvaged: usize,
    /// Nodes found unreachable from the surviving chain (or replaced by the
    /// streaming rebuild) and retired through epoch reclamation.
    pub nodes_orphaned: usize,
    /// Stranded removal marks force-completed during the audit (the marked
    /// node's half-done splice was finished and the node orphaned).
    pub marks_completed: usize,
    /// Version words whose seqlock parity was left odd by the unwinding
    /// writer and repaired to the stable (even) phase.
    pub parity_repairs: usize,
    /// Recovery generation after the un-poison CAS (strictly increasing per
    /// tree; generation 0 is the tree as constructed).
    pub generation: u32,
    /// Wall-clock time from quarantine entry to writable.
    pub elapsed: std::time::Duration,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered ({}) from `{}` in {:?}: drained {} writer(s), salvaged {} node(s), \
             orphaned {}, completed {} stranded mark(s), repaired {} version word(s), \
             generation {}",
            self.strategy,
            self.cause,
            self.elapsed,
            self.writers_drained,
            self.nodes_salvaged,
            self.nodes_orphaned,
            self.marks_completed,
            self.parity_repairs,
            self.generation
        )
    }
}

/// Fallible write extension: maps that can reject writes instead of
/// panicking or aborting — on allocation failure ([`TreeError::AllocFailed`])
/// and after a writer death poisoned the structure
/// ([`TreeError::Poisoned`]).
///
/// The infallible [`ConcurrentMap`] methods on the same map are equivalent
/// to `try_*(..).unwrap()`-style behavior: they panic on `Poisoned` and
/// abort-by-panic on allocation failure.
pub trait FallibleMap<K: Key, V: Value>: ConcurrentMap<K, V> {
    /// Fallible [`ConcurrentMap::insert`].
    fn try_insert(&self, key: K, value: V) -> Result<bool, TreeError>;

    /// Fallible [`ConcurrentMap::remove`].
    fn try_remove(&self, key: &K) -> Result<bool, TreeError>;

    /// Current poison state: `None` while healthy, `Some(error)` once a
    /// writer death has poisoned the tree (or, transiently,
    /// `Some(TreeError::Recovering)` while a recoverer holds the structure).
    fn poisoned(&self) -> Option<TreeError>;

    /// Current writability state, derived from [`Self::poisoned`] by
    /// default.
    fn health(&self) -> Health {
        match self.poisoned() {
            None => Health::Writable,
            Some(TreeError::Recovering) => Health::Recovering,
            Some(TreeError::Poisoned(cause)) => Health::Poisoned(cause),
            // `poisoned()` never reports a per-operation error, but the
            // conservative reading of a nonstandard implementation is
            // "not writable right now".
            Some(TreeError::AllocFailed) => Health::Recovering,
        }
    }

    /// Attempts to take a poisoned structure back to writable, online:
    /// quarantine in-flight writers, audit the damage, repair the layout
    /// from the surviving ordering chain, verify, and un-poison. Readers
    /// are never blocked. Exactly one caller wins; concurrent callers get
    /// [`RecoverError::Busy`].
    ///
    /// The default declines ([`RecoverError::Unsupported`]) so map types
    /// that never poison (baselines) keep compiling; the `lo-core` maps
    /// override it with the real protocol.
    fn try_recover(&self) -> Result<RecoveryReport, RecoverError> {
        Err(RecoverError::Unsupported)
    }
}

/// A concurrent set view over any `ConcurrentMap<K, ()>`.
pub struct ConcurrentSet<K: Key, M: ConcurrentMap<K, ()>> {
    map: M,
    _k: std::marker::PhantomData<K>,
}

impl<K: Key, M: ConcurrentMap<K, ()>> ConcurrentSet<K, M> {
    /// Wraps a unit-valued map as a set.
    pub fn new(map: M) -> Self {
        Self { map, _k: std::marker::PhantomData }
    }

    /// Adds `key`; `true` if it was absent.
    pub fn add(&self, key: K) -> bool {
        self.map.insert(key, ())
    }

    /// Removes `key`; `true` if it was present.
    pub fn remove(&self, key: &K) -> bool {
        self.map.remove(key)
    }

    /// Membership test; lock-free whenever the underlying map's `contains` is.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains(key)
    }

    /// Borrows the underlying map.
    pub fn as_map(&self) -> &M {
        &self.map
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // reference map, not tree-protocol state
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Tiny reference implementation so the trait itself is exercised.
    struct MutexMap<K: Key, V: Value>(Mutex<BTreeMap<K, V>>);

    impl<K: Key, V: Value> ConcurrentMap<K, V> for MutexMap<K, V> {
        fn insert(&self, key: K, value: V) -> bool {
            let mut g = self.0.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = g.entry(key) {
                e.insert(value);
                true
            } else {
                false
            }
        }
        fn remove(&self, key: &K) -> bool {
            self.0.lock().unwrap().remove(key).is_some()
        }
        fn contains(&self, key: &K) -> bool {
            self.0.lock().unwrap().contains_key(key)
        }
        fn get(&self, key: &K) -> Option<V>
        where
            V: Clone,
        {
            self.0.lock().unwrap().get(key).cloned()
        }
        fn name(&self) -> &'static str {
            "mutex-btreemap"
        }
    }

    #[test]
    fn map_contract() {
        let m = MutexMap(Mutex::new(BTreeMap::new()));
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11), "duplicate insert must fail");
        assert_eq!(m.get(&1), Some(10), "failed insert must not overwrite");
        assert!(m.contains(&1));
        assert!(m.remove(&1));
        assert!(!m.remove(&1));
        assert!(!m.contains(&1));
    }

    #[test]
    fn tree_error_display() {
        let e = TreeError::Poisoned(PoisonCause::Failpoint("remove-after-mark"));
        assert_eq!(
            e.to_string(),
            "tree poisoned: injected fault at failpoint `remove-after-mark`"
        );
        assert_eq!(
            TreeError::Poisoned(PoisonCause::RestartStorm).to_string(),
            "tree poisoned: restart budget exceeded (LO_MAX_RESTARTS)"
        );
        assert_eq!(TreeError::AllocFailed.to_string(), "node allocation failed");
        assert_eq!(TreeError::Recovering.to_string(), "tree is recovering; retry shortly");
        assert_eq!(
            TreeError::Poisoned(PoisonCause::UnknownFailpoint(42)).to_string(),
            "tree poisoned: injected fault at unknown failpoint #42 (newer binary?)"
        );
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().contains("remove-after-mark"));
    }

    #[test]
    fn recovery_surface_defaults() {
        // A plain FallibleMap gets `health()` and a declining `try_recover()`
        // for free.
        struct NeverPoisons(MutexMap<i64, u64>);
        impl ConcurrentMap<i64, u64> for NeverPoisons {
            fn insert(&self, key: i64, value: u64) -> bool {
                self.0.insert(key, value)
            }
            fn remove(&self, key: &i64) -> bool {
                self.0.remove(key)
            }
            fn contains(&self, key: &i64) -> bool {
                self.0.contains(key)
            }
            fn get(&self, key: &i64) -> Option<u64> {
                self.0.get(key)
            }
            fn name(&self) -> &'static str {
                "never-poisons"
            }
        }
        impl FallibleMap<i64, u64> for NeverPoisons {
            fn try_insert(&self, key: i64, value: u64) -> Result<bool, TreeError> {
                Ok(self.insert(key, value))
            }
            fn try_remove(&self, key: &i64) -> Result<bool, TreeError> {
                Ok(self.remove(key))
            }
            fn poisoned(&self) -> Option<TreeError> {
                None
            }
        }
        let m = NeverPoisons(MutexMap(Mutex::new(BTreeMap::new())));
        assert_eq!(m.health(), Health::Writable);
        assert_eq!(m.try_recover(), Err(RecoverError::Unsupported));
        assert_eq!(Health::Writable.to_string(), "writable");
        assert_eq!(
            Health::Poisoned(PoisonCause::Panic).to_string(),
            "poisoned: writer panicked"
        );
        assert_eq!(RepairStrategy::InPlace.to_string(), "in-place");
        assert_eq!(
            Health::Degraded { shards: 0b101 }.to_string(),
            "degraded: shards [0, 2] unwritable"
        );
        let report = RecoveryReport {
            cause: PoisonCause::Panic,
            strategy: RepairStrategy::StreamingRebuild,
            writers_drained: 2,
            nodes_salvaged: 10,
            nodes_orphaned: 3,
            marks_completed: 1,
            parity_repairs: 4,
            generation: 1,
            elapsed: std::time::Duration::from_micros(50),
        };
        let text = report.to_string();
        assert!(text.contains("streaming-rebuild"));
        assert!(text.contains("salvaged 10"));
        assert!(text.contains("generation 1"));
    }

    #[test]
    fn set_adapter() {
        let s = ConcurrentSet::new(MutexMap(Mutex::new(BTreeMap::new())));
        assert!(s.add(7));
        assert!(!s.add(7));
        assert!(s.contains(&7));
        assert!(s.remove(&7));
        assert!(!s.contains(&7));
        assert_eq!(s.as_map().name(), "mutex-btreemap");
    }
}
