//! Concurrent stress tests.
//!
//! Strategy: hammer the tree from several threads with a mixed workload,
//! tracking each thread's net count of *successful* inserts minus removes.
//! Because the structure is linearizable, the final size must equal the sum
//! of the nets, and the quiescent structure must satisfy every invariant
//! (ordering chain == tree layout, strict AVL balance, no locks held, ...).

use lo_api::{CheckInvariants, ConcurrentMap, QuiescentOrdered};
use lo_core::{LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// Simple xorshift to avoid depending on rand here.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn stress<M>(map: &M, threads: usize, key_space: i64, ops_per_thread: usize)
where
    M: ConcurrentMap<i64, u64> + CheckInvariants + QuiescentOrdered<i64> + Sync,
{
    let barrier = Barrier::new(threads);
    let running = AtomicBool::new(true);
    let nets: Vec<i64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = &barrier;
                let running = &running;
                scope.spawn(move || {
                    let mut rng = Rng(0x9E3779B97F4A7C15 ^ ((t as u64 + 1) * 0x1234567));
                    let mut net = 0i64;
                    barrier.wait();
                    for i in 0..ops_per_thread {
                        let k = rng.below(key_space as u64) as i64;
                        match rng.below(100) {
                            0..=39 => {
                                // Interleave reads through hot structure.
                                let _ = map.contains(&k);
                                let _ = map.get(&k);
                            }
                            40..=69 => {
                                if map.insert(k, k as u64) {
                                    net += 1;
                                }
                            }
                            _ => {
                                if map.remove(&k) {
                                    net -= 1;
                                }
                            }
                        }
                        // Encourage preemption-based interleavings on
                        // single-core hosts.
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    let _ = running.load(Ordering::Relaxed);
                    net
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress worker panicked")).collect()
    });

    let expected_len: i64 = nets.iter().sum();
    assert!(expected_len >= 0, "net size can never be negative");
    assert_eq!(map.keys_in_order().len() as i64, expected_len, "final size mismatch");
    map.check_invariants();
    // Every surviving key answers contains()/get() consistently.
    for k in map.keys_in_order() {
        assert!(map.contains(&k));
        assert_eq!(map.get(&k), Some(k as u64));
    }
    // Sorted-unique snapshot.
    let keys = map.keys_in_order();
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "snapshot not strictly sorted");
}

const OPS: usize = if cfg!(debug_assertions) { 30_000 } else { 120_000 };

macro_rules! stress_suite {
    ($mod_name:ident, $ty:ident) => {
        mod $mod_name {
            use super::*;

            #[test]
            fn high_contention_tiny_keyspace() {
                // Key space of 8: constant collisions, every interval lock
                // contended, lots of 2-children removals at the root.
                stress(&$ty::new(), 4, 8, OPS / 4);
            }

            #[test]
            fn medium_contention() {
                stress(&$ty::new(), 4, 512, OPS / 2);
            }

            #[test]
            fn low_contention_large_keyspace() {
                stress(&$ty::new(), 8, 100_000, OPS / 4);
            }

            #[test]
            fn two_threads_long_run() {
                stress(&$ty::new(), 2, 64, OPS);
            }
        }
    };
}

stress_suite!(avl, LoAvlMap);
stress_suite!(bst, LoBstMap);
stress_suite!(pe_avl, LoPeAvlMap);
stress_suite!(pe_bst, LoPeBstMap);

/// Readers running against a mutator must never observe a key that was
/// inserted before they started and never removed (the paper's Figure 1
/// guarantee, generalized).
#[test]
fn stable_keys_always_visible() {
    let map = LoAvlMap::new();
    // Stable keys: multiples of 10 — never removed.
    let stable: Vec<i64> = (0..50).map(|i| i * 10).collect();
    for &k in &stable {
        assert!(map.insert(k, k as u64));
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let map = &map;
        let stop = &stop;
        let stable = &stable;
        // Mutator: churns non-stable keys around the stable ones, forcing
        // rotations and 2-children removals that relocate stable nodes.
        scope.spawn(move || {
            let mut rng = Rng(42);
            for _ in 0..OPS {
                let k = rng.below(500) as i64;
                if k % 10 == 0 {
                    continue;
                }
                if rng.below(2) == 0 {
                    map.insert(k, k as u64);
                } else {
                    map.remove(&k);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Readers: stable keys must be visible on every single probe.
        for _ in 0..3 {
            scope.spawn(move || {
                let mut rng = Rng(7);
                while !stop.load(Ordering::Relaxed) {
                    let k = stable[rng.below(stable.len() as u64) as usize];
                    assert!(map.contains(&k), "stable key {k} vanished during lookup");
                }
            });
        }
    });
    map.check_invariants();
}

/// Regression test for the `N−∞`-as-parent hole (Algorithm 4 as written in
/// the paper): inserting a new minimum while the previous minimum's physical
/// unlink is still in flight must not link the node under the ordering-only
/// sentinel. Two threads churn the two smallest keys so the new-minimum
/// insert constantly races a pending unlink at the successor's left slot.
#[test]
fn new_minimum_races_pending_unlink() {
    fn churn<M>(map: &M)
    where
        M: lo_api::ConcurrentMap<i64, u64> + lo_api::CheckInvariants + Sync,
    {
        assert!(map.insert(100, 0), "anchor key");
        std::thread::scope(|scope| {
            for t in 0..2i64 {
                scope.spawn(move || {
                    for i in 0..OPS / 2 {
                        map.insert(t, 0);
                        map.remove(&t);
                        if i % 32 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        // The anchor must still be reachable via the *tree layout*: the
        // invariant check compares layout in-order against the ordering
        // chain, so a node lost under the sentinel is detected.
        assert!(map.contains(&100));
        map.check_invariants();
    }
    churn(&LoAvlMap::new());
    churn(&LoBstMap::new());
    churn(&LoPeAvlMap::new());
    churn(&LoPeBstMap::new());
}

/// min/max under concurrent churn must always return either a live key or a
/// key that was concurrently being inserted/removed — and never panic or
/// hang.
#[test]
fn min_max_under_churn() {
    let map = LoBstMap::new();
    assert!(map.insert(-1_000_000, 0)); // stable global min
    assert!(map.insert(1_000_000, 0)); // stable global max
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let map = &map;
        let stop = &stop;
        scope.spawn(move || {
            let mut rng = Rng(3);
            for _ in 0..OPS / 2 {
                let k = rng.below(1000) as i64 - 500;
                if rng.below(2) == 0 {
                    map.insert(k, 0);
                } else {
                    map.remove(&k);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                assert_eq!(map.min_key(), Some(-1_000_000));
                assert_eq!(map.max_key(), Some(1_000_000));
            }
        });
    });
    map.check_invariants();
}
