//! Sequential oracle tests: every variant must behave exactly like a
//! `BTreeMap` under arbitrary operation sequences, and satisfy all
//! structural invariants afterwards.

use lo_api::{CheckInvariants, ConcurrentMap, OrderedRead, QuiescentOrdered};
use lo_core::{LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64),
    Remove(i64),
    Contains(i64),
}

fn op_strategy(key_space: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space).prop_map(Op::Insert),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Contains),
    ]
}

fn check_against_oracle<M>(map: &M, ops: &[Op])
where
    M: ConcurrentMap<i64, u64> + CheckInvariants + OrderedRead<i64> + QuiescentOrdered<i64>,
{
    let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                let expected = !oracle.contains_key(&k);
                if expected {
                    oracle.insert(k, k as u64);
                }
                assert_eq!(map.insert(k, k as u64), expected, "insert({k}) at step {i}");
            }
            Op::Remove(k) => {
                let expected = oracle.remove(&k).is_some();
                assert_eq!(map.remove(&k), expected, "remove({k}) at step {i}");
            }
            Op::Contains(k) => {
                assert_eq!(map.contains(&k), oracle.contains_key(&k), "contains({k}) at step {i}");
                assert_eq!(map.get(&k), oracle.get(&k).copied(), "get({k}) at step {i}");
            }
        }
    }
    map.check_invariants();
    let keys: Vec<i64> = oracle.keys().copied().collect();
    assert_eq!(map.keys_in_order(), keys, "final in-order keys");
    assert_eq!(map.min_key(), keys.first().copied());
    assert_eq!(map.max_key(), keys.last().copied());
}

macro_rules! oracle_suite {
    ($mod_name:ident, $ty:ident) => {
        mod $mod_name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(64))]
                #[test]
                fn random_ops_small_space(ops in prop::collection::vec(op_strategy(16), 1..400)) {
                    check_against_oracle(&$ty::new(), &ops);
                }

                #[test]
                fn random_ops_large_space(ops in prop::collection::vec(op_strategy(1_000), 1..400)) {
                    check_against_oracle(&$ty::new(), &ops);
                }
            }

            #[test]
            fn ascending_then_descending() {
                let m = $ty::new();
                let ops: Vec<Op> = (0..200)
                    .map(Op::Insert)
                    .chain((0..200).rev().map(Op::Remove))
                    .collect();
                check_against_oracle(&m, &ops);
            }

            #[test]
            fn interleaved_insert_remove() {
                let m = $ty::new();
                // Insert evens, remove odds (absent), then flip.
                let mut ops = Vec::new();
                for k in 0..300i64 {
                    ops.push(Op::Insert(k * 2));
                    ops.push(Op::Remove(k * 2 + 1));
                }
                for k in 0..300i64 {
                    ops.push(Op::Remove(k * 2));
                    ops.push(Op::Insert(k * 2 + 1));
                }
                check_against_oracle(&m, &ops);
            }

            #[test]
            fn two_children_removals() {
                // Build a full tree, then remove internal nodes first so the
                // 2-children (successor relocation / zombie) path is hit hard.
                let m = $ty::new();
                let mut ops: Vec<Op> = (0..127).map(Op::Insert).collect();
                // Remove in BFS-root-first order of a balanced layout.
                let mut order = vec![];
                let mut ranges = std::collections::VecDeque::from([(0i64, 127i64)]);
                while let Some((lo, hi)) = ranges.pop_front() {
                    if lo >= hi { continue; }
                    let mid = (lo + hi) / 2;
                    order.push(mid);
                    ranges.push_back((lo, mid));
                    ranges.push_back((mid + 1, hi));
                }
                ops.extend(order.into_iter().map(Op::Remove));
                check_against_oracle(&m, &ops);
            }
        }
    };
}

oracle_suite!(avl, LoAvlMap);
oracle_suite!(bst, LoBstMap);
oracle_suite!(pe_avl, LoPeAvlMap);
oracle_suite!(pe_bst, LoPeBstMap);
