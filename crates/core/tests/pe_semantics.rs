//! Focused tests for the partially-external ("logical removing") variant's
//! zombie lifecycle: creation, revival, opportunistic cleanup, and the
//! memory bookkeeping the paper's §6 discussion rests on.

use lo_core::{LoPeAvlMap, LoPeBstMap};

#[test]
fn zombie_created_only_for_two_children() {
    let m = LoPeBstMap::new();
    // Leaf removal stays physical.
    assert!(m.insert(5i64, 0u64));
    assert!(m.remove(&5));
    assert_eq!(m.zombie_count(), 0);
    assert_eq!(m.physical_node_count(), 0);

    // Single-child removal stays physical.
    assert!(m.insert(5, 0));
    assert!(m.insert(3, 0));
    assert!(m.remove(&5)); // 5 has one child (3)
    assert_eq!(m.zombie_count(), 0);
    assert_eq!(m.physical_node_count(), 1);

    // Two-children removal goes logical.
    assert!(m.insert(5, 0));
    assert!(m.insert(8, 0));
    // Tree shape: 3 -> right 5 -> right 8? Build a guaranteed 2-children
    // node instead: fresh map.
    let m = LoPeBstMap::new();
    for k in [5i64, 3, 8] {
        assert!(m.insert(k, 0u64));
    }
    assert!(m.remove(&5));
    assert_eq!(m.zombie_count(), 1);
    assert_eq!(m.physical_node_count(), 3);
    m.check_invariants_pub();
}

/// The opportunistic cleanup: removing a zombie's child drops it to ≤1
/// children, and the removal's cleanup hook physically removes the zombie.
#[test]
fn zombie_cleaned_up_after_child_removal() {
    let m = LoPeBstMap::new();
    for k in [5i64, 3, 8] {
        assert!(m.insert(k, 0u64));
    }
    assert!(m.remove(&5)); // zombie with children 3 and 8
    assert_eq!(m.zombie_count(), 1);
    // Removing 3 makes the zombie single-childed; the cleanup hook fires.
    assert!(m.remove(&3));
    assert_eq!(m.zombie_count(), 0, "zombie should be cleaned opportunistically");
    assert_eq!(m.len(), 1);
    assert_eq!(m.physical_node_count(), 1);
    m.check_invariants_pub();
}

#[test]
fn revive_then_remove_cycles() {
    let m = LoPeAvlMap::new();
    for k in [50i64, 25, 75, 10, 30, 60, 90] {
        assert!(m.insert(k, k as u64));
    }
    for round in 0..50 {
        assert!(m.remove(&50), "round {round}: remove");
        assert!(!m.contains(&50));
        assert!(!m.remove(&50), "double remove must fail");
        assert!(m.insert(50, round), "round {round}: revive");
        assert_eq!(m.get(&50), Some(round));
    }
    m.check_invariants_pub();
    // At most one zombie can exist for this key at the end (none after the
    // final revive).
    assert_eq!(m.zombie_count(), 0);
}

/// Zombies must be invisible to every read operation.
#[test]
fn zombies_invisible_to_reads() {
    let m = LoPeAvlMap::new();
    for k in [50i64, 25, 75] {
        assert!(m.insert(k, k as u64));
    }
    assert!(m.remove(&50));
    assert_eq!(m.zombie_count(), 1);
    assert!(!m.contains(&50));
    assert_eq!(m.get(&50), None);
    assert_eq!(m.get_with(&50, |v| *v), None);
    assert_eq!(m.keys_in_order(), vec![25, 75]);
    assert_eq!(m.min_key(), Some(25));
    assert_eq!(m.max_key(), Some(75));
    assert_eq!(m.ceiling_key(&40), Some(75), "ceiling must skip the zombie");
    assert_eq!(m.floor_key(&60), Some(25), "floor must skip the zombie");
    assert_eq!(m.range_keys(0..=100), vec![25, 75]);
    assert_eq!(m.len(), 2);
}

/// Concurrent revive/remove churn on a fixed zombie-prone key set must keep
/// exact accounting.
#[test]
fn concurrent_zombie_churn() {
    const OPS: usize = if cfg!(debug_assertions) { 20_000 } else { 80_000 };
    let m = LoPeAvlMap::new();
    // Backbone guaranteeing inner nodes have two children frequently.
    for k in 0..32i64 {
        assert!(m.insert(k, 0u64));
    }
    let nets: Vec<i64> = std::thread::scope(|s| {
        (0..4u64)
            .map(|t| {
                let m = &m;
                s.spawn(move || {
                    let mut x = 0xFACADE ^ (t + 1);
                    let mut net = 0i64;
                    for _ in 0..OPS / 4 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % 32) as i64;
                        if x % 2 == 0 {
                            if m.insert(k, x) {
                                net += 1;
                            }
                        } else if m.remove(&k) {
                            net -= 1;
                        }
                    }
                    net
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let expected = 32 + nets.iter().sum::<i64>();
    assert_eq!(m.len() as i64, expected);
    m.check_invariants_pub();
    // Physical nodes = live + zombies, never less.
    assert!(m.physical_node_count() >= m.len());
    assert_eq!(m.physical_node_count(), m.len() + m.zombie_count());
}

/// Helper so this file reads uniformly (the maps expose the trait method).
trait CheckExt {
    fn check_invariants_pub(&self);
}
impl<T: lo_api::CheckInvariants> CheckExt for T {
    fn check_invariants_pub(&self) {
        self.check_invariants();
    }
}
