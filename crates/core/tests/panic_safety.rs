//! Panic-safety integration tests (require `--features failpoints`).
//!
//! Each test kills a writer inside one cataloged failpoint window and then
//! verifies the three-part contract from DESIGN.md §13:
//!
//! 1. the dead writer's locks were released and the tree was atomically
//!    poisoned with the failpoint as the cause;
//! 2. the lock-free read path stays *correct* — the key universe observed
//!    after the death matches the linearization-point semantics (an op
//!    killed after its linearization point took effect, one killed before
//!    did not);
//! 3. all further writes are rejected with `TreeError::Poisoned` while the
//!    quiescent invariant check still passes (in degraded mode).
//!
//! Plan-holding tests are serialized process-wide by the
//! `lo_check::fail::PlanSession` mutex, so the default parallel test
//! runner is safe.

#![cfg(feature = "failpoints")]

use lo_api::CheckInvariants;
use lo_check::fail::{
    activate, effect_in_message, panic_message, take_injected_panic, FailPoint, FaultPlan,
};
use lo_core::{
    set_max_restarts, FallibleMap, LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap, PoisonCause,
    TreeError,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Kills the writer driven by `op` at `point` (one-shot panic plan) and
/// returns whether the interrupted operation had linearized.
fn kill_at(point: FailPoint, op: impl FnOnce()) -> bool {
    let session = activate(FaultPlan::new(0xDEAD_BEEF).panic_at(point));
    let outcome = catch_unwind(AssertUnwindSafe(op));
    assert_eq!(session.fired(), 1, "expected exactly one injection at {}", point.name());
    drop(session);
    let payload = outcome.expect_err("armed failpoint must kill the writer");
    assert_eq!(take_injected_panic(), Some(point), "injection marker must round-trip");
    let msg = panic_message(payload.as_ref()).expect("injected panic has a string payload");
    assert!(msg.contains(point.name()), "panic message names the failpoint: {msg}");
    effect_in_message(msg).expect("injected panic carries an effect marker")
}

/// Post-death contract shared by every kill scenario.
fn assert_poisoned_by<M>(map: &M, point: FailPoint)
where
    M: FallibleMap<i64, u64> + lo_api::CheckInvariants,
{
    let expect = TreeError::Poisoned(PoisonCause::Failpoint(point.name()));
    assert_eq!(map.poisoned(), Some(expect));
    assert_eq!(map.try_insert(1 << 40, 0), Err(expect), "writers must be rejected");
    assert_eq!(map.try_remove(&(1 << 40)), Err(expect), "removers must be rejected");
    // Degraded-mode invariant sweep: ordering chain intact, no lock left
    // held by the dead writer.
    map.check_invariants();
}

#[test]
fn insert_killed_after_ordering_link_is_effective() {
    let m = LoAvlMap::new();
    let linearized = kill_at(FailPoint::InsertOrderingLinked, || {
        let _ = m.try_insert(5, 50);
    });
    assert!(linearized, "the ordering-layout link is past the linearization point");
    // The node is in the ordering layout only; lookups must still find it.
    assert!(m.contains(&5));
    assert_eq!(m.get(&5), Some(50));
    assert_eq!(m.keys_in_order(), vec![5]);
    assert_poisoned_by(&m, FailPoint::InsertOrderingLinked);
}

#[test]
fn remove_killed_before_mark_is_ineffective() {
    let m = LoAvlMap::new();
    for k in [1i64, 2, 3] {
        assert_eq!(m.try_insert(k, k as u64), Ok(true));
    }
    let linearized = kill_at(FailPoint::RemoveSuccTreeWindow, || {
        let _ = m.try_remove(&2);
    });
    assert!(!linearized, "the succ/tree-lock window precedes the mark store");
    assert!(m.contains(&2), "unlinearized remove leaves the key present");
    assert_eq!(m.keys_in_order(), vec![1, 2, 3]);
    assert_poisoned_by(&m, FailPoint::RemoveSuccTreeWindow);
}

#[test]
fn remove_killed_after_mark_is_effective() {
    let m = LoAvlMap::new();
    for k in [1i64, 2, 3] {
        assert_eq!(m.try_insert(k, k as u64), Ok(true));
    }
    let linearized = kill_at(FailPoint::RemoveAfterMark, || {
        let _ = m.try_remove(&2);
    });
    assert!(linearized, "the mark store is the linearization point");
    // The node is stranded in the tree layout, but marked and spliced out
    // of the ordering layout: reads must report it gone.
    assert!(!m.contains(&2));
    assert_eq!(m.get(&2), None);
    assert!(m.contains(&1) && m.contains(&3), "neighbors unaffected");
    assert_eq!(m.keys_in_order(), vec![1, 3]);
    assert_poisoned_by(&m, FailPoint::RemoveAfterMark);
}

/// Two-children removal: the successor (3) is detached from its old layout
/// position and the writer dies before relinking it. The ordering layout
/// must still reach it.
fn relocation_kill<M>(m: &M)
where
    M: FallibleMap<i64, u64> + lo_api::QuiescentOrdered<i64> + lo_api::CheckInvariants,
{
    for k in [2i64, 1, 3] {
        assert_eq!(m.try_insert(k, k as u64), Ok(true));
    }
    let linearized = kill_at(FailPoint::RemoveMidRelocation, || {
        let _ = m.try_remove(&2);
    });
    assert!(linearized, "relocation happens after the mark store");
    assert!(!m.contains(&2));
    assert!(m.contains(&1), "untouched neighbor stays");
    assert!(m.contains(&3), "half-relocated successor must stay readable");
    assert_eq!(m.keys_in_order(), vec![1, 3]);
    assert_poisoned_by(m, FailPoint::RemoveMidRelocation);
}

#[test]
fn remove_killed_mid_relocation_keeps_readers_correct() {
    relocation_kill(&LoBstMap::new());
    relocation_kill(&LoAvlMap::new());
}

#[test]
fn rotation_killed_mid_heights_keeps_all_keys() {
    let m = LoAvlMap::new();
    let linearized = kill_at(FailPoint::RotateMid, || {
        for k in [1i64, 2, 3] {
            // The third insert triggers the first rotation.
            let _ = m.try_insert(k, k as u64);
        }
    });
    assert!(linearized, "the rotating insert had already linearized");
    for k in [1i64, 2, 3] {
        assert!(m.contains(&k), "key {k} must survive the interrupted rotation");
    }
    assert_eq!(m.keys_in_order(), vec![1, 2, 3]);
    assert_poisoned_by(&m, FailPoint::RotateMid);
}

#[test]
fn pe_remove_killed_after_mark_is_effective() {
    let m = LoPeBstMap::new();
    for k in [1i64, 2] {
        assert_eq!(m.try_insert(k, k as u64), Ok(true));
    }
    // Key 2 has <= 1 children: the partially-external remove takes the
    // on-time physical path and dies between the mark and the splice.
    let linearized = kill_at(FailPoint::PeAfterMark, || {
        let _ = m.try_remove(&2);
    });
    assert!(linearized);
    assert!(!m.contains(&2));
    assert!(m.contains(&1));
    assert_eq!(m.keys_in_order(), vec![1]);
    assert_poisoned_by(&m, FailPoint::PeAfterMark);
}

#[test]
fn pe_zombie_removal_survives_succ_window_kill() {
    // Two-children PE removal is purely logical (the zombie store); the
    // pre-linearization window kill leaves the key present.
    let m = LoPeAvlMap::new();
    for k in [2i64, 1, 3] {
        assert_eq!(m.try_insert(k, k as u64), Ok(true));
    }
    let linearized = kill_at(FailPoint::RemoveSuccTreeWindow, || {
        let _ = m.try_remove(&2);
    });
    assert!(!linearized);
    assert!(m.contains(&2));
    assert_eq!(m.keys_in_order(), vec![1, 2, 3]);
    assert_poisoned_by(&m, FailPoint::RemoveSuccTreeWindow);
}

/// Restores the restart-bound override on drop (panic-safe).
struct RestartGuard;
impl Drop for RestartGuard {
    fn drop(&mut self) {
        set_max_restarts(0);
    }
}

#[test]
fn restart_storm_trips_the_budget_and_poisons() {
    let m = LoAvlMap::new();
    for k in [1i64, 2, 3] {
        assert_eq!(m.try_insert(k, k as u64), Ok(true));
    }
    let _guard = RestartGuard;
    set_max_restarts(8);
    let session = activate(FaultPlan::new(7).fail_at(FailPoint::TreeTryLock, u64::MAX));
    let outcome = catch_unwind(AssertUnwindSafe(|| m.try_remove(&2)));
    let fired = session.fired();
    drop(session);

    let payload = outcome.expect_err("starved writer must trip the storm tripwire");
    assert_eq!(take_injected_panic(), None, "storm trips are not injected panics");
    let msg = panic_message(payload.as_ref()).expect("storm panic has a message");
    assert!(msg.contains("LO_MAX_RESTARTS"), "message names the tripwire: {msg}");
    assert_eq!(effect_in_message(msg), Some(false), "the starved remove never linearized");
    assert!(fired >= 8, "every restart burned a forced try-lock failure (fired {fired})");

    assert_eq!(m.poisoned(), Some(TreeError::Poisoned(PoisonCause::RestartStorm)));
    assert!(m.contains(&2), "the starved remove had no effect");
    assert_eq!(m.keys_in_order(), vec![1, 2, 3]);
    m.check_invariants_report();
}

#[test]
fn alloc_failure_is_clean_and_retryable() {
    let m = LoAvlMap::new();
    let session = activate(FaultPlan::new(3).fail_at(FailPoint::ArenaAlloc, 1));
    assert_eq!(m.try_insert(7, 70), Err(TreeError::AllocFailed));
    assert_eq!(m.poisoned(), None, "allocation failure must not poison");
    assert_eq!(m.try_insert(7, 70), Ok(true), "retry succeeds after the budget");
    drop(session);
    assert!(m.contains(&7));
    let report = m.check_invariants_report();
    assert!(!report.degraded);
}

#[test]
fn infallible_surface_panics_on_alloc_failure_without_poisoning() {
    let m = LoBstMap::new();
    let session = activate(FaultPlan::new(4).fail_at(FailPoint::ArenaAlloc, 1));
    let outcome = catch_unwind(AssertUnwindSafe(|| m.insert(9, 90)));
    drop(session);
    let payload = outcome.expect_err("infallible insert must panic on AllocFailed");
    let msg = panic_message(payload.as_ref()).expect("panic has a message");
    assert!(msg.contains("allocation failed"), "unexpected message: {msg}");
    assert_eq!(m.poisoned(), None, "rejection panics outside the scope: no poisoning");
    assert!(m.insert(9, 90), "map stays fully writable");
    m.check_invariants();
}

#[test]
fn infallible_surface_panics_on_poisoned_without_reposioning() {
    let m = LoAvlMap::new();
    assert_eq!(m.try_insert(1, 10), Ok(true));
    kill_at(FailPoint::RemoveAfterMark, || {
        let _ = m.try_remove(&1);
    });
    let original = m.poisoned().expect("kill must poison");
    // The infallible ConcurrentMap surface reports the poisoning as a
    // panic but must not overwrite the recorded first cause.
    let outcome = catch_unwind(AssertUnwindSafe(|| m.insert(2, 20)));
    let payload = outcome.expect_err("infallible insert must panic on a poisoned tree");
    let msg = panic_message(payload.as_ref()).expect("panic has a message");
    assert!(msg.contains("remove-after-mark"), "panic names the original cause: {msg}");
    assert_eq!(m.poisoned(), Some(original), "first cause wins");
}

#[test]
fn delays_and_forced_failures_are_survivable() {
    // Non-lethal chaos: seeded delays inside the windows plus budgeted
    // forced try-lock failures. Everything must complete and stay healthy.
    let m = LoAvlMap::new();
    let session = activate(
        FaultPlan::new(0x5EED)
            .delay_at(FailPoint::RemoveAfterMark, 256, 2)
            .delay_at(FailPoint::InsertOrderingLinked, 256, 2)
            .delay_at(FailPoint::RotateMid, 128, 2)
            .fail_at(FailPoint::TreeTryLock, 32),
    );
    std::thread::scope(|s| {
        for t in 0..4i64 {
            let m = &m;
            s.spawn(move || {
                for i in 0..200i64 {
                    let k = (t * 17 + i * 31) % 32;
                    if i % 3 == 0 {
                        let _ = m.try_remove(&k);
                    } else {
                        let _ = m.try_insert(k, i as u64);
                    }
                }
            });
        }
    });
    assert!(session.fired() > 0, "the plan must actually have injected something");
    drop(session);
    assert_eq!(m.poisoned(), None, "survivable chaos must not poison");
    let report = m.check_invariants_report();
    assert!(!report.degraded);
}
