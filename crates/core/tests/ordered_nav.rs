//! Tests for the ordered-navigation extensions (ceiling/floor/range/pop).

use lo_core::{LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

macro_rules! nav_suite {
    ($mod_name:ident, $ty:ident) => {
        mod $mod_name {
            use super::*;

            #[test]
            fn ceiling_floor_basics() {
                let m = $ty::new();
                for k in [10i64, 20, 30, 40] {
                    assert!(m.insert(k, k as u64));
                }
                assert_eq!(m.ceiling_key(&5), Some(10));
                assert_eq!(m.ceiling_key(&10), Some(10));
                assert_eq!(m.ceiling_key(&11), Some(20));
                assert_eq!(m.ceiling_key(&40), Some(40));
                assert_eq!(m.ceiling_key(&41), None);
                assert_eq!(m.floor_key(&5), None);
                assert_eq!(m.floor_key(&10), Some(10));
                assert_eq!(m.floor_key(&29), Some(20));
                assert_eq!(m.floor_key(&1000), Some(40));
            }

            #[test]
            fn ceiling_floor_on_empty_tree() {
                let m = $ty::<i64, u64>::new();
                assert_eq!(m.ceiling_key(&0), None);
                assert_eq!(m.floor_key(&0), None);
                assert_eq!(m.ceiling_key(&i64::MIN), None);
                assert_eq!(m.floor_key(&i64::MAX), None);
                assert_eq!(m.range_keys(i64::MIN..=i64::MAX), Vec::<i64>::new());
            }

            #[test]
            fn ceiling_floor_beyond_extremes() {
                let m = $ty::new();
                for k in [10i64, 20, 30, 40] {
                    assert!(m.insert(k, 0));
                }
                // Probes below the minimum.
                assert_eq!(m.ceiling_key(&i64::MIN), Some(10));
                assert_eq!(m.floor_key(&i64::MIN), None);
                assert_eq!(m.floor_key(&9), None);
                // Probes above the maximum.
                assert_eq!(m.floor_key(&i64::MAX), Some(40));
                assert_eq!(m.ceiling_key(&i64::MAX), None);
                assert_eq!(m.ceiling_key(&41), None);
            }

            #[test]
            fn ceiling_floor_skip_removed() {
                let m = $ty::new();
                for k in [10i64, 20, 30] {
                    assert!(m.insert(k, 0));
                }
                assert!(m.remove(&20));
                assert_eq!(m.ceiling_key(&15), Some(30), "removed key must be skipped");
                assert_eq!(m.floor_key(&25), Some(10));
            }

            #[test]
            fn range_snapshot() {
                let m = $ty::new();
                for k in 0..50i64 {
                    assert!(m.insert(k * 2, 0)); // evens 0..98
                }
                assert_eq!(m.range_keys(10..=20), vec![10, 12, 14, 16, 18, 20]);
                assert_eq!(m.range_keys(11..=13), vec![12]);
                assert_eq!(m.range_keys(99..=200), Vec::<i64>::new());
                assert_eq!(m.range_keys(0..=0), vec![0]);
            }

            #[test]
            fn range_matches_btreemap_oracle() {
                let m = $ty::new();
                let mut oracle = BTreeMap::new();
                let mut x = 0xFEEDu64;
                for _ in 0..500 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = (x % 200) as i64;
                    if x % 3 == 0 {
                        m.remove(&k);
                        oracle.remove(&k);
                    } else {
                        if oracle.insert(k, ()).is_none() {
                            assert!(m.insert(k, 0));
                        }
                    }
                }
                for (lo, hi) in [(0i64, 199), (50, 60), (10, 10), (0, 0), (199, 199)] {
                    let expected: Vec<i64> = oracle.range(lo..=hi).map(|(&k, _)| k).collect();
                    assert_eq!(m.range_keys(lo..=hi), expected, "range {lo}..={hi}");
                }
                // Inverted range: BTreeMap panics; we define it as empty.
                #[allow(clippy::reversed_empty_ranges)]
                {
                    assert_eq!(m.range_keys(150..=40), Vec::<i64>::new());
                }
            }

            #[test]
            fn pop_drains_in_order() {
                let m = $ty::new();
                for k in [5i64, 3, 9, 1, 7] {
                    assert!(m.insert(k, k as u64 * 10));
                }
                assert_eq!(m.pop_min(), Some((1, 10)));
                assert_eq!(m.pop_max(), Some((9, 90)));
                assert_eq!(m.pop_min(), Some((3, 30)));
                assert_eq!(m.pop_min(), Some((5, 50)));
                assert_eq!(m.pop_max(), Some((7, 70)));
                assert_eq!(m.pop_min(), None);
                assert_eq!(m.pop_max(), None);
            }

            #[test]
            fn concurrent_pop_min_is_exclusive() {
                // Four poppers drain the map; every key must be popped
                // exactly once, in ascending order per popper.
                const N: i64 = 2_000;
                let m = $ty::new();
                for k in 0..N {
                    assert!(m.insert(k, k as u64));
                }
                let popped: Vec<Vec<(i64, u64)>> = std::thread::scope(|s| {
                    (0..4)
                        .map(|_| {
                            let m = &m;
                            s.spawn(move || {
                                let mut out = Vec::new();
                                while let Some(kv) = m.pop_min() {
                                    out.push(kv);
                                }
                                out
                            })
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(|h| h.join().expect("popper"))
                        .collect()
                });
                let mut all: Vec<i64> = popped.iter().flatten().map(|&(k, _)| k).collect();
                assert_eq!(all.len() as i64, N, "every key popped exactly once");
                all.sort_unstable();
                all.dedup();
                assert_eq!(all.len() as i64, N, "no duplicates");
                for per in &popped {
                    assert!(
                        per.windows(2).all(|w| w[0].0 < w[1].0),
                        "each popper sees ascending keys"
                    );
                    for &(k, v) in per {
                        assert_eq!(v, k as u64, "value travels with its key");
                    }
                }
            }
        }
    };
}

nav_suite!(avl, LoAvlMap);
nav_suite!(bst, LoBstMap);
nav_suite!(pe_avl, LoPeAvlMap);
nav_suite!(pe_bst, LoPeBstMap);

/// Exact-hit probes on a *zombie* (LO-PE: removed key whose node lingers
/// unlinked-but-allocated in the tree layout) must skip it in both
/// directions, even though the layout descent lands exactly on it.
#[test]
fn pe_ceiling_floor_exact_hit_on_zombie() {
    fn probe<M>(m: &M)
    where
        M: lo_api::ConcurrentMap<i64, u64> + lo_api::OrderedRead<i64>,
    {
        for k in [50i64, 25, 75] {
            assert!(m.insert(k, 0));
        }
        assert!(m.remove(&50));
        assert_eq!(m.ceiling_key(&50), Some(75), "exact-hit ceiling skips the zombie");
        assert_eq!(m.floor_key(&50), Some(25), "exact-hit floor skips the zombie");
        // The zombie key is also a dead exact endpoint for scans.
        assert_eq!(m.range_keys(50..=50), Vec::<i64>::new());
        assert_eq!(m.range_keys(25..=75), vec![25, 75]);
    }
    probe(&LoPeAvlMap::new());
    probe(&LoPeBstMap::new());
}

/// Ceiling racing the target key's removal, made deterministic with the
/// PR 4 failpoints: the remover dies right after its mark store (the
/// linearization point), leaving the marked node stranded in the tree
/// layout of a poisoned tree. Ordered reads must skip it — and stay live.
#[cfg(feature = "failpoints")]
#[test]
fn ceiling_skips_key_whose_removal_is_in_flight() {
    use lo_check::fail::{activate, FailPoint, FaultPlan};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let m = LoAvlMap::new();
    for k in [1i64, 2, 3] {
        assert_eq!(m.try_insert(k, k as u64), Ok(true));
    }
    let session = activate(FaultPlan::new(0x0CEA).panic_at(FailPoint::RemoveAfterMark));
    let died = catch_unwind(AssertUnwindSafe(|| {
        let _ = m.try_remove(&2);
    }));
    assert_eq!(session.fired(), 1);
    drop(session);
    assert!(died.is_err(), "armed failpoint kills the remover");
    let _ = lo_check::fail::take_injected_panic();
    // The removal linearized (mark store), so 2 is gone for every ordered
    // read — including an exact-hit anchor on its still-present node.
    assert!(m.poisoned().is_some(), "writer death poisons the tree");
    assert_eq!(m.ceiling_key(&2), Some(3), "ceiling skips the marked node");
    assert_eq!(m.floor_key(&2), Some(1), "floor skips the marked node");
    assert_eq!(m.range_keys(0..=10), vec![1, 3], "scans stay live when poisoned");
    assert_eq!(m.keys_in_order(), vec![1, 3]);
}

/// Ceiling/floor under concurrent churn of *other* keys must stay exact for
/// stable anchor keys.
#[test]
fn navigation_under_churn() {
    let m = LoAvlMap::new();
    // Anchors at multiples of 100; churn happens strictly between them.
    for a in (0..=1_000i64).step_by(100) {
        assert!(m.insert(a, 0u64));
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let m = &m;
        let stop = &stop;
        s.spawn(move || {
            let mut x = 77u64;
            for _ in 0..60_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let k = (x % 1_000) as i64;
                if k % 100 == 0 {
                    continue;
                }
                if x.is_multiple_of(2) {
                    m.insert(k, 1);
                } else {
                    m.remove(&k);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Between anchors there is always *some* key ≥ the probe
                // (the next anchor), and ceiling can never overshoot it.
                let c = m.ceiling_key(&150).expect("anchor 200 exists");
                assert!((150..=200).contains(&c), "ceiling overshot: {c}");
                let f = m.floor_key(&250).expect("anchor 200 exists");
                assert!((200..=250).contains(&f), "floor undershot: {f}");
            }
        });
    });
}
