//! Conservation laws for the `metrics` event counters, exercised under real
//! concurrency. These tests only exist when the feature is on; without it
//! every counter is a compile-time no-op and there is nothing to check.
//!
//! Two laws are asserted:
//! 1. **Monotonicity** — counters only grow: any later snapshot dominates any
//!    earlier one, event by event (checked while worker threads hammer the
//!    map).
//! 2. **Zombie conservation** — in partially-external mode a zombie can only
//!    leave the tree by being revived (insert/put on its key) or physically
//!    unlinked by the cleanup pass, so at quiescence
//!    `zombie-created − zombie-revived − zombie-unlinked` must equal the live
//!    zombie population reported by both `zombie_count()` and the invariant
//!    checker's census.
#![cfg(feature = "metrics")]

use lo_core::metrics::{Event, Snapshot};
use lo_core::LoPeAvlMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Single test on purpose: counters are process-global, so a second test in
/// this binary would race with this one and break the conservation sums.
#[test]
fn counters_conserve_under_concurrency() {
    let map = LoPeAvlMap::new();
    let base = Snapshot::take();
    let stop = AtomicBool::new(false);

    const THREADS: u64 = 4;
    const OPS: u64 = 30_000;
    const KEYS: i64 = 512;

    std::thread::scope(|s| {
        // Monitor thread: counters must never decrease, even mid-flight.
        s.spawn(|| {
            let mut prev = Snapshot::take();
            while !stop.load(Ordering::Relaxed) {
                let cur = Snapshot::take();
                for (ev, n) in cur.iter() {
                    assert!(
                        n >= prev.get(ev),
                        "counter {} went backwards: {} -> {}",
                        ev.name(),
                        prev.get(ev),
                        n
                    );
                }
                prev = cur;
                std::thread::yield_now();
            }
        });
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let map = &map;
            workers.push(s.spawn(move || {
                // Per-thread splitmix-style stream; keys collide across
                // threads so succ-lock validation and zombie paths all fire.
                let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t + 1);
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = (x % KEYS as u64) as i64;
                    match x >> 61 {
                        0 | 1 | 2 => {
                            map.insert(k, x);
                        }
                        3 | 4 => {
                            map.remove(&k);
                        }
                        5 => {
                            map.put(k, x);
                        }
                        _ => {
                            map.contains(&k);
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().expect("worker panicked");
        }
        // Workers are done; let the monitor exit so the scope can close.
        stop.store(true, Ordering::Relaxed);
    });

    let diff = Snapshot::take().since(&base);

    // The workload must actually have exercised the interesting paths.
    assert!(diff.get(Event::SearchDescent) > 0, "no descents recorded");
    assert!(diff.get(Event::HeightUpdate) > 0, "no height updates recorded");
    assert!(
        diff.get(Event::ZombieCreated) > 0,
        "update-heavy PE workload created no zombies"
    );

    // Zombie conservation at quiescence.
    let created = diff.get(Event::ZombieCreated);
    let revived = diff.get(Event::ZombieRevived);
    let unlinked = diff.get(Event::ZombieUnlinked);
    assert!(
        created >= revived + unlinked,
        "more zombies left ({revived} revived + {unlinked} unlinked) than created ({created})"
    );
    let live = created - revived - unlinked;
    assert_eq!(
        live as usize,
        map.zombie_count(),
        "counter-derived zombie population disagrees with the tree walk"
    );
    let report = map.check_invariants_report();
    assert_eq!(
        live as usize, report.zombies,
        "counter-derived zombie population disagrees with the invariant census"
    );

    // Retires cover every physically unlinked node (exact bookkeeping for
    // value replacements is workload-dependent, so only the lower bound is
    // stable): at least the unlinked zombies must have been retired.
    assert!(
        diff.get(Event::ReclaimRetire) >= unlinked,
        "fewer retires than unlinked zombies"
    );
}
