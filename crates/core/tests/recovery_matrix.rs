//! Per-window recovery matrix (requires `--features failpoints`).
//!
//! For every cataloged failpoint window: kill a writer inside it with a
//! deterministic single-threaded script, classify the death through the
//! effect marker (linearized ⇒ the op's effect is committed; not
//! linearized ⇒ no trace), then run online recovery and verify the whole
//! contract:
//!
//! 1. the committed key set — *exactly* as classified — is visible on the
//!    poisoned ordering chain, survives recovery untouched, and nothing
//!    else appears;
//! 2. the recovered map reports [`Health::Writable`] and passes the full
//!    (non-degraded) invariant sweep;
//! 3. the gate is genuinely open again: fresh inserts and removes complete.
//!
//! The `{arena, box}` allocation axis is covered by building this test in
//! both feature modes (CI runs it with `--features failpoints` and with
//! `--no-default-features --features failpoints`).

#![cfg(feature = "failpoints")]

use lo_api::PoisonCause;
use lo_check::fail::{
    activate, effect_in_message, panic_message, take_injected_panic, FailPoint, FaultPlan,
};
use lo_core::{
    FallibleMap, Health, LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap, RecoveryReport,
    RepairStrategy,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Kills the writer driven by `op` at `point` (one-shot panic plan) and
/// returns whether the interrupted operation had linearized.
fn kill_at(point: FailPoint, op: impl FnOnce()) -> bool {
    let session = activate(FaultPlan::new(0xBAD_C0DE).panic_at(point));
    let outcome = catch_unwind(AssertUnwindSafe(op));
    assert_eq!(session.fired(), 1, "expected exactly one injection at {}", point.name());
    drop(session);
    let payload = outcome.expect_err("armed failpoint must kill the writer");
    assert_eq!(take_injected_panic(), Some(point), "injection marker must round-trip");
    let msg = panic_message(payload.as_ref()).expect("injected panic has a string payload");
    effect_in_message(msg).expect("injected panic carries an effect marker")
}

/// The scripted operation the armed failpoint interrupts.
#[derive(Clone, Copy)]
enum KillOp {
    Insert(i64),
    Remove(i64),
}

/// One matrix cell: prefill `prefill` (plan inactive), die inside `window`
/// while executing `op`, recover, and verify the full contract. Returns
/// the recovery report for per-window strategy assertions.
fn kill_recover_resume<M>(map: &M, window: FailPoint, prefill: &[i64], op: KillOp) -> RecoveryReport
where
    M: FallibleMap<i64, u64> + lo_api::QuiescentOrdered<i64> + lo_api::CheckInvariants,
{
    for &k in prefill {
        assert_eq!(map.try_insert(k, k as u64), Ok(true), "prefill of fresh key {k}");
    }
    let linearized = kill_at(window, || match op {
        KillOp::Insert(k) => {
            let _ = map.try_insert(k, 1000 + k as u64);
        }
        KillOp::Remove(k) => {
            let _ = map.try_remove(&k);
        }
    });

    // The exact committed set follows from the effect marker alone.
    let mut expected: Vec<i64> = prefill.to_vec();
    expected.sort_unstable();
    if linearized {
        match op {
            KillOp::Insert(k) => {
                expected.push(k);
                expected.sort_unstable();
            }
            KillOp::Remove(k) => expected.retain(|&x| x != k),
        }
    }
    assert_eq!(
        map.keys_in_order(),
        expected,
        "committed set on the poisoned chain at {}",
        window.name()
    );
    assert_eq!(
        map.health(),
        Health::Poisoned(PoisonCause::Failpoint(window.name())),
        "death at {} must poison with its own cause",
        window.name()
    );

    let report = map
        .try_recover()
        .unwrap_or_else(|e| panic!("recovery after a {} kill failed: {e}", window.name()));
    assert_eq!(report.cause, PoisonCause::Failpoint(window.name()));
    assert_eq!(
        report.nodes_salvaged,
        expected.len(),
        "salvage count at {}",
        window.name()
    );
    assert_eq!(report.generation, 1, "first recovery of this map");

    assert_eq!(map.health(), Health::Writable, "recovered map must be writable");
    assert_eq!(
        map.keys_in_order(),
        expected,
        "recovery must preserve the committed set exactly at {}",
        window.name()
    );
    // Healthy map: this is the full, non-degraded sweep (layout, parents,
    // heights, chain, locks).
    map.check_invariants();

    // Resume: the gate is open for real work again.
    let probe = 1 << 20;
    assert_eq!(map.try_insert(probe, 7), Ok(true), "post-recovery insert at {}", window.name());
    assert!(map.contains(&probe));
    assert_eq!(map.try_remove(&probe), Ok(true), "post-recovery remove at {}", window.name());
    assert_eq!(map.keys_in_order(), expected);
    map.check_invariants();
    report
}

#[test]
fn window_insert_ordering_linked() {
    // The node lives in the ordering chain but not the layout: the chain
    // is the truth, so recovery must rebuild the layout around it.
    let r = kill_recover_resume(
        &LoAvlMap::new(),
        FailPoint::InsertOrderingLinked,
        &[1, 3],
        KillOp::Insert(2),
    );
    assert_eq!(r.strategy, RepairStrategy::InPlace);
    kill_recover_resume(
        &LoBstMap::new(),
        FailPoint::InsertOrderingLinked,
        &[1, 3],
        KillOp::Insert(2),
    );
}

#[test]
fn window_remove_succ_tree_window() {
    // Pre-linearization kill: no damage beyond force-released locks.
    kill_recover_resume(
        &LoAvlMap::new(),
        FailPoint::RemoveSuccTreeWindow,
        &[1, 2, 3],
        KillOp::Remove(2),
    );
    // PE two-children removal crosses the same window before its zombie
    // store.
    kill_recover_resume(
        &LoPeAvlMap::new(),
        FailPoint::RemoveSuccTreeWindow,
        &[2, 1, 3],
        KillOp::Remove(2),
    );
}

#[test]
fn window_remove_after_mark() {
    // The victim is marked and spliced from the chain but stranded in the
    // layout: a layout orphan forces a rebuild.
    let r = kill_recover_resume(
        &LoAvlMap::new(),
        FailPoint::RemoveAfterMark,
        &[1, 2, 3],
        KillOp::Remove(2),
    );
    assert_eq!(r.strategy, RepairStrategy::InPlace);
    kill_recover_resume(
        &LoBstMap::new(),
        FailPoint::RemoveAfterMark,
        &[1, 2, 3],
        KillOp::Remove(2),
    );
}

#[test]
fn window_remove_mid_relocation() {
    // Two-children removal killed with the successor detached from its
    // old layout position and not yet relinked.
    kill_recover_resume(
        &LoAvlMap::new(),
        FailPoint::RemoveMidRelocation,
        &[2, 1, 3],
        KillOp::Remove(2),
    );
    kill_recover_resume(
        &LoBstMap::new(),
        FailPoint::RemoveMidRelocation,
        &[2, 1, 3],
        KillOp::Remove(2),
    );
}

#[test]
fn window_rotate_mid_heights() {
    // The third insert triggers the first rotation; the kill leaves child
    // pointers rewired with stale height bookkeeping. BSTs never rotate,
    // so this window is AVL-only.
    kill_recover_resume(&LoAvlMap::new(), FailPoint::RotateMid, &[1, 2], KillOp::Insert(3));
}

#[test]
fn window_pe_after_mark() {
    // PE ≤1-child removal takes the on-time physical path and dies
    // between the mark and the `update_child` splice.
    kill_recover_resume(&LoPeAvlMap::new(), FailPoint::PeAfterMark, &[1, 2], KillOp::Remove(2));
    kill_recover_resume(&LoPeBstMap::new(), FailPoint::PeAfterMark, &[1, 2], KillOp::Remove(2));
}

#[test]
fn window_tree_try_lock() {
    // A panic (not a forced failure) at the first layout-lock attempt.
    kill_recover_resume(&LoAvlMap::new(), FailPoint::TreeTryLock, &[1, 3], KillOp::Insert(2));
}

#[test]
fn window_arena_alloc() {
    // Death inside allocation: nothing was published, nothing may appear.
    let r = kill_recover_resume(&LoAvlMap::new(), FailPoint::ArenaAlloc, &[1], KillOp::Insert(2));
    assert_eq!(r.strategy, RepairStrategy::AuditOnly, "an unpublished death leaves no damage");
    kill_recover_resume(&LoBstMap::new(), FailPoint::ArenaAlloc, &[1], KillOp::Insert(2));
}

// The optimistic lock window only exists on the default (non-blocking)
// write path.
#[cfg(not(feature = "blocking-writes"))]
#[test]
fn window_optimistic_window_locked() {
    kill_recover_resume(
        &LoAvlMap::new(),
        FailPoint::OptimisticWindowLocked,
        &[1, 3],
        KillOp::Insert(2),
    );
}

/// The streaming-rebuild strategy — normally reserved for untrusted-chain
/// damage — must pass the same matrix contract when forced, on both the
/// internal and partially-external flavors.
#[test]
fn forced_streaming_covers_the_matrix_contract() {
    struct Hook;
    impl Drop for Hook {
        fn drop(&mut self) {
            lo_core::force_streaming_rebuild(false);
        }
    }
    let _hook = Hook;
    lo_core::force_streaming_rebuild(true);
    let r = kill_recover_resume(
        &LoAvlMap::new(),
        FailPoint::RemoveAfterMark,
        &[1, 2, 3],
        KillOp::Remove(2),
    );
    assert_eq!(r.strategy, RepairStrategy::StreamingRebuild);
    let r = kill_recover_resume(
        &LoPeAvlMap::new(),
        FailPoint::PeAfterMark,
        &[1, 2],
        KillOp::Remove(2),
    );
    assert_eq!(r.strategy, RepairStrategy::StreamingRebuild);
}
