//! Memory lifecycle tests: every value inserted into a tree must be dropped
//! exactly once — whether it left via `remove`, via value replacement
//! (`put`), or by the tree being dropped. Retired garbage is freed by the
//! epoch collector, so the assertions drain it by flushing pinned guards.

use lo_core::{LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A value that counts its own drops.
#[derive(Clone)]
struct Counted(Arc<AtomicUsize>);

impl Drop for Counted {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Waits for the epoch collector to drain deferred destructions.
fn drain_epoch() {
    for _ in 0..256 {
        crossbeam_epoch::pin().flush();
    }
}

/// `drops` must reach `expected` once the collector drains; retries a few
/// times to absorb scheduling noise.
#[track_caller]
fn assert_drops(drops: &AtomicUsize, expected: usize) {
    for _ in 0..100 {
        drain_epoch();
        if drops.load(Ordering::SeqCst) == expected {
            return;
        }
        std::thread::yield_now();
    }
    assert_eq!(drops.load(Ordering::SeqCst), expected, "value drops after drain");
}

macro_rules! drop_suite {
    ($mod_name:ident, $ty:ident) => {
        mod $mod_name {
            use super::*;

            #[test]
            fn values_dropped_once() {
                // Clones of `Counted` share the counter; only the total
                // matters: inserted N values (each a fresh clone) → N drops
                // after everything is gone.
                let drops = Arc::new(AtomicUsize::new(0));
                let mut created = 0usize;
                {
                    let m = $ty::new();
                    // Insert 64 values.
                    for k in 0..64i64 {
                        assert!(m.insert(k, Counted(Arc::clone(&drops))));
                        created += 1;
                    }
                    // Remove half (on-time or zombie path, depending on the
                    // variant — either way the value is retired or kept
                    // until revive/teardown).
                    for k in 0..32i64 {
                        assert!(m.remove(&k));
                    }
                    // Reinsert a few removed keys (revive path in PE mode).
                    for k in 0..8i64 {
                        assert!(m.insert(k, Counted(Arc::clone(&drops))));
                        created += 1;
                    }
                    // Failed inserts drop their value immediately (the
                    // caller keeps ownership semantics simple: pass-by-value).
                    // Map drop tears down the rest.
                }
                assert_drops(&drops, created);
            }

            #[test]
            fn put_drops_replaced_values() {
                let drops = Arc::new(AtomicUsize::new(0));
                {
                    let m = $ty::new();
                    assert!(m.put(1i64, Counted(Arc::clone(&drops))).is_none());
                    for _ in 0..20 {
                        // Each put returns a clone of the old value (dropped
                        // at end of statement) and retires the original.
                        let old = m.put(1i64, Counted(Arc::clone(&drops)));
                        assert!(old.is_some());
                    }
                }
                // 21 stored values + 20 returned clones.
                assert_drops(&drops, 21 + 20);
            }

            #[test]
            fn hammered_map_leaks_nothing() {
                let drops = Arc::new(AtomicUsize::new(0));
                let created = Arc::new(AtomicUsize::new(0));
                {
                    let m = $ty::new();
                    std::thread::scope(|s| {
                        for t in 0..3u64 {
                            let m = &m;
                            let drops = Arc::clone(&drops);
                            let created = Arc::clone(&created);
                            s.spawn(move || {
                                let mut x = 0xD0_0D ^ (t + 1);
                                for _ in 0..5_000 {
                                    x ^= x << 13;
                                    x ^= x >> 7;
                                    x ^= x << 17;
                                    let k = (x % 64) as i64;
                                    if x % 2 == 0 {
                                        created.fetch_add(1, Ordering::SeqCst);
                                        // Failed inserts drop the value
                                        // immediately — still one drop.
                                        let _ = m.insert(k, Counted(Arc::clone(&drops)));
                                    } else {
                                        let _ = m.remove(&k);
                                    }
                                }
                            });
                        }
                    });
                }
                assert_drops(&drops, created.load(Ordering::SeqCst));
            }
        }
    };
}

drop_suite!(avl, LoAvlMap);
drop_suite!(bst, LoBstMap);
drop_suite!(pe_avl, LoPeAvlMap);
drop_suite!(pe_bst, LoPeBstMap);
