//! # Concurrent binary search trees via logical ordering
//!
//! A from-scratch Rust implementation of **Drachsler, Vechev, Yahav,
//! "Practical Concurrent Binary Search Trees via Logical Ordering"
//! (PPoPP 2014)**.
//!
//! The key idea: in addition to the physical tree layout (`left`/`right`/
//! `parent`), every node explicitly maintains the **logical ordering** of
//! keys through `pred`/`succ` pointers. The set of intervals
//! `{(n, succ(n))}` partitions the key space, and a key is in the set iff it
//! is an endpoint of some interval. Lookups that fall off the end of a tree
//! path consult the intervals instead of restarting, which makes `contains`
//! **lock-free** and entirely independent of rotations; updates synchronize
//! on interval locks (`succLock`) before touching the layout locks
//! (`treeLock`).
//!
//! Four public map types share one engine:
//!
//! * [`LoAvlMap`] — relaxed-balance AVL tree, the paper's main structure;
//! * [`LoBstMap`] — the unbalanced variant (§4.6);
//! * [`LoPeAvlMap`], [`LoPeBstMap`] — the partially-external "logical
//!   removing" variants (§6) that keep zombie nodes instead of performing
//!   2-children removals.
//!
//! ```
//! use lo_core::LoAvlMap;
//!
//! let map = LoAvlMap::new();
//! map.insert(3, "three");
//! map.insert(1, "one");
//! assert!(map.contains(&3));        // lock-free
//! assert_eq!(map.min_key(), Some(1)); // O(1) via the ordering layout
//! map.remove(&3);                    // on-time physical removal
//! assert!(!map.contains(&3));
//! ```
//!
//! ## Memory reclamation
//! The paper's Java implementation leans on the JVM garbage collector so
//! that lock-free readers may hold references to removed nodes. Here the
//! same guarantee comes from epoch-based reclamation (`crossbeam-epoch`):
//! every operation runs under an epoch guard, and removal retires nodes with
//! deferred destruction. Unlinking is still *on time* — only the `free` is
//! deferred.

#![warn(missing_docs)]

pub mod arena;
mod balance;
mod bound;
mod domain;
mod fp;
mod invariants;
mod maps;
mod node;
mod ordered;
mod pe;
mod poison;
mod recover;
mod tree;
mod update;

pub mod sync;

pub use domain::EpochDomain;
pub use invariants::InvariantReport;
pub use maps::{LoAvlMap, LoBstMap, LoPeAvlMap, LoPeBstMap};

/// Fallible-write error surface (re-exported from `lo-api`): poisoning
/// causes and the `try_*` error type, plus the trait the maps implement.
pub use lo_api::{FallibleMap, PoisonCause, TreeError};

/// Online-recovery surface (re-exported from `lo-api`): health probes and
/// the quarantine→audit→repair→resume entry point's report/error types.
pub use lo_api::{Health, RecoverError, RecoveryReport, RepairStrategy};

/// Forces the streaming-rebuild recovery strategy for recoveries run on the
/// calling thread. Test/bench hook; not part of the stable API.
#[doc(hidden)]
pub use recover::force_streaming_rebuild;

/// Core map traits (re-exported from `lo-api`) so downstream users get the
/// point-op and ordered-access surfaces without a separate dependency:
/// [`OrderedRead`] is the concurrent streaming-scan interface backed by the
/// succ-chain cursor; [`QuiescentOrdered`] is the full-snapshot interface.
pub use lo_api::{ConcurrentMap, OrderedRead, QuiescentOrdered};

/// Overrides the `LO_MAX_RESTARTS` restart-storm bound for this process
/// (`0` = unlimited). Test hook for driving the storm tripwire without
/// environment plumbing; not part of the stable API.
#[doc(hidden)]
pub use poison::set_max_restarts;

/// Event-counter telemetry substrate (re-exported so integration tests and
/// downstream tools can snapshot counters without a separate dependency).
/// Counters are live only when this crate is built with the `metrics`
/// feature; otherwise every recording call is a compile-time no-op.
pub use lo_metrics as metrics;

/// Set views over the unit-valued maps.
pub type LoAvlSet<K> = lo_api::ConcurrentSet<K, LoAvlMap<K, ()>>;
/// Set view over the unbalanced map.
pub type LoBstSet<K> = lo_api::ConcurrentSet<K, LoBstMap<K, ()>>;

/// Creates an empty AVL set.
pub fn avl_set<K: lo_api::Key>() -> LoAvlSet<K> {
    lo_api::ConcurrentSet::new(LoAvlMap::new())
}

/// Creates an empty BST set.
pub fn bst_set<K: lo_api::Key>() -> LoBstSet<K> {
    lo_api::ConcurrentSet::new(LoBstMap::new())
}
