//! Key-space bounds: every tree is initialized with the sentinel keys
//! `-∞` and `+∞` (paper §1: "we always add designated sentinel keys −∞ and ∞
//! to any set"), so node keys live in the extended key space modeled here.

use std::cmp::Ordering;

/// A key extended with the two sentinel bounds.
///
/// Ordering: `NegInf < Key(k) < PosInf` for every `k`, and `Key(a) < Key(b)`
/// iff `a < b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound<K> {
    /// The `−∞` sentinel; only the head sentinel node carries it.
    NegInf,
    /// A real key.
    Key(K),
    /// The `+∞` sentinel; only the root sentinel node carries it.
    PosInf,
}

impl<K: Ord> Bound<K> {
    /// Compares this bound against a real key.
    #[inline]
    pub fn cmp_key(&self, key: &K) -> Ordering {
        match self {
            Bound::NegInf => Ordering::Less,
            Bound::Key(k) => k.cmp(key),
            Bound::PosInf => Ordering::Greater,
        }
    }

    /// Returns the real key, if this is not a sentinel.
    #[inline]
    pub fn as_key(&self) -> Option<&K> {
        match self {
            Bound::Key(k) => Some(k),
            _ => None,
        }
    }

    /// Whether this bound equals the given real key.
    #[inline]
    pub fn is_key(&self, key: &K) -> bool {
        matches!(self, Bound::Key(k) if k == key)
    }
}

impl<K: Ord> PartialOrd for Bound<K> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Bound<K> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        use Bound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Key(a), Key(b)) => a.cmp(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        let vals = [Bound::NegInf, Bound::Key(-5), Bound::Key(0), Bound::Key(9), Bound::PosInf];
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                assert_eq!(vals[i].cmp(&vals[j]), i.cmp(&j), "{:?} vs {:?}", vals[i], vals[j]);
            }
        }
    }

    #[test]
    fn cmp_key_matches_cmp() {
        for b in [Bound::NegInf, Bound::Key(3), Bound::PosInf] {
            for k in [-1, 3, 7] {
                assert_eq!(b.cmp_key(&k), b.cmp(&Bound::Key(k)));
            }
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Bound::Key(4).as_key(), Some(&4));
        assert_eq!(Bound::<i32>::PosInf.as_key(), None);
        assert!(Bound::Key(4).is_key(&4));
        assert!(!Bound::Key(4).is_key(&5));
        assert!(!Bound::<i32>::NegInf.is_key(&4));
    }
}
