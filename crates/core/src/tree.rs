//! The shared tree engine behind all four public map types.
//!
//! One engine implements the paper's whole family:
//!
//! | `balanced` | `partially_external` | public type | paper name |
//! |---|---|---|---|
//! | true  | false | `LoAvlMap`   | "our AVL" |
//! | false | false | `LoBstMap`   | "our BST" |
//! | true  | true  | `LoPeAvlMap` | "logical removing" variant |
//! | false | true  | `LoPeBstMap` | unbalanced logical-removing variant |
//!
//! This module holds the structure, the lock-free lookups (paper §4.2,
//! Algorithms 1–2) and the helpers shared by the update paths
//! (`lockParent`, `updateChild`). Inserts/removes live in `update.rs`,
//! rebalancing in `balance.rs`, the partially-external paths in `pe.rs`.

use crossbeam_epoch::{self as epoch, Guard, Shared};
use std::cmp::Ordering as Cmp;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::bound::Bound;
use crate::node::{nref, Node};
use lo_api::{Key, TreeError, Value};
use lo_metrics::{add, record, Event};

/// The tree engine. See module docs; public wrappers live in `maps.rs`.
pub(crate) struct LoTree<K: Key, V: Value> {
    /// The `+∞` sentinel; the physical root (paper §4.1: "The root is N∞").
    /// Never rotated, never removed. Set once at construction.
    root: epoch::Atomic<Node<K, V>>,
    /// The `−∞` sentinel; reachable only through the ordering layout.
    head: epoch::Atomic<Node<K, V>>,
    /// Slab arena all of this tree's nodes live in. Shared (`Arc`) with the
    /// epoch collector's deferred retirements, which may outlive the tree.
    #[cfg(feature = "arena")]
    arena: std::sync::Arc<crate::arena::Arena<Node<K, V>>>,
    /// Maintain AVL heights and rebalance after each update.
    pub(crate) balanced: bool,
    /// Partially-external mode: 2-children removals only set the `zombie`
    /// flag; inserts revive zombies; physical removal is deferred.
    pub(crate) partially_external: bool,
    /// Quarantine gate: in-flight writer count + tree state (healthy /
    /// poisoned cause / recovering) in one word. Never read on the
    /// lock-free lookup paths — a poisoned tree stays readable. Its
    /// state-changing surface lives in `poison.rs`/`recover.rs` only.
    pub(crate) gate: crate::poison::WriterGate,
    /// Monotone recovery generation: bumped by every successful
    /// `try_recover`; generation 0 is the tree as constructed.
    pub(crate) recovery_gen: AtomicU32,
    /// The epoch domain this tree's guards pin: the process-global
    /// collector by default, or a caller-supplied per-shard collector
    /// (ISSUE 10) so N trees composed into a store stop sharing one
    /// grace-period authority. Every pin in the engine goes through it.
    pub(crate) domain: crate::domain::EpochDomain,
}

impl<K: Key, V: Value> LoTree<K, V> {
    /// Creates the initial two-sentinel tree (paper §4.1 "The Initial Tree")
    /// in the process-global epoch domain.
    pub(crate) fn new(balanced: bool, partially_external: bool) -> Self {
        Self::new_in(balanced, partially_external, crate::domain::EpochDomain::global())
    }

    /// [`Self::new`] born into a caller-supplied epoch domain: the tree's
    /// guards pin `domain`'s collector, so its grace periods are decided
    /// only by participants of the same domain. The arena was already
    /// per-tree; this makes the reclamation authority per-tree too.
    pub(crate) fn new_in(
        balanced: bool,
        partially_external: bool,
        domain: crate::domain::EpochDomain,
    ) -> Self {
        let t = Self {
            root: epoch::Atomic::null(),
            head: epoch::Atomic::null(),
            #[cfg(feature = "arena")]
            arena: std::sync::Arc::new(crate::arena::Arena::new()),
            balanced,
            partially_external,
            gate: crate::poison::WriterGate::new(),
            recovery_gen: AtomicU32::new(0),
            domain,
        };
        // SAFETY: [inv:unprotected-quiescent] the tree is not yet shared; no other
        // thread can free nodes.
        let g = unsafe { epoch::unprotected() };
        let root = t.alloc_node(Node::sentinel(Bound::PosInf), g);
        let head = t.alloc_node(Node::sentinel(Bound::NegInf), g);
        // N−∞ and N∞ are each other's predecessor and successor; the unused
        // outward pointers (head.pred, root.succ) self-loop so the lookup
        // walks can never observe null.
        nref(head).succ.store(root, Ordering::Release);
        nref(head).pred.store(head, Ordering::Release);
        nref(root).pred.store(head, Ordering::Release);
        nref(root).succ.store(root, Ordering::Release);
        t.root.store(root, Ordering::Release);
        t.head.store(head, Ordering::Release);
        t
    }

    /// Allocates a node: from this tree's slab arena (default), or one `Box`
    /// per node under `--no-default-features` (the ablation baseline).
    pub(crate) fn alloc_node<'g>(
        &self,
        node: Node<K, V>,
        g: &'g Guard,
    ) -> Shared<'g, Node<K, V>> {
        #[cfg(feature = "arena")]
        {
            let _ = g;
            Shared::from(self.arena.alloc(node).as_ptr().cast_const())
        }
        #[cfg(not(feature = "arena"))]
        {
            crate::node::alloc(node, g)
        }
    }

    /// Fallible [`Self::alloc_node`]: consults the `arena-alloc` failpoint
    /// and the arena's own `try_alloc`, surfacing exhaustion as
    /// [`TreeError::AllocFailed`] instead of aborting. (The Box ablation
    /// baseline cannot observe real OOM — stable `Box::new` aborts — but
    /// still honors the failpoint.)
    pub(crate) fn try_alloc_node<'g>(
        &self,
        node: Node<K, V>,
        g: &'g Guard,
    ) -> Result<Shared<'g, Node<K, V>>, TreeError> {
        if crate::fp::should_fail(crate::fp::FailPoint::ArenaAlloc) {
            return Err(TreeError::AllocFailed);
        }
        #[cfg(feature = "arena")]
        {
            let _ = g;
            match self.arena.try_alloc(node) {
                Some(p) => Ok(Shared::from(p.as_ptr().cast_const())),
                None => Err(TreeError::AllocFailed),
            }
        }
        #[cfg(not(feature = "arena"))]
        {
            Ok(crate::node::alloc(node, g))
        }
    }

    /// The current poison/recovery state (`None` while healthy).
    pub(crate) fn poison_error(&self) -> Option<TreeError> {
        self.gate.error()
    }

    /// The current recovery generation (0 until the first successful
    /// recovery).
    pub(crate) fn recovery_generation(&self) -> u32 {
        self.recovery_gen.load(Ordering::Acquire)
    }

    /// Retires a node after the grace period: the arena recycles its slot
    /// (default), or the `Box` is destroyed (ablation baseline).
    ///
    /// # Safety
    /// Same contract as `Guard::defer_destroy`: `node` must already be
    /// unlinked from both layouts so no *new* reference to it can be
    /// created; currently-pinned readers may still hold it.
    pub(crate) unsafe fn retire_node(&self, node: Shared<'_, Node<K, V>>, g: &Guard) {
        #[cfg(feature = "arena")]
        {
            let arena = std::sync::Arc::clone(&self.arena);
            let ptr = crate::arena::SendPtr::new(node.as_raw().cast_mut());
            let recycle = move || {
                // SAFETY: [inv:epoch-liveness] the slot is live until this deferred
                // retirement runs, and the epoch guarantees no reader still holds it.
                unsafe { arena.retire(ptr.get()) }
            };
            // SAFETY: [inv:send-sync] (defer_unchecked) the closure captures only the
            // Arc'd arena (Send + Sync) and the retired pointer; by this function's
            // contract the node is unreachable, so running the retirement on
            // any thread after the grace period is sound, and the Arc keeps
            // the arena alive even past the tree's drop.
            unsafe { g.defer_unchecked(recycle) };
        }
        #[cfg(not(feature = "arena"))]
        // SAFETY: [inv:epoch-liveness] forwarded contract (unlinked; freed after
        // grace period).
        unsafe {
            g.defer_destroy(node)
        };
    }

    /// Like [`Self::retire_node`], but the node's value pointer was *stolen*
    /// by a replacement node (streaming rebuild): after the grace period the
    /// old node's value word is nulled *before* the node is destroyed, so
    /// the value — now owned by its replacement — survives the old node's
    /// drop. The null store must run inside the deferred closure, not
    /// eagerly: readers pinned before the root swap may still dereference
    /// the value through this node until the grace period ends.
    ///
    /// # Safety
    /// Same contract as [`Self::retire_node`], plus: exactly one live node
    /// must have taken over ownership of this node's value pointer.
    pub(crate) unsafe fn retire_node_without_value(
        &self,
        node: Shared<'_, Node<K, V>>,
        g: &Guard,
    ) {
        let addr = node.as_raw() as usize;
        #[cfg(feature = "arena")]
        {
            let arena = std::sync::Arc::clone(&self.arena);
            let ptr = crate::arena::SendPtr::new(node.as_raw().cast_mut());
            let recycle = move || {
                // SAFETY: [inv:epoch-liveness] the slot is live until this deferred
                // retirement runs; nulling the value word first disarms the
                // node's value drop (ownership moved at the rebuild publish).
                unsafe {
                    (*(addr as *mut Node<K, V>))
                        .value
                        .store(Shared::null(), Ordering::Relaxed);
                    arena.retire(ptr.get())
                }
            };
            // SAFETY: [inv:send-sync] (defer_unchecked) the closure captures only the
            // Arc'd arena (Send + Sync) and the retired pointer; by this function's
            // contract the node is unreachable, so running the retirement on
            // any thread after the grace period is sound.
            unsafe { g.defer_unchecked(recycle) };
        }
        #[cfg(not(feature = "arena"))]
        {
            let free = move || {
                // SAFETY: [inv:epoch-liveness] the Box is live until this deferred
                // free runs; nulling the value word first disarms the node's
                // value drop (ownership moved at the rebuild publish).
                unsafe {
                    let p = addr as *mut Node<K, V>;
                    (*p).value.store(Shared::null(), Ordering::Relaxed);
                    drop(Box::from_raw(p));
                }
            };
            // SAFETY: [inv:send-sync] (defer_unchecked) the closure captures only a
            // raw address; the node is unreachable per this function's contract,
            // so freeing it on any thread after the grace period is sound.
            unsafe { g.defer_unchecked(free) };
        }
    }

    /// The `+∞` root sentinel (stable for the tree's lifetime).
    #[inline]
    pub(crate) fn root_sh<'g>(&self, g: &'g Guard) -> Shared<'g, Node<K, V>> {
        self.root.load(Ordering::Relaxed, g)
    }

    /// The `−∞` head sentinel (stable for the tree's lifetime).
    #[inline]
    pub(crate) fn head_sh<'g>(&self, g: &'g Guard) -> Shared<'g, Node<K, V>> {
        self.head.load(Ordering::Relaxed, g)
    }

    // ------------------------------------------------------------------
    // Lookups (paper Algorithms 1 and 2) — no locks, no restarts.
    // ------------------------------------------------------------------

    /// Algorithm 1: plain top-down traversal. Returns the node with `key`,
    /// or the last node on the search path. Oblivious to concurrent
    /// relocations — it may stray from its initial path; the caller corrects
    /// via the ordering layout.
    pub(crate) fn search<'g>(&self, key: &K, g: &'g Guard) -> Shared<'g, Node<K, V>> {
        let descent = lo_trace::stamp();
        let mut node = self.root_sh(g);
        let mut depth = 0u64;
        loop {
            let n = nref(node);
            let child = match n.key.cmp_key(key) {
                Cmp::Equal => break,
                // currKey < k → go right, else left (Algorithm 1 line 5).
                Cmp::Less => n.right.load(Ordering::Acquire, g),
                Cmp::Greater => n.left.load(Ordering::Acquire, g),
            };
            if child.is_null() {
                break;
            }
            depth += 1;
            node = child;
            // Bounded-interleaving tests perturb the schedule per descent
            // step; compiled out without the `lockdep` feature.
            if lo_check::lockdep::ENABLED {
                lo_check::sched::pause_point();
            }
        }
        add(Event::SearchDescent, depth);
        lo_trace::span(lo_trace::Phase::Descent, descent);
        node
    }

    /// Algorithm 2's interval walk: starting from the search result, chase
    /// `pred` until the key is not greater, then `succ` until not smaller.
    /// Returns the node holding `key` (possibly marked/zombie), or `None` if
    /// the enclosing interval proves absence.
    pub(crate) fn lookup<'g>(&self, key: &K, g: &'g Guard) -> Option<&'g Node<K, V>> {
        let mut node = nref(self.search(key, g));
        let mut pred_steps = 0u64;
        while node.key.cmp_key(key) == Cmp::Greater {
            if lo_check::lockdep::ENABLED {
                lo_check::sched::pause_point();
            }
            node = nref(node.pred.load(Ordering::Acquire, g));
            pred_steps += 1;
        }
        let mut succ_steps = 0u64;
        while node.key.cmp_key(key) == Cmp::Less {
            if lo_check::lockdep::ENABLED {
                lo_check::sched::pause_point();
            }
            node = nref(node.succ.load(Ordering::Acquire, g));
            succ_steps += 1;
        }
        add(Event::ChasePred, pred_steps);
        add(Event::ChaseSucc, succ_steps);
        if node.key.is_key(key) {
            Some(node)
        } else {
            None
        }
    }

    /// Lock-free membership test (paper Algorithm 2).
    pub(crate) fn contains(&self, key: &K) -> bool {
        let g = self.domain.pin();
        match self.lookup(key, &g) {
            Some(n) => !n.is_removed(),
            None => false,
        }
    }

    /// The *naive* membership test the paper's Figure 1 warns about: a plain
    /// layout descent with no ordering-layer fallback. **Not linearizable**
    /// under concurrency — a successor relocation or rotation can make it
    /// miss a present key. Kept for the `figure1_demo` example and the
    /// motivation ablation; never used by the real operations.
    pub(crate) fn contains_layout_only(&self, key: &K) -> bool {
        let g = self.domain.pin();
        let n = nref(self.search(key, &g));
        n.key.is_key(key) && !n.is_removed()
    }

    /// Lock-free value read; applies `f` to the value under the epoch guard.
    pub(crate) fn get_with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        let g = self.domain.pin();
        let n = self.lookup(key, &g)?;
        if n.is_removed() {
            return None;
        }
        let v = n.value.load(Ordering::Acquire, &g);
        if v.is_null() {
            return None; // unreachable for key nodes; defensive
        }
        // SAFETY: [inv:epoch-liveness] value pointers are retired via the epoch,
        // never freed in-place, so they are valid for the lifetime of `g`.
        Some(f(unsafe { v.deref() }))
    }

    /// Lock-free value clone.
    pub(crate) fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.get_with(key, V::clone)
    }

    // ------------------------------------------------------------------
    // Ordered access (paper §4.7).
    // ------------------------------------------------------------------

    /// O(1)-expected minimum via `succ(N−∞)`; restarts if it observes a
    /// marked node (paper §4.7), skips zombies via `succ`.
    pub(crate) fn min_key(&self) -> Option<K> {
        let g = self.domain.pin();
        'restart: loop {
            let mut n = nref(self.head_sh(&g)).succ.load(Ordering::Acquire, &g);
            loop {
                let r = nref(n);
                // Lock-free flag reads: Acquire (see node.rs ordering table).
                if r.mark.load(Ordering::Acquire) {
                    continue 'restart;
                }
                match r.key {
                    Bound::PosInf => return None,
                    Bound::Key(k) if !r.zombie.load(Ordering::Acquire) => return Some(k),
                    // zombie (or, impossibly, −∞): advance along the ordering
                    _ => n = r.succ.load(Ordering::Acquire, &g),
                }
            }
        }
    }

    /// O(1)-expected maximum via `pred(N∞)` (mirror of [`Self::min_key`]).
    pub(crate) fn max_key(&self) -> Option<K> {
        let g = self.domain.pin();
        'restart: loop {
            let mut n = nref(self.root_sh(&g)).pred.load(Ordering::Acquire, &g);
            loop {
                let r = nref(n);
                // Lock-free flag reads: Acquire (see node.rs ordering table).
                if r.mark.load(Ordering::Acquire) {
                    continue 'restart;
                }
                match r.key {
                    Bound::NegInf => return None,
                    Bound::Key(k) if !r.zombie.load(Ordering::Acquire) => return Some(k),
                    _ => n = r.pred.load(Ordering::Acquire, &g),
                }
            }
        }
    }

    /// Number of live keys (walks the ordering chain; quiescent use only).
    pub(crate) fn len_quiescent(&self) -> usize {
        let g = self.domain.pin();
        let mut count = 0usize;
        let mut n = nref(self.head_sh(&g)).succ.load(Ordering::Acquire, &g);
        loop {
            let r = nref(n);
            match r.key {
                Bound::PosInf => return count,
                Bound::Key(_) if !r.is_removed() => count += 1,
                _ => {}
            }
            n = r.succ.load(Ordering::Acquire, &g);
        }
    }

    /// Number of nodes physically present in the tree layout, excluding the
    /// root sentinel (quiescent use only). In partially-external mode this
    /// includes zombies.
    pub(crate) fn physical_node_count(&self) -> usize {
        let g = self.domain.pin();
        let mut stack = Vec::new();
        let top = nref(self.root_sh(&g)).left.load(Ordering::Acquire, &g);
        if !top.is_null() {
            stack.push(top);
        }
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            count += 1;
            let r = nref(n);
            for child in [r.left.load(Ordering::Acquire, &g), r.right.load(Ordering::Acquire, &g)] {
                if !child.is_null() {
                    stack.push(child);
                }
            }
        }
        count
    }

    /// Number of zombie (logically-deleted, physically-present) nodes
    /// (quiescent use only; always 0 outside partially-external mode).
    pub(crate) fn zombie_count(&self) -> usize {
        let g = self.domain.pin();
        let mut count = 0usize;
        let mut n = nref(self.head_sh(&g)).succ.load(Ordering::Acquire, &g);
        loop {
            let r = nref(n);
            match r.key {
                Bound::PosInf => return count,
                Bound::Key(_) if r.zombie.load(Ordering::Acquire) => count += 1,
                _ => {}
            }
            n = r.succ.load(Ordering::Acquire, &g);
        }
    }

    // ------------------------------------------------------------------
    // Shared locking helpers (paper Algorithms 6 and 10).
    // ------------------------------------------------------------------

    /// Algorithm 6: locks `node.parent`'s tree lock, revalidating that it is
    /// still the parent and unmarked. Blocking is safe: the acquisition goes
    /// *upward* in the tree while `node`'s own tree lock is held by the
    /// caller.
    pub(crate) fn lock_parent<'g>(
        &self,
        node: Shared<'g, Node<K, V>>,
        g: &'g Guard,
    ) -> Shared<'g, Node<K, V>> {
        let mut budget: Option<crate::poison::RestartBudget> = None;
        loop {
            let p = nref(node).parent.load(Ordering::Acquire, g);
            debug_assert!(!p.is_null(), "lock_parent called on the root sentinel");
            nref(p).lock_tree_upward();
            // Relaxed: `p.mark` is only ever set while holding `p.tree_lock`
            // (Algorithm 8 removes acquire it before marking), which we hold
            // here — the lock edge orders any mark store before this load.
            if nref(node).parent.load(Ordering::Acquire, g) == p
                && !nref(p).mark.load(Ordering::Relaxed)
            {
                return p;
            }
            record(Event::LockParentRetry);
            nref(p).unlock_tree();
            // A dead writer can strand a parent marked-under-lock forever;
            // abort instead of retrying against it (and count the storm).
            crate::poison::abort_if_poisoned(&self.gate);
            budget.get_or_insert_with(crate::poison::RestartBudget::new).tick();
        }
    }

    /// Algorithm 10: redirects `parent`'s child pointer from `old_ch` to
    /// `new_ch` (possibly null) and fixes `new_ch.parent`. Requires
    /// `parent.tree_lock`; if `new_ch` is non-null its new parent's lock
    /// (`parent`) and old parent's lock are held by all call sites.
    ///
    /// Returns `true` if the replaced slot was the left child.
    pub(crate) fn update_child<'g>(
        &self,
        parent: Shared<'g, Node<K, V>>,
        old_ch: Shared<'g, Node<K, V>>,
        new_ch: Shared<'g, Node<K, V>>,
        g: &'g Guard,
    ) -> bool {
        let p = nref(parent);
        let is_left = p.left.load(Ordering::Acquire, g) == old_ch;
        if is_left {
            p.left.store(new_ch, Ordering::Release);
        } else {
            debug_assert_eq!(
                p.right.load(Ordering::Acquire, g),
                old_ch,
                "update_child: old child not found on either side"
            );
            p.right.store(new_ch, Ordering::Release);
        }
        if !new_ch.is_null() {
            nref(new_ch).parent.store(parent, Ordering::Release);
        }
        is_left
    }
}

impl<K: Key, V: Value> Drop for LoTree<K, V> {
    fn drop(&mut self) {
        // SAFETY: [inv:unprotected-quiescent] &mut self (drop) — no concurrent
        // readers or writers remain, so an unprotected guard is sound. The chain
        // contains every live node plus both sentinels; nodes removed
        // earlier were retired through the epoch and are not in the chain.
        let g = unsafe { epoch::unprotected() };
        let root = self.root.load(Ordering::Relaxed, g);
        let mut n = self.head.load(Ordering::Relaxed, g);
        loop {
            let next = nref(n).succ.load(Ordering::Relaxed, g);
            let at_end = n == root;
            #[cfg(feature = "arena")]
            // SAFETY: [inv:unprotected-quiescent] quiescent teardown; every chain node
            // was allocated from this tree's arena and is visited exactly once.
            // Nodes retired earlier through the epoch are no longer in the
            // chain; their deferred retirements hold their own Arc.
            unsafe {
                let p = std::ptr::NonNull::new(n.as_raw().cast_mut())
                    .expect("chain nodes are non-null");
                self.arena.retire(p);
            }
            #[cfg(not(feature = "arena"))]
            // SAFETY: [inv:unprotected-quiescent] quiescent teardown; the chain visits
            // each node once.
            drop(unsafe { n.into_owned() });
            if at_end {
                break;
            }
            n = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_lookups() {
        let t: LoTree<i64, u64> = LoTree::new(true, false);
        assert!(!t.contains(&1));
        assert_eq!(t.get(&1), None);
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
        assert!(t.keys_in_order().is_empty());
        assert_eq!(t.len_quiescent(), 0);
        assert_eq!(t.physical_node_count(), 0);
    }

    #[test]
    fn sentinels_wired() {
        let t: LoTree<i64, u64> = LoTree::new(false, false);
        let g = epoch::pin();
        let root = t.root_sh(&g);
        let head = t.head_sh(&g);
        assert_eq!(nref(head).succ.load(Ordering::Acquire, &g), root);
        assert_eq!(nref(root).pred.load(Ordering::Acquire, &g), head);
        assert!(matches!(nref(root).key, Bound::PosInf));
        assert!(matches!(nref(head).key, Bound::NegInf));
    }
}
