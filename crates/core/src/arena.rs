//! Slab arena for tree nodes: cache-line-aligned, chunked, epoch-friendly.
//!
//! One `Box` per insert puts every node at the allocator's mercy — nodes
//! that are adjacent in the tree end up scattered across the heap, and the
//! malloc/free pair shows up directly on the update path. The arena instead
//! hands out slots from 64-slot chunks whose base is aligned to the chunk
//! size (a power of two), giving three properties the hot paths want:
//!
//! 1. **Spatial locality**: nodes allocated together sit in the same few
//!    pages, so tree descents touch fewer TLB entries and lookups of
//!    recently-inserted keys hit warmer lines.
//! 2. **O(1) slot recycling**: a freed slot goes on its chunk's free stack
//!    and is handed out LIFO — the next insert reuses memory that is very
//!    likely still in cache.
//! 3. **Cheap pointer→chunk resolution**: because a chunk's base address is
//!    aligned to `CHUNK_ALIGN ≥ CHUNK_BYTES`, masking a slot address with
//!    `!(CHUNK_ALIGN − 1)` yields the chunk base, which indexes a small
//!    side table. No per-slot headers — slots stay exactly `SLOT_SIZE`.
//!
//! # Lifetimes under epoch reclamation
//!
//! The arena **never frees a chunk that still contains a live slot**, and a
//! slot is only recycled through [`Arena::retire`], which the tree invokes
//! via `Guard::defer_unchecked` — i.e. strictly *after* the grace period in
//! which some lock-free reader might still dereference the node. The safety
//! argument for readers is therefore unchanged from the `Box` baseline:
//!
//! * a pointer loaded under a guard stays valid until the guard drops,
//!   because neither `drop_in_place` (part of `retire`) nor chunk
//!   deallocation can run before the epoch advances past every such guard;
//! * recycling a slot *within* a chunk re-initializes it fully before the
//!   new node is published, so a reader can never observe a half-built node
//!   (publication is the same `Release` store as before).
//!
//! An empty chunk is not freed immediately: one empty chunk is kept as
//! hysteresis so a workload oscillating around a chunk boundary does not
//! alternate `mmap`/`munmap` (the same reasoning as `COLLECT_EVERY` batching
//! in `lo-reclaim`).
//!
//! The `arena` cargo feature (default **on**) routes all tree-node
//! allocation through a per-tree [`Arena`]; without it the tree falls back
//! to the `Box`-per-node baseline, which the substrate ablation benches
//! against (`substrate/alloc/{box,arena}` rows).

use parking_lot::Mutex;
use std::alloc::{alloc as raw_alloc, dealloc, handle_alloc_error, Layout};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::mem::{align_of, size_of};
use std::ptr::NonNull;

use lo_metrics::{record, Event};

/// Slots per chunk. 64 nodes × 2 cache lines ≈ 8 KiB per chunk — two pages,
/// small enough that partially-used chunks waste little, large enough that
/// chunk turnover is rare.
pub const SLOTS: usize = 64;

/// Empty chunks kept around instead of freed (hysteresis; see module docs).
const KEEP_EMPTY: usize = 1;

/// One chunk: a raw aligned block plus its free-slot stack.
struct Chunk<T> {
    mem: NonNull<u8>,
    /// Free slot indices, LIFO so recycled slots are reused while warm.
    free: Vec<u16>,
    /// This chunk's position in `State::nonfull` (`usize::MAX` when full),
    /// maintained so removal is O(1) `swap_remove`.
    pos_in_nonfull: usize,
    _marker: PhantomData<T>,
}

struct State<T> {
    /// All chunks; `None` entries are reusable indices (see `vacant`).
    chunks: Vec<Option<Chunk<T>>>,
    /// Indices of `None` entries in `chunks`.
    vacant: Vec<usize>,
    /// Indices of chunks with at least one free slot.
    nonfull: Vec<usize>,
    /// Chunk base address → index in `chunks`. Keys are plain integers
    /// (never cast back to pointers), so provenance stays with `Chunk::mem`.
    by_base: HashMap<usize, usize>,
    /// Chunks whose slots are all free.
    empty_chunks: usize,
    /// Currently allocated (not yet retired) slots.
    live: usize,
}

/// A chunked slab allocator for values of type `T`. See module docs.
pub struct Arena<T> {
    state: Mutex<State<T>>,
}

/// SAFETY: the arena owns values of `T` and may drop them from whatever
/// thread calls `retire` (or drops the arena), so `T: Send` is required and
/// sufficient; all internal state is guarded by the mutex.
unsafe impl<T: Send> Send for Arena<T> {}
/// SAFETY: every method synchronizes through the internal mutex; handing a
/// `&Arena<T>` to another thread only enables the same `Send`-bounded moves
/// of `T` as above.
unsafe impl<T: Send> Sync for Arena<T> {}

impl<T> Arena<T> {
    /// Slots are at least cache-line aligned so a slot never straddles a
    /// line it doesn't own.
    const SLOT_ALIGN: usize = {
        if align_of::<T>() > 64 {
            align_of::<T>()
        } else {
            64
        }
    };
    /// Slot stride: the value size rounded up to the slot alignment.
    const SLOT_SIZE: usize = {
        assert!(size_of::<T>() > 0, "arena does not support zero-sized types");
        size_of::<T>().div_ceil(Self::SLOT_ALIGN) * Self::SLOT_ALIGN
    };
    const CHUNK_BYTES: usize = Self::SLOT_SIZE * SLOTS;
    /// Chunk alignment = chunk size rounded to a power of two, so that
    /// masking any slot address yields the chunk base.
    const CHUNK_ALIGN: usize = Self::CHUNK_BYTES.next_power_of_two();

    fn chunk_layout() -> Layout {
        Layout::from_size_align(Self::CHUNK_BYTES, Self::CHUNK_ALIGN)
            .expect("chunk layout is valid by construction")
    }

    /// Creates an empty arena (no chunks until the first allocation).
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State {
                chunks: Vec::new(),
                vacant: Vec::new(),
                nonfull: Vec::new(),
                by_base: HashMap::new(),
                empty_chunks: 0,
                live: 0,
            }),
        }
    }

    /// Allocates a slot and moves `value` into it. The returned pointer is
    /// stable until [`Arena::retire`] is called on it (or the arena drops).
    /// Aborts via [`handle_alloc_error`] if the OS refuses a fresh chunk;
    /// use [`Arena::try_alloc`] for the graceful-failure path.
    pub fn alloc(&self, value: T) -> NonNull<T> {
        match self.try_alloc(value) {
            Some(slot) => slot,
            None => handle_alloc_error(Self::chunk_layout()),
        }
    }

    /// Fallible [`Arena::alloc`]: returns `None` (with `value` dropped)
    /// when no slot is free and the OS refuses a fresh chunk. The arena
    /// stays fully usable; a later call may succeed.
    pub fn try_alloc(&self, value: T) -> Option<NonNull<T>> {
        let slot = self.try_take_slot()?;
        // SAFETY: [inv:arena-slot] `try_take_slot` returns an exclusive, properly
        // aligned, uninitialized slot of size ≥ size_of::<T>().
        unsafe { slot.as_ptr().write(value) };
        Some(slot)
    }

    /// Drops the value in `ptr`'s slot and recycles the slot.
    ///
    /// # Safety
    /// `ptr` must have come from [`Arena::alloc`] on this arena, must not
    /// have been retired already, and no other thread may access the value
    /// concurrently or afterwards (in the tree this is guaranteed by epoch
    /// deferral: retire runs only after the grace period).
    pub unsafe fn retire(&self, ptr: NonNull<T>) {
        // SAFETY: [inv:arena-slot] per this function's contract the slot holds a
        // live value with no remaining aliases.
        unsafe { std::ptr::drop_in_place(ptr.as_ptr()) };
        self.recycle(ptr);
    }

    /// Number of live (allocated, not retired) slots.
    pub fn live(&self) -> usize {
        self.state.lock().live
    }

    /// Number of chunks currently allocated from the OS.
    pub fn chunks(&self) -> usize {
        let st = self.state.lock();
        st.chunks.len() - st.vacant.len()
    }

    fn try_take_slot(&self) -> Option<NonNull<T>> {
        let mut st = self.state.lock();
        if st.nonfull.is_empty() && !Self::try_grow(&mut st) {
            return None;
        }
        let ci = *st.nonfull.last().expect("grow guarantees a nonfull chunk");
        let (slot_ptr, became_full, was_empty) = {
            let chunk = st.chunks[ci].as_mut().expect("nonfull index is live");
            let was_empty = chunk.free.len() == SLOTS;
            let slot = chunk.free.pop().expect("nonfull chunk has a free slot") as usize;
            let became_full = chunk.free.is_empty();
            if became_full {
                chunk.pos_in_nonfull = usize::MAX;
            }
            // SAFETY: [inv:arena-slot] `slot < SLOTS`, so the offset stays inside the
            // chunk allocation; the resulting pointer inherits `mem`'s provenance.
            let p = unsafe { chunk.mem.as_ptr().add(slot * Self::SLOT_SIZE) };
            (p.cast::<T>(), became_full, was_empty)
        };
        if was_empty {
            st.empty_chunks -= 1;
        }
        if became_full {
            // The chunk we allocated from is always the *last* nonfull entry.
            st.nonfull.pop();
        }
        st.live += 1;
        Some(NonNull::new(slot_ptr).expect("chunk memory is non-null"))
    }

    /// Allocates one chunk from the OS; `false` if the allocator refused.
    fn try_grow(st: &mut State<T>) -> bool {
        let layout = Self::chunk_layout();
        // SAFETY: [inv:arena-slot] `layout` has non-zero size (SLOT_SIZE ≥ 64).
        let mem = unsafe { raw_alloc(layout) };
        let Some(mem) = NonNull::new(mem) else { return false };
        let ci = match st.vacant.pop() {
            Some(i) => i,
            None => {
                st.chunks.push(None);
                st.chunks.len() - 1
            }
        };
        st.by_base.insert(mem.as_ptr().addr(), ci);
        let chunk = Chunk {
            mem,
            // Reversed so slots are handed out in address order (pop = 0).
            free: (0..SLOTS as u16).rev().collect(),
            pos_in_nonfull: st.nonfull.len(),
            _marker: PhantomData,
        };
        st.nonfull.push(ci);
        st.chunks[ci] = Some(chunk);
        st.empty_chunks += 1;
        record(Event::ArenaChunkAlloc);
        true
    }

    fn recycle(&self, ptr: NonNull<T>) {
        let addr = ptr.as_ptr().addr();
        let base = addr & !(Self::CHUNK_ALIGN - 1);
        let mut st = self.state.lock();
        let ci = *st.by_base.get(&base).expect("retired pointer does not belong to this arena");
        let (became_nonfull, now_empty) = {
            let chunk = st.chunks[ci].as_mut().expect("indexed chunk is live");
            let slot = (addr - base) / Self::SLOT_SIZE;
            debug_assert!(slot < SLOTS, "slot index out of range");
            debug_assert!(
                !chunk.free.contains(&(slot as u16)),
                "double retire of arena slot"
            );
            let became_nonfull = chunk.free.is_empty();
            chunk.free.push(slot as u16);
            (became_nonfull, chunk.free.len() == SLOTS)
        };
        st.live -= 1;
        if became_nonfull {
            let pos = st.nonfull.len();
            st.nonfull.push(ci);
            st.chunks[ci].as_mut().expect("indexed chunk is live").pos_in_nonfull = pos;
        }
        if now_empty {
            st.empty_chunks += 1;
            if st.empty_chunks > KEEP_EMPTY {
                Self::release_chunk(&mut st, ci);
            }
        }
    }

    /// Returns a fully-empty chunk to the OS (called only past the
    /// hysteresis threshold).
    fn release_chunk(st: &mut State<T>, ci: usize) {
        let chunk = st.chunks[ci].take().expect("released chunk is live");
        debug_assert_eq!(chunk.free.len(), SLOTS, "releasing a non-empty chunk");
        st.empty_chunks -= 1;
        st.by_base.remove(&chunk.mem.as_ptr().addr());
        let pos = chunk.pos_in_nonfull;
        debug_assert!(pos != usize::MAX, "empty chunk must be in nonfull");
        st.nonfull.swap_remove(pos);
        if pos < st.nonfull.len() {
            let moved = st.nonfull[pos];
            st.chunks[moved].as_mut().expect("moved chunk is live").pos_in_nonfull = pos;
        }
        st.vacant.push(ci);
        // SAFETY: [inv:arena-slot] `mem` was allocated with exactly this layout and
        // no slot is live (free list is full), so no pointer into it remains usable.
        unsafe { dealloc(chunk.mem.as_ptr(), Self::chunk_layout()) };
        record(Event::ArenaChunkFree);
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        let st = self.state.get_mut();
        for chunk in st.chunks.iter_mut().flatten() {
            let mut is_free = [false; SLOTS];
            for &f in &chunk.free {
                is_free[f as usize] = true;
            }
            for (slot, free) in is_free.iter().enumerate() {
                if !free {
                    // SAFETY: [inv:unprotected-quiescent] `&mut self` — no concurrent users;
                    // the slot is live (not on the free list) so it holds a valid value.
                    unsafe {
                        std::ptr::drop_in_place(
                            chunk.mem.as_ptr().add(slot * Self::SLOT_SIZE).cast::<T>(),
                        );
                    }
                }
            }
            // SAFETY: [inv:arena-slot] allocated with this exact layout; all values dropped.
            unsafe { dealloc(chunk.mem.as_ptr(), Self::chunk_layout()) };
        }
    }
}

/// A raw pointer wrapper that is `Send`, so a deferred arena retirement can
/// execute on whichever thread flushes the epoch bag. Only the tree's
/// arena-backed retirement path uses it.
#[cfg(feature = "arena")]
pub(crate) struct SendPtr<T>(NonNull<T>);

/// SAFETY: the wrapper only moves the *address* between threads; the tree's
/// retirement contract (node unlinked, grace period elapsed) makes the
/// eventual cross-thread access sound.
#[cfg(feature = "arena")]
unsafe impl<T> Send for SendPtr<T> {}

#[cfg(feature = "arena")]
impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        Self(NonNull::new(ptr).expect("retired node pointer is non-null"))
    }

    pub(crate) fn get(&self) -> NonNull<T> {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Value with a drop counter (leak/double-free detector under Miri).
    struct Tracked {
        drops: Arc<AtomicUsize>,
        payload: u64,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>, payload: u64) -> Tracked {
        Tracked { drops: Arc::clone(drops), payload }
    }

    #[test]
    fn try_alloc_roundtrip() {
        let drops = Arc::new(AtomicUsize::new(0));
        let arena: Arena<Tracked> = Arena::new();
        let p = arena.try_alloc(tracked(&drops, 7)).expect("OS allocation succeeds in tests");
        // SAFETY: `p` is live and this test is the only accessor.
        assert_eq!(unsafe { p.as_ref() }.payload, 7);
        assert_eq!(arena.live(), 1);
        // SAFETY: `p` came from this arena, is live, and has no aliases.
        unsafe { arena.retire(p) };
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn alloc_read_retire_roundtrip() {
        let drops = Arc::new(AtomicUsize::new(0));
        let arena: Arena<Tracked> = Arena::new();
        let p = arena.alloc(tracked(&drops, 42));
        // SAFETY: `p` is live and this test is the only accessor.
        assert_eq!(unsafe { p.as_ref() }.payload, 42);
        assert_eq!(arena.live(), 1);
        assert_eq!(arena.chunks(), 1);
        // SAFETY: `p` came from this arena, is live, and has no aliases.
        unsafe { arena.retire(p) };
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn slots_are_cache_line_aligned_and_disjoint() {
        let arena: Arena<[u8; 72]> = Arena::new();
        let mut ptrs = Vec::new();
        for i in 0..SLOTS {
            let p = arena.alloc([i as u8; 72]);
            assert_eq!(p.as_ptr().addr() % 64, 0, "slot not cache-line aligned");
            ptrs.push(p);
        }
        assert_eq!(arena.chunks(), 1, "64 slots must fit one chunk");
        // Strides must not overlap: consecutive slots differ by SLOT_SIZE.
        let mut addrs: Vec<usize> = ptrs.iter().map(|p| p.as_ptr().addr()).collect();
        addrs.sort_unstable();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 72, "slots overlap");
        }
        for p in ptrs {
            // SAFETY: each pointer is live and retired exactly once.
            unsafe { arena.retire(p) };
        }
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn lifo_recycling_reuses_the_slot() {
        let arena: Arena<u64> = Arena::new();
        let p = arena.alloc(7);
        let addr = p.as_ptr().addr();
        // SAFETY: live, no aliases.
        unsafe { arena.retire(p) };
        let q = arena.alloc(8);
        assert_eq!(q.as_ptr().addr(), addr, "freed slot must be reused LIFO");
        // SAFETY: live, no aliases.
        unsafe { arena.retire(q) };
    }

    #[test]
    fn multi_chunk_growth_and_shrink_with_hysteresis() {
        let drops = Arc::new(AtomicUsize::new(0));
        let arena: Arena<Tracked> = Arena::new();
        const N: usize = 3 * SLOTS + 5; // forces 4 chunks
        let ptrs: Vec<_> = (0..N).map(|i| arena.alloc(tracked(&drops, i as u64))).collect();
        assert_eq!(arena.chunks(), 4);
        assert_eq!(arena.live(), N);
        for p in ptrs {
            // SAFETY: each pointer is live and retired exactly once.
            unsafe { arena.retire(p) };
        }
        assert_eq!(drops.load(Ordering::Relaxed), N);
        assert_eq!(arena.live(), 0);
        // All chunks emptied; one is kept as hysteresis, the rest freed.
        assert_eq!(arena.chunks(), KEEP_EMPTY, "empty chunks beyond hysteresis must be freed");
    }

    #[test]
    fn drop_frees_live_values_no_leak() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let arena: Arena<Tracked> = Arena::new();
            for i in 0..(SLOTS + 3) {
                let p = arena.alloc(tracked(&drops, i as u64));
                if i % 2 == 0 {
                    // SAFETY: live, no aliases.
                    unsafe { arena.retire(p) };
                }
            }
            // Half the values still live here; Arena::drop must free them.
        }
        assert_eq!(drops.load(Ordering::Relaxed), SLOTS + 3, "leak or double free on drop");
    }

    #[test]
    fn concurrent_alloc_retire_smoke() {
        let arena: Arc<Arena<u64>> = Arc::new(Arena::new());
        let threads = 4;
        let per_thread = if cfg!(miri) { 40 } else { 2_000 };
        std::thread::scope(|s| {
            for t in 0..threads {
                let arena = Arc::clone(&arena);
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..per_thread {
                        held.push(arena.alloc((t * per_thread + i) as u64));
                        if i % 3 == 0 {
                            let p = held.swap_remove(i % held.len());
                            // SAFETY: `p` was removed from `held`, so this
                            // thread is its only owner.
                            unsafe { arena.retire(p) };
                        }
                    }
                    for p in held {
                        // SAFETY: sole owner.
                        unsafe { arena.retire(p) };
                    }
                });
            }
        });
        assert_eq!(arena.live(), 0);
    }
}
